#!/bin/bash
# Run every bench binary sequentially, one output file per bench.
# Usage: scripts/run_benches.sh [output-dir]   (default: bench_results)
#
# Tracing is on by default so each bench drops its run manifest, Chrome
# trace and metrics JSONL next to its .txt table; export SLO_TRACE=0 to
# disable. Exits non-zero if any bench failed, listing the failures.
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_results}"
mkdir -p "$out"

# Observability artifacts (<bench>.manifest.json / .trace.json /
# .metrics.jsonl) land in the output dir alongside the tables.
export SLO_TRACE="${SLO_TRACE:-1}"
export SLO_OBS_DIR="$out"

failed=()
ran=0
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "=== $name start $(date +%T) ==="
    "$b" > "$out/$name.txt" 2> "$out/$name.err"
    rc=$?
    echo "=== $name done $(date +%T) exit $rc ==="
    ran=$((ran + 1))
    [ "$rc" -ne 0 ] && failed+=("$name (exit $rc)")
done

if [ "$ran" -eq 0 ]; then
    echo "no bench binaries found under build/bench/ — build first" >&2
    exit 1
fi
if [ "${#failed[@]}" -ne 0 ]; then
    echo "FAILED benches (${#failed[@]}/$ran):" >&2
    printf '  %s\n' "${failed[@]}" >&2
    exit 1
fi
echo "all $ran benches passed; outputs in $out/"
