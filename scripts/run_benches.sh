#!/bin/bash
# Run every bench binary sequentially, one output file per bench.
# Usage: scripts/run_benches.sh [output-dir]   (default: bench_results)
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_results}"
mkdir -p "$out"
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "=== $name start $(date +%T) ==="
    "$b" > "$out/$name.txt" 2> "$out/$name.err"
    echo "=== $name done $(date +%T) exit $? ==="
done
echo "all benches done; outputs in $out/"
