#!/bin/bash
# Run every bench binary sequentially, one output file per bench.
# Usage: scripts/run_benches.sh [output-dir]   (default: bench_results)
#
# Tracing is on by default so each bench drops its run manifest, Chrome
# trace and metrics JSONL next to its .txt table; export SLO_TRACE=0 to
# disable. Exits non-zero if any bench failed, listing the failures.
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_results}"

# Benchmarks only mean something on a tree that passes the check gate:
# require a .slo-check-stamp from scripts/check.sh matching the current
# commit. SLO_SKIP_CHECK=1 overrides (e.g. on a machine that cannot
# build the sanitizer tree).
if [ "${SLO_SKIP_CHECK:-0}" != "1" ]; then
    sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    dirty=""
    git diff --quiet HEAD 2>/dev/null || dirty="-dirty"
    stamp="$(cat .slo-check-stamp 2>/dev/null || true)"
    if [ "$stamp" != "$sha$dirty" ]; then
        echo "run_benches.sh: no passing check stamp for this tree" >&2
        echo "  expected: $sha$dirty" >&2
        echo "  stamp:    ${stamp:-<none>}" >&2
        echo "run scripts/check.sh first (or SLO_SKIP_CHECK=1)" >&2
        exit 1
    fi
fi

# Benches whose outputs feed the golden regression harness must have a
# committed snapshot of the current schema; otherwise a drifted
# pipeline silently produces un-diffable results. SLO_SKIP_GOLDEN=1
# overrides (e.g. while intentionally iterating on the schema).
if [ "${SLO_SKIP_GOLDEN:-0}" != "1" ]; then
    for g in fig2_dram_traffic table3_dead_lines table4_other_kernels \
             spgemm_table; do
        f="tests/golden/$g.json"
        if [ ! -f "$f" ]; then
            echo "run_benches.sh: missing golden snapshot $f" >&2
            echo "run scripts/golden.py --bless (or SLO_SKIP_GOLDEN=1)" >&2
            exit 1
        fi
        if ! grep -q '"schema": "slo.golden/1"' "$f"; then
            echo "run_benches.sh: $f is not schema slo.golden/1" >&2
            echo "re-bless with scripts/golden.py --bless" >&2
            exit 1
        fi
    done
fi
mkdir -p "$out"

# Observability artifacts (<bench>.manifest.json / .trace.json /
# .metrics.jsonl) land in the output dir alongside the tables. Each
# manifest also records wall_seconds and the thread count; timings.tsv
# aggregates the same wall clocks across benches for quick comparison
# between SLO_THREADS settings.
export SLO_TRACE="${SLO_TRACE:-1}"
export SLO_OBS_DIR="$out"

threads="${SLO_THREADS:-$(nproc 2>/dev/null || echo 1)}"
timings="$out/timings.tsv"
printf 'bench\twall_seconds\tthreads\tpeak_rss_kb\n' > "$timings"

failed=()
ran=0
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    # Google-benchmark binaries (micro_*) additionally drop their
    # machine-readable results as BENCH_<name>.json.
    args=()
    case "$name" in
        micro_*)
            args=("--benchmark_out=$out/BENCH_$name.json"
                  "--benchmark_out_format=json")
            ;;
    esac
    echo "=== $name start $(date +%T) ==="
    touch "$out/.bench_start"
    t0="$(date +%s.%N)"
    "$b" "${args[@]}" > "$out/$name.txt" 2> "$out/$name.err"
    rc=$?
    t1="$(date +%s.%N)"
    wall="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')"
    # Peak RSS from the bench's manifest prof section ("-" for benches
    # that don't write one, e.g. the google-benchmark micro_* binaries).
    # Manifest filenames are slugs of the bench *title*, so pick
    # whichever manifest this bench just wrote rather than guessing.
    manifest="$(find "$out" -maxdepth 1 -name '*.manifest.json' \
                    -newer "$out/.bench_start" | head -1)"
    rss="-"
    if [ -n "$manifest" ]; then
        rss="$(python3 scripts/perf_trajectory.py peak-rss "$manifest" \
                   2>/dev/null || echo '-')"
    fi
    printf '%s\t%s\t%s\t%s\n' "$name" "$wall" "$threads" "$rss" \
        >> "$timings"
    echo "=== $name done $(date +%T) exit $rc wall ${wall}s ==="
    ran=$((ran + 1))
    [ "$rc" -ne 0 ] && failed+=("$name (exit $rc)")
done

if [ "$ran" -eq 0 ]; then
    echo "no bench binaries found under build/bench/ — build first" >&2
    exit 1
fi

# Normalize whatever manifests this run produced into the
# perf-trajectory snapshot — always, even for subset runs (REPRO_LIMIT,
# a single bench binary, failures): a partial snapshot diffs fine
# because the diff only compares bench/metric pairs both sides have.
python3 scripts/perf_trajectory.py snapshot --in "$out" \
    --out "$out/BENCH_perf.json" || true

if [ "${#failed[@]}" -ne 0 ]; then
    echo "FAILED benches (${#failed[@]}/$ran):" >&2
    printf '  %s\n' "${failed[@]}" >&2
    exit 1
fi
echo "all $ran benches passed; outputs in $out/"
