#!/usr/bin/env python3
"""Perf-trajectory pipeline: normalize run manifests, diff with noise.

`snapshot` ingests every `*.manifest.json` a bench run produced
(scripts/run_benches.sh leaves them next to the tables) and writes one
normalized document, `BENCH_perf.json`:

    {
      "schema": "slo.perf-trajectory/1",
      "git_sha": "<12 hex>",
      "host": {"hostname": ..., "threads": ..., "compiler": ...},
      "benches": {
        "<bench>": {
          "<metric>": {"value": 1.23, "unit": "seconds", "kind": "time"}
        }
      }
    }

The committed copy at the repo root is the baseline the CI
perf-trajectory job diffs new runs against.

`diff` compares two snapshots metric-by-metric with per-kind noise
tolerances (a metric must get worse by BOTH the relative margin and the
absolute floor to count as a regression — tiny benches fluctuating by
milliseconds never fire the gate):

    kind    worse when   relative   absolute floor
    time    larger       30%        0.05 s
    space   larger       10%        2048 KB
    count   larger       25%        1000
    ratio   (informational only, never gates)

A host-fingerprint mismatch (different machine, thread count or
compiler) downgrades regressions to warnings: cross-host numbers are
not comparable, the diff still prints them for eyeballing. Exit code:
0 clean / warn-only, 1 regression, 2 usage error.

`selftest` proves the gate actually fires: it builds a synthetic
baseline, injects a 2x slowdown, and asserts the diff flags exactly
that metric while an identical-within-noise pair passes.

Usage:
  perf_trajectory.py snapshot --in DIR --out BENCH_perf.json
  perf_trajectory.py diff --baseline OLD.json --candidate NEW.json
                          [--summary OUT.md]
  perf_trajectory.py peak-rss MANIFEST.json
  perf_trajectory.py selftest
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
from pathlib import Path

SCHEMA = "slo.perf-trajectory/1"

# kind -> (relative margin, absolute floor). A candidate regresses when
# candidate > baseline * (1 + rel) AND candidate - baseline > floor.
TOLERANCES = {
    "time": (0.30, 0.05),
    "space": (0.10, 2048.0),
    "count": (0.25, 1000.0),
}

# Metric-name prefixes with tighter tolerances than their kind's
# default. The reordering phases are what this codebase optimizes, so
# a `phase.reorder.*` slowdown gates at 25% relative with a 0.02 s
# floor instead of the looser generic time tolerance. The per-backend
# SpGEMM simulation phases (`phase.spgemm.<backend>`) gate at the same
# 25% relative margin: the fused access generator is the hot loop of
# ext_spgemm, and a constant-factor slip there multiplies into every
# flop of the stream. Their 0.05 s floor matches the generic one
# because a single simulation is far longer than a single reorder.
# The serve legs (`phase.serve.<leg>` from serve_load) gate like the
# other phases; their client-observed quantiles
# (`latency.serve.<leg>_seconds.p50/p99`) gate at a loose 50% relative
# margin — tail latency on a shared CI box is noisy — but with a tight
# 2 ms floor so a real millisecond-scale p99 excursion on the
# microsecond-scale hot path cannot hide under the generic 0.05 s one.
PREFIX_TOLERANCES = {
    "phase.reorder.": (0.25, 0.02),
    "phase.spgemm.": (0.25, 0.05),
    "phase.serve.": (0.25, 0.05),
    "latency.serve.": (0.50, 0.002),
}


def tolerance_for(name: str, kind: str) -> tuple[float, float] | None:
    """Tolerance for one metric, or None when it never gates."""
    if kind == "time":
        for prefix, tolerance in PREFIX_TOLERANCES.items():
            if name.startswith(prefix):
                return tolerance
    return TOLERANCES.get(kind)


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def host_fingerprint(manifest: dict | None = None) -> dict:
    """Hostname + thread count + compiler: the facts that make two
    runs' absolute numbers comparable."""
    fp = {
        "hostname": socket.gethostname(),
        "threads": os.cpu_count() or 1,
        "compiler": "",
    }
    if manifest:
        fp["hostname"] = manifest.get("hostname", fp["hostname"])
        if isinstance(manifest.get("threads"), int):
            fp["threads"] = manifest["threads"]
        build = manifest.get("build", {})
        if isinstance(build, dict):
            fp["compiler"] = build.get("compiler", "")
    return fp


def metric(value: float, unit: str, kind: str) -> dict:
    return {"value": float(value), "unit": unit, "kind": kind}


def metrics_from_manifest(doc: dict) -> dict:
    """Normalize one run manifest into {metric: {value, unit, kind}}."""
    out: dict[str, dict] = {}
    if isinstance(doc.get("wall_seconds"), (int, float)):
        out["wall_seconds"] = metric(doc["wall_seconds"], "seconds",
                                     "time")

    prof = doc.get("prof", {})
    if isinstance(prof, dict):
        if isinstance(prof.get("peak_rss_kb"), (int, float)):
            out["prof.peak_rss_kb"] = metric(prof["peak_rss_kb"], "kb",
                                             "space")
        for key in ("minor_faults", "major_faults"):
            if isinstance(prof.get(key), (int, float)):
                out[f"prof.{key}"] = metric(prof[key], "faults",
                                            "count")

    pool = doc.get("pool", {})
    if isinstance(pool, dict) and isinstance(
            pool.get("utilization"), (int, float)):
        out["pool.utilization"] = metric(pool["utilization"], "ratio",
                                         "ratio")

    # Per-phase wall time, summed across matrices: coarse enough to be
    # stable, fine enough to attribute a wall_seconds regression.
    phase_totals: dict[str, float] = {}
    matrices = doc.get("matrices", {})
    if isinstance(matrices, dict):
        for per_matrix in matrices.values():
            phases = per_matrix.get("phases", {})
            if not isinstance(phases, dict):
                continue
            for phase, seconds in phases.items():
                if isinstance(seconds, (int, float)):
                    phase_totals[phase] = (
                        phase_totals.get(phase, 0.0) + seconds)
    for phase, seconds in sorted(phase_totals.items()):
        out[f"phase.{phase}.seconds"] = metric(seconds, "seconds",
                                               "time")

    latency = doc.get("latency", {})
    if isinstance(latency, dict):
        for name, hist in sorted(latency.items()):
            if not isinstance(hist, dict):
                continue
            for q in ("p50_seconds", "p99_seconds"):
                if isinstance(hist.get(q), (int, float)):
                    out[f"latency.{name}.{q}"] = metric(
                        hist[q], "seconds", "time")
    return out


def cmd_snapshot(args: argparse.Namespace) -> int:
    src = Path(args.src)
    manifests = sorted(src.glob("*.manifest.json"))
    benches: dict[str, dict] = {}
    fingerprint: dict | None = None
    sha = git_sha()
    for path in manifests:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            print(f"perf_trajectory: skipping {path}: {err}",
                  file=sys.stderr)
            continue
        bench = doc.get("bench") or path.stem.replace(".manifest", "")
        extracted = metrics_from_manifest(doc)
        if extracted:
            benches[bench] = extracted
        if fingerprint is None:
            fingerprint = host_fingerprint(doc)
            if doc.get("git_sha"):
                sha = doc["git_sha"]
    snapshot = {
        "schema": SCHEMA,
        "git_sha": sha,
        "host": fingerprint or host_fingerprint(),
        "benches": benches,
    }
    out = Path(args.out)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    total = sum(len(m) for m in benches.values())
    print(f"perf_trajectory: {len(benches)} bench(es), "
          f"{total} metric(s) -> {out}")
    if not benches:
        print("perf_trajectory: WARNING: no manifests found "
              f"under {src} (SLO_TRACE off?)", file=sys.stderr)
    return 0


def compare(baseline: dict, candidate: dict) -> tuple[list, list, list]:
    """-> (regressions, improvements, notes); each row is
    (bench, metric, old, new, unit, pct)."""
    regressions, improvements, notes = [], [], []
    base_benches = baseline.get("benches", {})
    cand_benches = candidate.get("benches", {})
    for bench in sorted(set(base_benches) & set(cand_benches)):
        base_metrics = base_benches[bench]
        cand_metrics = cand_benches[bench]
        for name in sorted(set(base_metrics) & set(cand_metrics)):
            old = base_metrics[name]
            new = cand_metrics[name]
            if old.get("unit") != new.get("unit"):
                notes.append((bench, name,
                              f"unit changed {old.get('unit')} -> "
                              f"{new.get('unit')}; not compared"))
                continue
            kind = new.get("kind", old.get("kind", ""))
            tolerance = tolerance_for(name, kind)
            if tolerance is None:
                continue  # ratio & unknown kinds: informational
            rel, floor = tolerance
            old_v, new_v = old["value"], new["value"]
            delta = new_v - old_v
            pct = (delta / old_v * 100.0) if old_v else 0.0
            row = (bench, name, old_v, new_v, new.get("unit", ""), pct)
            if delta > max(old_v * rel, floor):
                regressions.append(row)
            elif -delta > max(old_v * rel, floor):
                improvements.append(row)
    return regressions, improvements, notes


def render_rows(title: str, rows: list) -> str:
    lines = [f"\n{title}"]
    for bench, name, old_v, new_v, unit, pct in rows:
        lines.append(f"  {bench} / {name}: {old_v:.6g} -> {new_v:.6g} "
                     f"{unit} ({pct:+.1f}%)")
    return "\n".join(lines)


def render_markdown(regressions: list, improvements: list,
                    host_match: bool, base_sha: str,
                    cand_sha: str) -> str:
    lines = ["## Perf trajectory", "",
             f"Baseline `{base_sha}` vs candidate `{cand_sha}`."]
    if not host_match:
        lines.append("")
        lines.append("> :warning: host fingerprint mismatch — numbers "
                     "are not comparable, regressions reported as "
                     "warnings only.")
    if not regressions and not improvements:
        lines.append("")
        lines.append("No perf movement beyond noise tolerances.")
    for title, rows in (("Regressions", regressions),
                        ("Improvements", improvements)):
        if not rows:
            continue
        lines += ["", f"### {title}", "",
                  "| bench | metric | baseline | candidate | delta |",
                  "|---|---|---|---|---|"]
        for bench, name, old_v, new_v, unit, pct in rows:
            lines.append(f"| {bench} | {name} | {old_v:.6g} {unit} | "
                         f"{new_v:.6g} {unit} | {pct:+.1f}% |")
    return "\n".join(lines) + "\n"


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        baseline = json.loads(
            Path(args.baseline).read_text(encoding="utf-8"))
        candidate = json.loads(
            Path(args.candidate).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_trajectory: {err}", file=sys.stderr)
        return 2
    for doc, label in ((baseline, args.baseline),
                       (candidate, args.candidate)):
        if doc.get("schema") != SCHEMA:
            print(f"perf_trajectory: {label} is not {SCHEMA}",
                  file=sys.stderr)
            return 2

    host_match = baseline.get("host") == candidate.get("host")
    regressions, improvements, notes = compare(baseline, candidate)

    base_sha = baseline.get("git_sha", "?")
    cand_sha = candidate.get("git_sha", "?")
    print(f"perf_trajectory: baseline {base_sha} vs candidate "
          f"{cand_sha} (host match: {host_match})")
    if regressions:
        print(render_rows("REGRESSIONS:", regressions))
    if improvements:
        print(render_rows("improvements:", improvements))
    for bench, name, note in notes:
        print(f"  note: {bench} / {name}: {note}")
    if not regressions and not improvements:
        print("no perf movement beyond noise tolerances")

    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        markdown = render_markdown(regressions, improvements,
                                   host_match, base_sha, cand_sha)
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(markdown)

    if regressions and not host_match:
        print("perf_trajectory: host fingerprint mismatch — "
              "treating regressions as warnings", file=sys.stderr)
        return 0
    return 1 if regressions else 0


def cmd_peak_rss(args: argparse.Namespace) -> int:
    """Print a manifest's prof.peak_rss_kb (or '-'), for timings.tsv."""
    try:
        doc = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
        value = doc["prof"]["peak_rss_kb"]
        print(int(value))
    except (OSError, json.JSONDecodeError, KeyError, TypeError,
            ValueError):
        print("-")
    return 0


def cmd_selftest(_args: argparse.Namespace) -> int:
    host = {"hostname": "h", "threads": 4, "compiler": "cc"}
    base = {
        "schema": SCHEMA, "git_sha": "base000000000", "host": host,
        "benches": {
            "fig2": {
                "wall_seconds": metric(10.0, "seconds", "time"),
                "prof.peak_rss_kb": metric(100000, "kb", "space"),
                "pool.utilization": metric(0.5, "ratio", "ratio"),
            },
        },
    }

    def clone_with(wall: float, rss: float, util: float) -> dict:
        return {
            "schema": SCHEMA, "git_sha": "cand000000000", "host": host,
            "benches": {
                "fig2": {
                    "wall_seconds": metric(wall, "seconds", "time"),
                    "prof.peak_rss_kb": metric(rss, "kb", "space"),
                    "pool.utilization": metric(util, "ratio", "ratio"),
                },
            },
        }

    failures = []

    # 1. An injected 2x slowdown must gate.
    regressions, _, _ = compare(base, clone_with(20.0, 100000, 0.5))
    if [(r[0], r[1]) for r in regressions] != [("fig2", "wall_seconds")]:
        failures.append(f"2x slowdown not flagged: {regressions}")

    # 2. Within-noise jitter (+5% time, +1% rss) must NOT gate.
    regressions, _, _ = compare(base, clone_with(10.5, 101000, 0.45))
    if regressions:
        failures.append(f"noise flagged as regression: {regressions}")

    # 3. A memory blow-up (+50%) must gate as space.
    regressions, _, _ = compare(base, clone_with(10.0, 150000, 0.5))
    if [(r[0], r[1]) for r in regressions] != [
            ("fig2", "prof.peak_rss_kb")]:
        failures.append(f"rss regression not flagged: {regressions}")

    # 4. Ratio metrics never gate.
    regressions, _, _ = compare(base, clone_with(10.0, 100000, 0.01))
    if regressions:
        failures.append(f"ratio metric gated: {regressions}")

    # 5. Small absolute movement below the floor never gates, even at a
    #    large relative change (0.01s -> 0.03s is +200% but < 0.05s).
    tiny_base = {
        "schema": SCHEMA, "git_sha": "b", "host": host,
        "benches": {"b": {
            "wall_seconds": metric(0.01, "seconds", "time")}},
    }
    tiny_cand = {
        "schema": SCHEMA, "git_sha": "c", "host": host,
        "benches": {"b": {
            "wall_seconds": metric(0.03, "seconds", "time")}},
    }
    regressions, _, _ = compare(tiny_base, tiny_cand)
    if regressions:
        failures.append(
            f"sub-floor movement gated: {regressions}")

    # 6. The tighter phase.reorder.* gate fires where the generic time
    #    tolerance would not (+35%, delta 0.035 s < generic 0.05 floor).
    reorder_base = {
        "schema": SCHEMA, "git_sha": "b", "host": host,
        "benches": {"fig9": {
            "phase.reorder.RABBIT.seconds": metric(0.10, "seconds",
                                                   "time")}},
    }
    reorder_cand = {
        "schema": SCHEMA, "git_sha": "c", "host": host,
        "benches": {"fig9": {
            "phase.reorder.RABBIT.seconds": metric(0.135, "seconds",
                                                   "time")}},
    }
    regressions, _, _ = compare(reorder_base, reorder_cand)
    if [(r[0], r[1]) for r in regressions] != [
            ("fig9", "phase.reorder.RABBIT.seconds")]:
        failures.append(
            f"reorder-phase slowdown not flagged: {regressions}")

    # 7. Reorder-phase jitter inside the tighter margin stays quiet.
    reorder_cand["benches"]["fig9"][
        "phase.reorder.RABBIT.seconds"] = metric(0.115, "seconds",
                                                 "time")
    regressions, _, _ = compare(reorder_base, reorder_cand)
    if regressions:
        failures.append(
            f"reorder-phase noise flagged as regression: {regressions}")

    # 8. The phase.spgemm.* gate fires where the generic time tolerance
    #    would not (+30% exactly: generic needs delta > 30%, the spgemm
    #    prefix needs only > 25%).
    spgemm_base = {
        "schema": SCHEMA, "git_sha": "b", "host": host,
        "benches": {"ext_spgemm": {
            "phase.spgemm.lru.seconds": metric(0.50, "seconds",
                                               "time")}},
    }
    spgemm_cand = {
        "schema": SCHEMA, "git_sha": "c", "host": host,
        "benches": {"ext_spgemm": {
            "phase.spgemm.lru.seconds": metric(0.65, "seconds",
                                               "time")}},
    }
    regressions, _, _ = compare(spgemm_base, spgemm_cand)
    if [(r[0], r[1]) for r in regressions] != [
            ("ext_spgemm", "phase.spgemm.lru.seconds")]:
        failures.append(
            f"spgemm-phase slowdown not flagged: {regressions}")

    # 9. SpGEMM-phase movement under the 0.05 s floor stays quiet even
    #    at a large relative change (0.10 -> 0.13 is +30% but 0.03 s).
    spgemm_base["benches"]["ext_spgemm"][
        "phase.spgemm.lru.seconds"] = metric(0.10, "seconds", "time")
    spgemm_cand["benches"]["ext_spgemm"][
        "phase.spgemm.lru.seconds"] = metric(0.13, "seconds", "time")
    regressions, _, _ = compare(spgemm_base, spgemm_cand)
    if regressions:
        failures.append(
            f"sub-floor spgemm-phase movement gated: {regressions}")

    # 10. The phase.serve.* gate fires on a +30% serve-leg slowdown
    #     that the generic 30%-relative time tolerance would let pass.
    serve_base = {
        "schema": SCHEMA, "git_sha": "b", "host": host,
        "benches": {"serve_load": {
            "phase.serve.hot.seconds": metric(0.50, "seconds", "time"),
            "latency.serve.hot_seconds.p99_seconds":
                metric(0.0010, "seconds", "time")}},
    }
    serve_cand = {
        "schema": SCHEMA, "git_sha": "c", "host": host,
        "benches": {"serve_load": {
            "phase.serve.hot.seconds": metric(0.65, "seconds", "time"),
            "latency.serve.hot_seconds.p99_seconds":
                metric(0.0010, "seconds", "time")}},
    }
    regressions, _, _ = compare(serve_base, serve_cand)
    if [(r[0], r[1]) for r in regressions] != [
            ("serve_load", "phase.serve.hot.seconds")]:
        failures.append(
            f"serve-phase slowdown not flagged: {regressions}")

    # 11. The latency.serve.* gate fires on a p99 blow-up (1 ms -> 4 ms
    #     is far under the generic 0.05 s floor) and stays quiet on
    #     sub-floor tail jitter (1 ms -> 2.5 ms trips the 50% margin
    #     but not the 2 ms floor).
    serve_cand["benches"]["serve_load"][
        "phase.serve.hot.seconds"] = metric(0.50, "seconds", "time")
    serve_cand["benches"]["serve_load"][
        "latency.serve.hot_seconds.p99_seconds"] = metric(
            0.0040, "seconds", "time")
    regressions, _, _ = compare(serve_base, serve_cand)
    if [(r[0], r[1]) for r in regressions] != [
            ("serve_load", "latency.serve.hot_seconds.p99_seconds")]:
        failures.append(
            f"serve-p99 blow-up not flagged: {regressions}")
    serve_cand["benches"]["serve_load"][
        "latency.serve.hot_seconds.p99_seconds"] = metric(
            0.0025, "seconds", "time")
    regressions, _, _ = compare(serve_base, serve_cand)
    if regressions:
        failures.append(
            f"sub-floor serve-p99 jitter gated: {regressions}")

    if failures:
        for failure in failures:
            print(f"perf_trajectory selftest: FAIL: {failure}",
                  file=sys.stderr)
        return 1
    print("perf_trajectory selftest: ok (gate fires on injected "
          "slowdown, stays quiet on noise)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="perf_trajectory.py")
    sub = parser.add_subparsers(dest="command", required=True)

    p_snap = sub.add_parser("snapshot")
    p_snap.add_argument("--in", dest="src", required=True)
    p_snap.add_argument("--out", default="BENCH_perf.json")
    p_snap.set_defaults(func=cmd_snapshot)

    p_diff = sub.add_parser("diff")
    p_diff.add_argument("--baseline", required=True)
    p_diff.add_argument("--candidate", required=True)
    p_diff.add_argument("--summary", default=None)
    p_diff.set_defaults(func=cmd_diff)

    p_rss = sub.add_parser("peak-rss")
    p_rss.add_argument("manifest")
    p_rss.set_defaults(func=cmd_peak_rss)

    p_self = sub.add_parser("selftest")
    p_self.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv[1:])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
