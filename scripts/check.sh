#!/bin/bash
# Single local/CI gate for the slo tree (see CONTRIBUTING.md):
#
#   lint    scripts/lint_slo.py over src/ and bench/ (project rules the
#           compiler cannot express: Index/Offset discipline, chrono
#           usage, include hygiene, ...).
#   tidy    clang-tidy over the compilation database — skipped with a
#           warning when the binary is not installed; set
#           SLO_REQUIRE_CLANG_TIDY=1 to make its absence fatal (CI
#           images that ship it should do this).
#   asan    ASan/UBSan build of the full test suite (cmake preset
#           "asan": -DSLO_SANITIZE=address;undefined, -Werror) and
#           ctest with SLO_CHECK_LEVEL=full so every contract validator
#           runs its deep checks under the sanitizers.
#   tsan    TSan build (cmake preset "tsan") running the concurrency-
#           and qc-labelled tests (thread pool, obs contention,
#           artifact-cache races, property-based oracles). Set
#           SLO_TSAN_FULL=1 to run the whole suite under TSan.
#   qc      property suite on the default (unsanitized) tree with the
#           full default case counts — the sanitizer presets cap cases
#           via SLO_QC_CASES=25, this stage runs the deeper sweep.
#   golden  regression snapshots: the fig2/table3/table4 benches in the
#           pinned configuration diffed against tests/golden/
#           (scripts/golden.py; refresh intentional changes with
#           --bless).
#
# Usage: scripts/check.sh [-j N] [--stages lint,asan,...] [--stamp-only]
#
# SLO_CHECK_STAGES (or --stages) selects a comma/space-separated subset
# of stages, e.g. for CI jobs that split the gate across runners:
#     SLO_CHECK_STAGES=lint,tidy scripts/check.sh
# The gate is non-interactive and fail-fast: the first failing stage
# aborts the run with its exit code.
#
# On success of the FULL stage set this writes .slo-check-stamp
# (git SHA + tree state) at the repo root; scripts/run_benches.sh
# refuses to run without a stamp matching the current SHA. A subset run
# never writes the stamp. CI pipelines that run the stages as separate
# jobs write the stamp from a final job — gated on every stage job
# succeeding — with:
#     scripts/check.sh --stamp-only
set -uo pipefail
cd "$(dirname "$0")/.."

all_stages="lint tidy asan tsan qc golden"
stages="${SLO_CHECK_STAGES:-$all_stages}"
jobs="$(nproc 2>/dev/null || echo 4)"
stamp_only=0

while [ "$#" -gt 0 ]; do
    case "$1" in
        -j)
            [ -n "${2:-}" ] || { echo "check.sh: -j needs a value" >&2
                                 exit 2; }
            jobs="$2"; shift 2 ;;
        --stages)
            [ -n "${2:-}" ] || { echo "check.sh: --stages needs a" \
                                      "value" >&2; exit 2; }
            stages="$2"; shift 2 ;;
        --stamp-only)
            stamp_only=1; shift ;;
        *)
            echo "check.sh: unknown argument: $1" >&2; exit 2 ;;
    esac
done
stages="${stages//,/ }"

write_stamp() {
    local sha dirty=""
    sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    git diff --quiet HEAD 2>/dev/null || dirty="-dirty"
    printf '%s%s\n' "$sha" "$dirty" > .slo-check-stamp
    echo "stamp written: .slo-check-stamp ($sha$dirty)"
}

if [ "$stamp_only" = "1" ]; then
    write_stamp
    exit 0
fi

step() { printf '\n== %s ==\n' "$*"; }
die() { echo "check.sh: FAIL: $*" >&2; exit 1; }

wants() { case " $stages " in *" $1 "*) return 0 ;; esac; return 1; }

stage_lint() {
    step "lint (scripts/lint_slo.py)"
    python3 scripts/lint_slo.py src bench || die "lint findings above"
}

stage_tidy() {
    step "clang-tidy"
    if command -v clang-tidy >/dev/null 2>&1; then
        # The database lives in whichever tree configured last; prefer
        # the asan tree (configured below on first run) then the
        # default one.
        local db_dir=""
        for d in build-asan build; do
            [ -f "$d/compile_commands.json" ] && db_dir="$d" && break
        done
        if [ -z "$db_dir" ]; then
            cmake --preset asan >/dev/null \
                || die "cmake configure (asan)"
            db_dir=build-asan
        fi
        mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
        clang-tidy -p "$db_dir" --quiet "${tidy_sources[@]}" \
            || die "clang-tidy findings above"
    elif [ "${SLO_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
        die "clang-tidy not installed but SLO_REQUIRE_CLANG_TIDY=1"
    else
        echo "warning: clang-tidy not installed — skipping (set" \
             "SLO_REQUIRE_CLANG_TIDY=1 to make this fatal)" >&2
    fi
}

stage_asan() {
    step "ASan/UBSan build (preset: asan, -j$jobs)"
    cmake --preset asan || die "cmake configure (asan)"
    cmake --build --preset asan -j "$jobs" || die "asan build"
    step "ctest under ASan/UBSan with SLO_CHECK_LEVEL=full"
    ctest --preset asan -j "$jobs" || die "asan ctest"
}

stage_tsan() {
    step "TSan build (preset: tsan, -j$jobs)"
    cmake --preset tsan || die "cmake configure (tsan)"
    cmake --build --preset tsan -j "$jobs" || die "tsan build"
    if [ "${SLO_TSAN_FULL:-0}" = "1" ]; then
        step "ctest under TSan (full suite, SLO_TSAN_FULL=1)"
        ctest --preset tsan -j "$jobs" || die "tsan ctest"
    else
        step "ctest under TSan (concurrency+qc; SLO_TSAN_FULL=1" \
             "for all)"
        ctest --preset tsan -L 'concurrency|qc' -j "$jobs" \
            || die "tsan ctest"
    fi
}

build_default() {
    step "default build (preset: default, -j$jobs)"
    cmake --preset default || die "cmake configure (default)"
    cmake --build --preset default -j "$jobs" || die "default build"
}

stage_qc() {
    step "qc property suite (default tree, full case counts)"
    ctest --preset default -L qc -j "$jobs" || die "qc ctest"
}

stage_golden() {
    step "golden regression snapshots (scripts/golden.py)"
    ctest --preset default -L golden -j "$jobs" || die "golden ctest"
}

ran_any=0
default_built=0
for stage in $stages; do
    case "$stage" in
        lint|tidy|asan|tsan|qc|golden) ;;
        *) die "unknown stage '$stage' (valid: $all_stages)" ;;
    esac
done
for stage in $stages; do
    if [ "$stage" = "qc" ] || [ "$stage" = "golden" ]; then
        [ "$default_built" = "1" ] || { build_default
                                        default_built=1; }
    fi
    "stage_$stage"
    ran_any=1
done
[ "$ran_any" = "1" ] || die "no stages selected"

# Only a run of the complete gate earns the bench stamp.
full=1
for stage in $all_stages; do
    wants "$stage" || full=0
done
step "OK"
if [ "$full" = "1" ]; then
    write_stamp
else
    echo "subset run ($stages) — stamp not written"
fi
