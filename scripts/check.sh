#!/bin/bash
# Single local/CI gate for the slo tree (see CONTRIBUTING.md).
#
# The stage list below (stage_table) is the one source of truth: the
# usage text, stage validation, the full-set check that gates the
# bench stamp, and dispatch (stage_<name> functions) all derive from
# it. Adding a stage means adding one table row and one function.
#
# Usage: scripts/check.sh [-j N] [--stages sa,asan,...] [--stamp-only]
#
# SLO_CHECK_STAGES (or --stages) selects a comma/space-separated subset
# of stages, e.g. for CI jobs that split the gate across runners:
#     SLO_CHECK_STAGES=sa,tidy scripts/check.sh
# The gate is non-interactive and fail-fast: the first failing stage
# aborts the run with its exit code.
#
# On success of the FULL stage set this writes .slo-check-stamp
# (git SHA + tree state) at the repo root; scripts/run_benches.sh
# refuses to run without a stamp matching the current SHA. A subset run
# never writes the stamp. CI pipelines that run the stages as separate
# jobs write the stamp from a final job — gated on every stage job
# succeeding — with:
#     scripts/check.sh --stamp-only
set -uo pipefail
cd "$(dirname "$0")/.."

# name|description — one row per stage, in execution order.
stage_table() {
    cat <<'EOF'
sa|project static analysis (scripts/sa/run.py): module layering, lock order, determinism, env registry, and style rules over src/, bench/, tests/
tidy|clang-tidy over the compilation database — skipped with a warning when the binary is missing; SLO_REQUIRE_CLANG_TIDY=1 makes its absence fatal
asan|ASan/UBSan build (preset "asan") and full ctest with SLO_CHECK_LEVEL=full so every contract validator runs deep checks under the sanitizers
tsan|TSan build (preset "tsan") running the concurrency- and qc-labelled tests; SLO_TSAN_FULL=1 runs the whole suite
qc|property suite on the default (unsanitized) tree with the full default case counts (sanitizer presets cap cases at 25)
golden|regression snapshots: fig2/table3/table4 benches diffed against tests/golden/ (refresh intentional changes with scripts/golden.py --bless)
EOF
}

all_stages="$(stage_table | cut -d'|' -f1 | tr '\n' ' ')"
all_stages="${all_stages% }"
stages="${SLO_CHECK_STAGES:-$all_stages}"
jobs="$(nproc 2>/dev/null || echo 4)"
stamp_only=0

usage() {
    echo "Usage: scripts/check.sh [-j N] [--stages LIST] [--stamp-only]"
    echo "Stages (default: all, in this order):"
    stage_table | while IFS='|' read -r name desc; do
        printf '  %-8s %s\n' "$name" "$desc"
    done
}

while [ "$#" -gt 0 ]; do
    case "$1" in
        -j)
            [ -n "${2:-}" ] || { echo "check.sh: -j needs a value" >&2
                                 exit 2; }
            jobs="$2"; shift 2 ;;
        --stages)
            [ -n "${2:-}" ] || { echo "check.sh: --stages needs a" \
                                      "value" >&2; exit 2; }
            stages="$2"; shift 2 ;;
        --stamp-only)
            stamp_only=1; shift ;;
        -h|--help)
            usage; exit 0 ;;
        *)
            echo "check.sh: unknown argument: $1" >&2; exit 2 ;;
    esac
done
stages="${stages//,/ }"

write_stamp() {
    local sha dirty=""
    sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    git diff --quiet HEAD 2>/dev/null || dirty="-dirty"
    printf '%s%s\n' "$sha" "$dirty" > .slo-check-stamp
    echo "stamp written: .slo-check-stamp ($sha$dirty)"
}

if [ "$stamp_only" = "1" ]; then
    write_stamp
    exit 0
fi

step() { printf '\n== %s ==\n' "$*"; }
die() { echo "check.sh: FAIL: $*" >&2; exit 1; }

wants() { case " $stages " in *" $1 "*) return 0 ;; esac; return 1; }

stage_sa() {
    step "static analysis (scripts/sa/run.py)"
    mkdir -p build/sa
    python3 scripts/sa/run.py \
        --json build/sa/findings.json \
        --dot build/sa/layering.dot \
        || die "static-analysis findings above (artifacts in build/sa/)"
}

stage_tidy() {
    step "clang-tidy"
    if command -v clang-tidy >/dev/null 2>&1; then
        # The database lives in whichever tree configured last; prefer
        # the asan tree (configured below on first run) then the
        # default one.
        local db_dir=""
        for d in build-asan build; do
            [ -f "$d/compile_commands.json" ] && db_dir="$d" && break
        done
        if [ -z "$db_dir" ]; then
            cmake --preset asan >/dev/null \
                || die "cmake configure (asan)"
            db_dir=build-asan
        fi
        mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
        clang-tidy -p "$db_dir" --quiet "${tidy_sources[@]}" \
            || die "clang-tidy findings above"
    elif [ "${SLO_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
        die "clang-tidy not installed but SLO_REQUIRE_CLANG_TIDY=1"
    else
        echo "warning: clang-tidy not installed — skipping (set" \
             "SLO_REQUIRE_CLANG_TIDY=1 to make this fatal)" >&2
    fi
}

stage_asan() {
    step "ASan/UBSan build (preset: asan, -j$jobs)"
    cmake --preset asan || die "cmake configure (asan)"
    cmake --build --preset asan -j "$jobs" || die "asan build"
    step "ctest under ASan/UBSan with SLO_CHECK_LEVEL=full"
    ctest --preset asan -j "$jobs" || die "asan ctest"
}

stage_tsan() {
    step "TSan build (preset: tsan, -j$jobs)"
    cmake --preset tsan || die "cmake configure (tsan)"
    cmake --build --preset tsan -j "$jobs" || die "tsan build"
    if [ "${SLO_TSAN_FULL:-0}" = "1" ]; then
        step "ctest under TSan (full suite, SLO_TSAN_FULL=1)"
        ctest --preset tsan -j "$jobs" || die "tsan ctest"
    else
        step "ctest under TSan (concurrency+qc; SLO_TSAN_FULL=1" \
             "for all)"
        ctest --preset tsan -L 'concurrency|qc' -j "$jobs" \
            || die "tsan ctest"
    fi
}

build_default() {
    step "default build (preset: default, -j$jobs)"
    cmake --preset default || die "cmake configure (default)"
    cmake --build --preset default -j "$jobs" || die "default build"
}

stage_qc() {
    step "qc property suite (default tree, full case counts)"
    ctest --preset default -L qc -j "$jobs" || die "qc ctest"
}

stage_golden() {
    step "golden regression snapshots (scripts/golden.py)"
    ctest --preset default -L golden -j "$jobs" || die "golden ctest"
}

ran_any=0
default_built=0
for stage in $stages; do
    wants_valid=0
    for known in $all_stages; do
        [ "$stage" = "$known" ] && wants_valid=1 && break
    done
    [ "$wants_valid" = "1" ] \
        || die "unknown stage '$stage' (valid: $all_stages)"
done
for stage in $all_stages; do
    wants "$stage" || continue
    if [ "$stage" = "qc" ] || [ "$stage" = "golden" ]; then
        [ "$default_built" = "1" ] || { build_default
                                        default_built=1; }
    fi
    "stage_$stage"
    ran_any=1
done
[ "$ran_any" = "1" ] || die "no stages selected"

# Only a run of the complete gate earns the bench stamp.
full=1
for stage in $all_stages; do
    wants "$stage" || full=0
done
step "OK"
if [ "$full" = "1" ]; then
    write_stamp
else
    echo "subset run ($stages) — stamp not written"
fi
