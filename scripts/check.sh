#!/bin/bash
# Single local/CI gate for the slo tree (see CONTRIBUTING.md):
#
#   1. scripts/lint_slo.py over src/ and bench/ (project rules the
#      compiler cannot express: Index/Offset discipline, chrono usage,
#      include hygiene, ...).
#   2. clang-tidy over the compilation database — skipped with a
#      warning when the binary is not installed; set
#      SLO_REQUIRE_CLANG_TIDY=1 to make its absence fatal (CI images
#      that ship it should do this).
#   3. ASan/UBSan build of the full test suite (cmake preset "asan":
#      -DSLO_SANITIZE=address;undefined, -Werror, bench/examples off)
#      and ctest with SLO_CHECK_LEVEL=full so every contract validator
#      runs its deep checks under the sanitizers.
#   4. TSan build (cmake preset "tsan") running the concurrency- and
#      qc-labelled tests (thread pool, obs contention, artifact-cache
#      races, property-based oracles). Set SLO_TSAN_FULL=1 to run the
#      whole suite under TSan instead.
#   5. qc property suite on the default (unsanitized) tree with the
#      full default case counts — the sanitizer presets cap cases via
#      SLO_QC_CASES=25, this stage runs the deeper sweep.
#   6. golden regression snapshots: the fig2/table3/table4 benches in
#      the pinned configuration diffed against tests/golden/
#      (scripts/golden.py; refresh intentional changes with --bless).
#
# On success writes .slo-check-stamp (git SHA + tree state) at the repo
# root; scripts/run_benches.sh refuses to run without a stamp matching
# the current SHA. Usage: scripts/check.sh [-j N]
set -u
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
    jobs="$2"
fi

step() { printf '\n== %s ==\n' "$*"; }
die() { echo "check.sh: FAIL: $*" >&2; exit 1; }

step "lint (scripts/lint_slo.py)"
python3 scripts/lint_slo.py src bench || die "lint findings above"

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    # The database lives in whichever tree configured last; prefer the
    # asan tree (configured below on first run) then the default one.
    db_dir=""
    for d in build-asan build; do
        [ -f "$d/compile_commands.json" ] && db_dir="$d" && break
    done
    if [ -z "$db_dir" ]; then
        cmake --preset asan >/dev/null || die "cmake configure (asan)"
        db_dir=build-asan
    fi
    mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
    clang-tidy -p "$db_dir" --quiet "${tidy_sources[@]}" \
        || die "clang-tidy findings above"
elif [ "${SLO_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
    die "clang-tidy not installed but SLO_REQUIRE_CLANG_TIDY=1"
else
    echo "warning: clang-tidy not installed — skipping (set" \
         "SLO_REQUIRE_CLANG_TIDY=1 to make this fatal)" >&2
fi

step "ASan/UBSan build (preset: asan, -j$jobs)"
cmake --preset asan || die "cmake configure (asan)"
cmake --build --preset asan -j "$jobs" || die "asan build"

step "ctest under ASan/UBSan with SLO_CHECK_LEVEL=full"
ctest --preset asan -j "$jobs" || die "asan ctest"

step "TSan build (preset: tsan, -j$jobs)"
cmake --preset tsan || die "cmake configure (tsan)"
cmake --build --preset tsan -j "$jobs" || die "tsan build"

if [ "${SLO_TSAN_FULL:-0}" = "1" ]; then
    step "ctest under TSan (full suite, SLO_TSAN_FULL=1)"
    ctest --preset tsan -j "$jobs" || die "tsan ctest"
else
    step "ctest under TSan (concurrency+qc; SLO_TSAN_FULL=1 for all)"
    ctest --preset tsan -L 'concurrency|qc' -j "$jobs" \
        || die "tsan ctest"
fi

step "default build for qc + golden (preset: default, -j$jobs)"
cmake --preset default || die "cmake configure (default)"
cmake --build --preset default -j "$jobs" || die "default build"

step "qc property suite (default tree, full case counts)"
ctest --preset default -L qc -j "$jobs" || die "qc ctest"

step "golden regression snapshots (scripts/golden.py)"
ctest --preset default -L golden -j "$jobs" || die "golden ctest"

sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
dirty=""
git diff --quiet HEAD 2>/dev/null || dirty="-dirty"
printf '%s%s\n' "$sha" "$dirty" > .slo-check-stamp
step "OK"
echo "stamp written: .slo-check-stamp ($sha$dirty)"
