#!/bin/bash
# Smoke-test the observability pipeline end to end: run one bench at
# tiny scale with tracing on, then validate the emitted manifest and
# Chrome trace with obs_validate.
#
# Usage: scripts/bench_smoke.sh <bench-binary> <obs-validate-binary>
# (The bench_smoke ctest passes the build-tree paths.)
set -eu

bench="${1:?usage: bench_smoke.sh <bench-binary> <obs-validate-binary>}"
validate="${2:?usage: bench_smoke.sh <bench-binary> <obs-validate-binary>}"

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

name="$(basename "$bench")"
echo "== bench_smoke: $name -> $out"
SLO_TRACE=1 SLO_OBS_DIR="$out" SLO_LOG=info \
    REPRO_SCALE=small REPRO_LIMIT=1 \
    "$bench" > "$out/$name.txt"

# Artifact names are slugs of the bench's descriptive title, so find
# them by suffix — the fresh temp dir holds exactly one run.
manifest="$(ls "$out"/*.manifest.json 2>/dev/null | head -n1)"
trace="$(ls "$out"/*.trace.json 2>/dev/null | head -n1)"
metrics="$(ls "$out"/*.metrics.jsonl 2>/dev/null | head -n1)"
for f in "$manifest" "$trace" "$metrics"; do
    [ -n "$f" ] && [ -s "$f" ] ||
        { echo "missing observability artifact in $out" >&2; exit 1; }
done

"$validate" "$manifest" "$trace"
echo "== bench_smoke: OK"
