#!/usr/bin/env python3
"""Golden regression harness for the bench pipeline.

Runs the snapshot benches (fig2/table3/table4/ext_spgemm) in a pinned
configuration (REPRO_SCALE=small, REPRO_LIMIT=3, SLO_THREADS=1 so the
manifest's per-matrix simulation arrays come out in deterministic
order), distills each run into a `slo.golden/1` document — the CSV
tables plus the run manifest with volatile fields stripped — and
diffs it against the committed snapshot in tests/golden/.

Usage:
  scripts/golden.py [--build-dir build] [--filter fig2 ...]
  scripts/golden.py --bless          # regenerate the snapshots
  scripts/golden.py --expect-dirty   # succeed IFF something diverges
                                     # (used by the golden_fault ctest)

Numeric leaves compare with a relative tolerance (--tolerance,
default 1e-9: runs are bit-deterministic, the slack only absorbs JSON
round-tripping). Everything else must match exactly.
"""

import argparse
import csv
import json
import os
import pathlib
import subprocess
import sys
import tempfile

SCHEMA = "slo.golden/1"
REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "golden"

# bench binary -> committed snapshot stem
BENCHES = {
    "fig2_dram_traffic": "fig2_dram_traffic",
    "table3_dead_lines": "table3_dead_lines",
    "table4_other_kernels": "table4_other_kernels",
    "ext_spgemm": "spgemm_table",
}

# Volatile manifest fields: host/build identity, wall-clock data, and
# the v2 profiling sections (hardware/rusage counters, pool stats and
# latency quantiles are all host- and load-dependent).
VOLATILE_TOP = {
    "git_sha",
    "hostname",
    "build",
    "started_at",
    "wall_seconds",
    "threads",
    "metrics",
    "prof",
    "pool",
    "latency",
}
VOLATILE_PER_MATRIX = {"phases", "counters"}


def run_bench(build_dir: pathlib.Path, name: str, out_dir: pathlib.Path):
    binary = build_dir / "bench" / name
    if not binary.is_file():
        raise SystemExit(
            f"golden.py: {binary} not built "
            "(configure with -DSLO_BUILD_BENCH=ON and build)"
        )
    env = dict(os.environ)
    env.update(
        REPRO_SCALE="small",
        REPRO_LIMIT="3",
        REPRO_CSV_DIR=str(out_dir),
        SLO_OBS_DIR=str(out_dir),
        SLO_THREADS="1",
        SLO_TRACE="1",
        SLO_LOG="warn",
    )
    # Share one artifact cache across golden runs, but never the
    # user's: a cache poisoned by an aborted run would corrupt every
    # subsequent diff.
    env.setdefault("SLO_CACHE_DIR", str(build_dir / "golden-cache"))
    proc = subprocess.run(
        [str(binary)],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"golden.py: {name} exited {proc.returncode}")


def load_tables(out_dir: pathlib.Path):
    tables = {}
    for path in sorted(out_dir.glob("*.csv")):
        with open(path, newline="") as handle:
            tables[path.stem] = [row for row in csv.reader(handle)]
    return tables


def load_manifest(out_dir: pathlib.Path):
    manifests = sorted(out_dir.glob("*.manifest.json"))
    if len(manifests) != 1:
        raise SystemExit(
            f"golden.py: expected exactly one manifest in {out_dir}, "
            f"found {[m.name for m in manifests]}"
        )
    with open(manifests[0]) as handle:
        doc = json.load(handle)
    for key in VOLATILE_TOP:
        doc.pop(key, None)
    for matrix in doc.get("matrices", {}).values():
        for key in VOLATILE_PER_MATRIX:
            matrix.pop(key, None)
    return doc


def snapshot(build_dir: pathlib.Path, name: str):
    with tempfile.TemporaryDirectory(prefix=f"slo-golden-{name}-") as tmp:
        out_dir = pathlib.Path(tmp)
        run_bench(build_dir, name, out_dir)
        return {
            "schema": SCHEMA,
            "bench": name,
            "pinned_env": {
                "REPRO_SCALE": "small",
                "REPRO_LIMIT": "3",
                "SLO_THREADS": "1",
            },
            "tables": load_tables(out_dir),
            "manifest": load_manifest(out_dir),
        }


def diff_values(got, want, path, out, tolerance):
    """Append human-readable differences between two JSON trees."""
    if isinstance(want, (int, float)) and not isinstance(want, bool):
        if not isinstance(got, (int, float)) or isinstance(got, bool):
            out.append(f"{path}: {got!r} != {want!r}")
        elif abs(got - want) > tolerance * max(1.0, abs(want)):
            out.append(f"{path}: {got!r} != {want!r}")
        return
    if type(got) is not type(want):
        out.append(f"{path}: type {type(got).__name__} != "
                   f"{type(want).__name__}")
        return
    if isinstance(want, dict):
        for key in sorted(set(got) | set(want)):
            if key not in got:
                out.append(f"{path}.{key}: missing in new run")
            elif key not in want:
                out.append(f"{path}.{key}: not in golden (re-bless?)")
            else:
                diff_values(got[key], want[key], f"{path}.{key}", out,
                            tolerance)
        return
    if isinstance(want, list):
        if len(got) != len(want):
            out.append(f"{path}: length {len(got)} != {len(want)}")
            return
        for i, (g, w) in enumerate(zip(got, want)):
            diff_values(g, w, f"{path}[{i}]", out, tolerance)
        return
    if got != want:
        out.append(f"{path}: {got!r} != {want!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--bless", action="store_true",
                        help="rewrite tests/golden/ from this run")
    parser.add_argument("--expect-dirty", action="store_true",
                        help="invert the verdict: succeed iff diffs "
                        "exist (fault-injection self-test)")
    parser.add_argument("--filter", nargs="*", default=None,
                        help="substring filters on bench names")
    parser.add_argument("--tolerance", type=float, default=1e-9)
    args = parser.parse_args()

    build_dir = (REPO / args.build_dir).resolve()
    names = [
        name
        for name in BENCHES
        if args.filter is None
        or any(f in name for f in args.filter)
    ]
    if not names:
        raise SystemExit("golden.py: --filter matched no benches")

    if args.bless and os.environ.get("SLO_SIM_RANDOM_EFFICIENCY"):
        raise SystemExit(
            "golden.py: refusing to --bless with "
            "SLO_SIM_RANDOM_EFFICIENCY set (the snapshots must come "
            "from the calibrated model)"
        )

    dirty = []
    for name in names:
        doc = snapshot(build_dir, name)
        golden_path = GOLDEN_DIR / f"{BENCHES[name]}.json"
        if args.bless:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            with open(golden_path, "w") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"[golden] blessed {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.is_file():
            dirty.append(f"{name}: no snapshot at "
                         f"{golden_path.relative_to(REPO)} "
                         "(run scripts/golden.py --bless)")
            continue
        with open(golden_path) as handle:
            want = json.load(handle)
        if want.get("schema") != SCHEMA:
            dirty.append(f"{name}: snapshot schema "
                         f"{want.get('schema')!r} != {SCHEMA!r} "
                         "(re-bless after the schema change)")
            continue
        diffs = []
        diff_values(doc, want, name, diffs, args.tolerance)
        if diffs:
            limit = 25
            shown = "\n  ".join(diffs[:limit])
            more = len(diffs) - limit
            tail = f"\n  ... and {more} more" if more > 0 else ""
            dirty.append(f"{name}: {len(diffs)} difference(s)\n"
                         f"  {shown}{tail}")
        else:
            print(f"[golden] {name}: matches "
                  f"{golden_path.relative_to(REPO)}")

    if args.bless:
        return 0
    if args.expect_dirty:
        if dirty:
            print("[golden] divergence detected as expected:")
            print(dirty[0].splitlines()[0])
            return 0
        print("golden.py: --expect-dirty but every bench matched "
              "(the snapshots are not sensitive to the model)",
              file=sys.stderr)
        return 1
    if dirty:
        print("golden.py: FAIL — bench outputs diverged from "
              "tests/golden/:", file=sys.stderr)
        for entry in dirty:
            print(entry, file=sys.stderr)
        print("If the change is intentional, refresh with "
              "scripts/golden.py --bless and commit the diff.",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
