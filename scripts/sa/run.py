#!/usr/bin/env python3
"""slo-analyze: the project-aware multi-pass static analyzer.

Four project passes plus the migrated style rules, over src/, bench/,
tests/ and examples/:

  layering     SA001/SA002  declared module DAG vs the real include
                            graph, file-level cycle detection, DOT
                            artifact (--dot)
  lock-order   SA003/SA004  held-while-acquiring graph per TU:
                            inversions and hold-and-wait waits
  determinism  SA005..SA007 unordered iteration into output paths, FP
                            accumulation in parallelFor, banned
                            randomness
  env          SA008/SA009  getenv("SLO_*") <-> docs/env_registry.md,
                            verified in both directions
  style        SA101..SA110 the former scripts/lint_slo.py rules

Suppress a deliberate finding inline:      // sa-ok: SA004 <reason>
(a comment-only sa-ok line covers the next line). Grandfathered
findings live in scripts/sa/baseline.json; --update-baseline rewrites
it from the current findings (every entry then needs a justified
reason in review).

Exit status: 0 clean, 1 new findings, 2 usage error.

Usage:
  python3 scripts/sa/run.py [PATHS...] [--json OUT] [--dot OUT]
                            [--compdb PATH] [--baseline PATH]
                            [--update-baseline] [--list-rules]
                            [--quiet]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import compiledb   # noqa: E402
import config      # noqa: E402
import determinism # noqa: E402
import envreg      # noqa: E402
import layering    # noqa: E402
import lockorder   # noqa: E402
import style       # noqa: E402
from model import (RULES, Reporter, SourceFile,  # noqa: E402
                   load_baseline, write_baseline)

SCHEMA = "slo.sa-findings/1"


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def collect_files(root: Path, targets: list[str]) -> list[SourceFile]:
    paths: list[Path] = []
    for target in targets:
        path = root / target if not Path(target).is_absolute() \
            else Path(target)
        if path.is_file():
            paths.append(path)
        elif path.is_dir():
            for suffix in ("*.hpp", "*.h", "*.cpp"):
                paths.extend(sorted(path.rglob(suffix)))
        else:
            print(f"sa: no such path: {target}", file=sys.stderr)
            raise SystemExit(2)
    seen: set[Path] = set()
    files: list[SourceFile] = []
    for path in paths:
        rel = path.relative_to(root).as_posix() \
            if path.is_relative_to(root) else path.as_posix()
        if any(rel.startswith(d) for d in config.EXCLUDED_DIRS):
            continue
        if path in seen:
            continue
        seen.add(path)
        files.append(SourceFile(path, root))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sa", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        default=list(config.DEFAULT_ROOTS))
    parser.add_argument("--json", metavar="OUT",
                        help="write machine-readable findings")
    parser.add_argument("--dot", metavar="OUT",
                        help="write the module layering graph as DOT")
    parser.add_argument("--compdb", metavar="PATH",
                        help="compile_commands.json "
                             "(default: build*/compile_commands.json)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file "
                             "(default: scripts/sa/baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current "
                             "findings and exit 0")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return 0

    root = repo_root()
    targets = args.paths or list(config.DEFAULT_ROOTS)
    files = collect_files(root, targets)
    by_rel = {f.rel: f for f in files}

    baseline_path = Path(args.baseline) if args.baseline \
        else Path(__file__).resolve().parent / "baseline.json"
    baseline = (set() if args.update_baseline
                else load_baseline(baseline_path))
    reporter = Reporter(by_rel, baseline)

    # TU sanity: every analyzed src/ .cpp should be in the compilation
    # database (warn-only; the database may be stale or absent).
    db_path = compiledb.find_database(root, args.compdb)
    if db_path is not None and not args.quiet:
        units = compiledb.translation_units(db_path, root)
        missing = [rel for rel in by_rel
                   if rel.startswith("src/") and rel.endswith(".cpp")
                   and rel not in units]
        for rel in sorted(missing):
            print(f"sa: warning: {rel} not in {db_path.name} "
                  "(dead file or stale database?)", file=sys.stderr)

    dot_path = Path(args.dot) if args.dot else None
    layering.run(files, reporter, dot_path=dot_path)
    lockorder.run(files, reporter)
    determinism.run(files, reporter)
    envreg.run(files, reporter, root)
    style.run(files, reporter)

    findings = reporter.sorted_findings()

    if args.update_baseline:
        write_baseline(baseline_path, findings, by_rel)
        print(f"sa: baseline rewritten with {len(findings)} "
              f"finding(s): {baseline_path}")
        return 0

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")

    if args.json:
        payload = {
            "schema": SCHEMA,
            "files": len(files),
            "findings": [
                f.to_json(f.fingerprint(
                    by_rel[f.path].line_text(f.line)
                    if f.path in by_rel else ""))
                for f in findings
            ],
            "suppressed": reporter.suppressed_count,
            "baselined": len(reporter.baselined),
        }
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")

    if not args.quiet:
        status = ("clean" if not findings
                  else f"{len(findings)} finding(s)")
        extras = []
        if reporter.suppressed_count:
            extras.append(f"{reporter.suppressed_count} suppressed")
        if reporter.baselined:
            extras.append(f"{len(reporter.baselined)} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        print(f"sa: {len(files)} files, {status}{suffix}",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
