#!/usr/bin/env python3
"""sa_selftest: proves every analyzer rule still fires.

For each rule ID in the catalog there is a fixture triple under
tests/sa/fixtures/<RULE>/:

  fire/        a minimal tree that must produce >= 1 finding of RULE
  suppressed/  the same violation carrying an `sa-ok: RULE` marker —
               must produce 0 findings of RULE and >= 1 suppression
  clean/       the correct spelling — 0 findings of RULE

A rule that silently stops firing (regex rot, pass regression) fails
the `fire` leg; a suppression-parsing regression fails the
`suppressed` leg; an over-eager rule fails the `clean` leg. The
catalog and the fixture directory are cross-checked both ways, so a
new rule cannot land without fixtures.

Run as a ctest (sa_selftest) and directly:
  python3 scripts/sa/selftest.py [--fixtures DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import determinism  # noqa: E402
import envreg       # noqa: E402
import layering     # noqa: E402
import lockorder    # noqa: E402
import style        # noqa: E402
from model import RULES, Reporter, SourceFile  # noqa: E402

VARIANTS = ("fire", "suppressed", "clean")


def analyze_subtree(subtree: Path) -> Reporter:
    paths = sorted(
        p for suffix in ("*.hpp", "*.h", "*.cpp")
        for p in subtree.rglob(suffix))
    files = [SourceFile(p, subtree) for p in paths]
    by_rel = {f.rel: f for f in files}
    reporter = Reporter(by_rel, baseline=set())
    layering.run(files, reporter)
    lockorder.run(files, reporter)
    determinism.run(files, reporter)
    envreg.run(files, reporter, subtree,
               doc_path=subtree / "env_registry.md",
               script_globs=())
    style.run(files, reporter)
    return reporter


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="sa_selftest")
    default_fixtures = (Path(__file__).resolve().parent.parent.parent
                        / "tests" / "sa" / "fixtures")
    parser.add_argument("--fixtures", type=Path,
                        default=default_fixtures)
    args = parser.parse_args(argv[1:])

    fixtures: Path = args.fixtures
    failures: list[str] = []

    rule_dirs = {p.name for p in fixtures.iterdir() if p.is_dir()}
    for rule in sorted(RULES):
        if rule not in rule_dirs:
            failures.append(f"{rule}: no fixture directory under "
                            f"{fixtures}")
    for stray in sorted(rule_dirs - set(RULES)):
        failures.append(f"{stray}: fixture directory for an unknown "
                        "rule")

    checked = 0
    for rule in sorted(set(RULES) & rule_dirs):
        for variant in VARIANTS:
            subtree = fixtures / rule / variant
            if not subtree.is_dir():
                failures.append(f"{rule}/{variant}: missing")
                continue
            reporter = analyze_subtree(subtree)
            hits = [f for f in reporter.findings if f.rule == rule]
            checked += 1
            if variant == "fire" and not hits:
                others = sorted({f.rule for f in reporter.findings})
                failures.append(
                    f"{rule}/fire: rule did not fire "
                    f"(other findings: {others or 'none'})")
            if variant == "suppressed":
                if hits:
                    failures.append(
                        f"{rule}/suppressed: finding leaked through "
                        f"the sa-ok marker: {hits[0].message}")
                if reporter.suppressed_count < 1:
                    failures.append(
                        f"{rule}/suppressed: no suppression was "
                        "recorded (marker not parsed?)")
            if variant == "clean" and hits:
                failures.append(
                    f"{rule}/clean: false positive: "
                    f"{hits[0].path}:{hits[0].line}: "
                    f"{hits[0].message}")

    for failure in failures:
        print(f"sa_selftest: FAIL: {failure}")
    if failures:
        return 1
    print(f"sa_selftest: OK — {len(RULES)} rules, {checked} fixture "
          "legs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
