"""Determinism pass (SA005, SA006, SA007).

The pipeline's byte-identical-output contract (goldens, manifests
diffed across thread counts) makes three shapes dangerous:

* SA005 — iterating an ``std::unordered_map`` / ``unordered_set``
  where the loop flows into an output path (manifest/metrics/report
  emission, stream ``<<``).  Hash iteration order is stdlib- and
  insertion-history-dependent; output paths must iterate sorted.
  Heuristic: the iterated variable was declared as an unordered
  container in the same file, and either the enclosing file belongs to
  an output module (obs, bench, report/manifest/golden sources) or the
  loop body mentions a sink token.
* SA006 — ``x += ...`` inside a ``parallelFor`` body where ``x`` is a
  float/double declared outside the lambda: cross-thread FP
  accumulation is both racy and order-dependent; use
  ``parallelReduce`` (fixed grain-chunked fold order).
* SA007 — ``rand()`` / ``srand()`` / ``std::random_device`` outside
  the qc generators: all randomness must be seeded and flow from
  ``matrix/rng.hpp`` or ``qc::gen`` so every run is reproducible.
"""

from __future__ import annotations

import re

import config
from lexer import line_of, match_brace
from model import Reporter, SourceFile

_UNORDERED_DECL_RE = re.compile(
    r'\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*'
    r'(?:[&*]\s*)?(\w+)\s*[;,)({=]')
_UNORDERED_NESTED_RE = re.compile(
    r'\bstd::vector\s*<\s*std::unordered_(?:map|set)\s*<[^;]*?>\s*>\s*'
    r'(\w+)\s*[;,)({=]')
# Range-for: split on a single ':' (not the '::' scope operator).
_RANGE_FOR_RE = re.compile(
    r'\bfor\s*\(([^;)]*?)(?<!:):(?!:)([^;)]*)\)\s*\{?')
_PARALLEL_FOR_RE = re.compile(r'\bparallelFor(?:Chunks)?\s*\(')
_FP_DECL_RE = re.compile(r'\b(?:double|float)\s+(\w+)\s*[;=({]')
_RANDOM_RE = re.compile(r'\b(rand|srand)\s*\(|\bstd::random_device\b')


def _base_identifier(expr: str) -> str:
    """``adjacency[static_cast<...>(v)]`` -> ``adjacency``;
    ``*map_ptr`` -> ``map_ptr``; ``obj.field`` -> ``field`` owner is
    unknown, so return the last component."""
    expr = expr.strip()
    expr = re.sub(r'\[.*$', '', expr)     # drop subscripts
    expr = re.sub(r'\(.*$', '', expr)     # drop call tails
    expr = expr.strip(' *&')
    if '.' in expr:
        expr = expr.rsplit('.', 1)[-1]
    if '->' in expr:
        expr = expr.rsplit('->', 1)[-1]
    return expr.strip()


def run(files: list[SourceFile], reporter: Reporter,
        sinks: tuple[str, ...] | None = None,
        output_modules: set[str] | None = None) -> None:
    sinks = config.DETERMINISM_SINKS if sinks is None else sinks
    output_modules = (config.OUTPUT_MODULES if output_modules is None
                      else output_modules)
    for source in files:
        _check_unordered_iteration(source, reporter, sinks,
                                   output_modules)
        _check_parallel_fp_accumulation(source, reporter)
        _check_randomness(source, reporter)


def _check_unordered_iteration(source: SourceFile, reporter: Reporter,
                               sinks: tuple[str, ...],
                               output_modules: set[str]) -> None:
    code = source.code
    unordered_names = {m.group(1)
                       for m in _UNORDERED_DECL_RE.finditer(code)}
    unordered_names |= {m.group(1)
                        for m in _UNORDERED_NESTED_RE.finditer(code)}
    if not unordered_names:
        return
    file_is_output = (
        source.module in output_modules or
        any(hint in source.rel.rsplit("/", 1)[-1]
            for hint in config.OUTPUT_FILE_HINTS))
    for m in _RANGE_FOR_RE.finditer(code):
        container = _base_identifier(m.group(2))
        if container not in unordered_names:
            continue
        line = line_of(code, m.start())
        # Body span: the statement or block following the range-for.
        brace = code.find("{", m.start(), m.end() + 4)
        if brace >= 0:
            body = code[brace:match_brace(code, brace)]
        else:
            semi = code.find(";", m.end())
            body = code[m.end():semi + 1 if semi >= 0 else len(code)]
        if file_is_output or any(s in body for s in sinks):
            reporter.report(
                "SA005", source.rel, line,
                f"iteration over unordered container '{container}' "
                "flows into an output path — iterate a sorted copy "
                "(or justify with sa-ok: hash order is stdlib-"
                "dependent and breaks byte-identical outputs)")


def _check_parallel_fp_accumulation(source: SourceFile,
                                    reporter: Reporter) -> None:
    code = source.code
    for m in _PARALLEL_FOR_RE.finditer(code):
        open_paren = code.find("(", m.start())
        close = _match_paren_span(code, open_paren)
        call = code[open_paren:close]
        lambda_start = call.find("[")
        if lambda_start < 0:
            continue
        lam_brace = call.find("{", lambda_start)
        if lam_brace < 0:
            continue
        lam_body = call[lam_brace:match_brace(call, lam_brace)]
        # FP variables declared before the call in the same file scope
        # (function-local or file-local; good enough per TU).
        declared_before = {
            d.group(1)
            for d in _FP_DECL_RE.finditer(code, 0, m.start())}
        declared_inside = {
            d.group(1) for d in _FP_DECL_RE.finditer(lam_body)}
        for acc in re.finditer(r'([A-Za-z_]\w*)\s*\+=', lam_body):
            name = acc.group(1)
            if name in declared_before and name not in declared_inside:
                line = line_of(code,
                               open_paren + lam_brace + acc.start())
                reporter.report(
                    "SA006", source.rel, line,
                    f"floating-point accumulation into '{name}' "
                    "inside a parallelFor body — summation order "
                    "depends on scheduling; use parallelReduce "
                    "(deterministic chunk-order fold)")


def _check_randomness(source: SourceFile, reporter: Reporter) -> None:
    if any(source.rel.startswith(p)
           for p in config.RANDOMNESS_ALLOWED):
        return
    for lineno, code in enumerate(source.code_lines, start=1):
        m = _RANDOM_RE.search(code)
        if m:
            what = m.group(0).strip().rstrip("(").strip()
            reporter.report(
                "SA007", source.rel, lineno,
                f"nondeterministic randomness source '{what}' — all "
                "randomness must be seeded (matrix/rng.hpp or "
                "qc::gen) so runs are reproducible")


def _match_paren_span(code: str, open_idx: int) -> int:
    depth = 0
    for j in range(open_idx, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(code)
