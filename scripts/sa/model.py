"""Core data model for the slo static analyzer.

Findings, suppression handling (``// sa-ok: SAxxx reason``), the
committed baseline of grandfathered findings, and the rule catalog all
live here so passes stay pure detection logic.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from lexer import sanitize

# ---------------------------------------------------------------------------
# Rule catalog. Every rule has a stable ID; the catalog is the single
# source of truth used by --list-rules, CONTRIBUTING docs, and the
# selftest (which requires fixtures per listed rule).
# ---------------------------------------------------------------------------

RULES: dict[str, str] = {
    # Project-aware passes.
    "SA001": "layering: include edge violates the declared module DAG",
    "SA002": "layering: include cycle between files",
    "SA003": "lock-order: potential lock-order inversion "
             "(A held while acquiring B, and elsewhere B held while "
             "acquiring A)",
    "SA004": "lock-order: blocking wait/help call while a lock is held "
             "(hold-and-wait; the PR 3 flock deadlock shape)",
    "SA005": "determinism: iteration over an unordered container flows "
             "into a manifest/metrics/report output path",
    "SA006": "determinism: floating-point accumulation into a variable "
             "captured by a parallelFor body (use parallelReduce)",
    "SA007": "determinism: banned nondeterministic call (rand, srand, "
             "std::random_device outside qc generators)",
    "SA008": "env: getenv(\"SLO_*\") / script env var missing from "
             "docs/env_registry.md",
    "SA009": "env: docs/env_registry.md row without any reference in "
             "the tree",
    # Migrated scripts/lint_slo.py rules.
    "SA101": "style: raw `long` in a public header — use Index/Offset "
             "or a <cstdint> type",
    "SA102": "style: `int` used for a row/col/vertex/nnz identifier in "
             "a header — use Index/Offset",
    "SA103": "style: std::chrono outside src/obs and src/prof — time "
             "through SLO_SPAN / obs timers",
    "SA104": "style: getrusage/perf_event_open outside src/obs and "
             "src/prof — use prof::CounterSet / prof::peakRssKb",
    "SA105": "style: std::thread/std::jthread/std::async outside "
             "src/par — use par::parallelFor / par::TaskGroup",
    "SA106": "style: assert() whose condition mutates state — NDEBUG "
             "would change behaviour; use SLO_CHECK",
    "SA107": "style: header without #pragma once",
    "SA108": "style: relative or unprefixed include — includes are "
             "rooted at src/",
    "SA109": "style: `using namespace std`",
    "SA110": "style: <iostream> in a header — use <iosfwd> / <ostream>",
}

SUPPRESS_RE = re.compile(r"//\s*sa-ok:\s*((?:SA\d{3}[,\s]*)+)(.*)")


@dataclass
class Finding:
    rule: str
    path: str           # repo-relative, posix
    line: int           # 1-based; 0 for whole-file findings
    message: str

    def key(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}]"

    def fingerprint(self, line_text: str) -> str:
        """Line-number-independent identity used by the baseline: rule
        + path + normalized source line, so unrelated edits above a
        grandfathered finding don't invalidate it."""
        norm = re.sub(r"\s+", " ", line_text.strip())
        blob = f"{self.rule}|{self.path}|{norm}"
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    def to_json(self, fingerprint: str) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": fingerprint,
        }


class SourceFile:
    """A lazily sanitized source file with suppression info."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.rel = (path.relative_to(root) if path.is_relative_to(root)
                    else path).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.code = sanitize(self.raw)
        self.code_lines = self.code.splitlines()
        self.is_header = path.suffix in {".hpp", ".h"}
        self.module = module_of(self.rel)
        self._suppressions = self._parse_suppressions()

    def _parse_suppressions(self) -> dict[int, set[str]]:
        """``// sa-ok: SAxxx [SAyyy] reason`` suppresses those rules on
        its own line; a comment-only sa-ok line suppresses the next
        line (for findings on lines too long to carry a trailer)."""
        supp: dict[int, set[str]] = {}
        for lineno, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if not m:
                continue
            ids = set(re.findall(r"SA\d{3}", m.group(1)))
            supp.setdefault(lineno, set()).update(ids)
            if raw.strip().startswith("//"):
                supp.setdefault(lineno + 1, set()).update(ids)
        return supp

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self._suppressions.get(line, set())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1]
        return ""


def module_of(rel_posix: str) -> str:
    """Module name of a repo-relative path: ``src/<mod>/...`` maps to
    ``<mod>``; top-level trees (bench, tests, examples) are their own
    modules; anything else is ``""`` (unlayered)."""
    parts = rel_posix.split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    if parts[0] in {"bench", "tests", "examples"}:
        return parts[0]
    return ""


class Reporter:
    """Collects findings, applying suppressions and the baseline."""

    def __init__(self, files_by_rel: dict[str, SourceFile],
                 baseline: set[str]) -> None:
        self._files = files_by_rel
        self._baseline = baseline
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self.baselined: list[Finding] = []

    def report(self, rule: str, rel: str, line: int, message: str) -> None:
        assert rule in RULES, f"unknown rule {rule}"
        finding = Finding(rule, rel, line, message)
        source = self._files.get(rel)
        if source is not None and source.suppressed(line, rule):
            self.suppressed_count += 1
            return
        text = source.line_text(line) if source is not None else ""
        if finding.fingerprint(text) in self._baseline:
            self.baselined.append(finding)
            return
        self.findings.append(finding)

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.rule))


# ---------------------------------------------------------------------------
# Baseline: a committed JSON list of fingerprints for grandfathered
# findings. The goal is an empty list; every entry needs a reason.
# ---------------------------------------------------------------------------

def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: list[Finding],
                   files_by_rel: dict[str, SourceFile]) -> None:
    entries = []
    for f in findings:
        source = files_by_rel.get(f.path)
        text = source.line_text(f.line) if source is not None else ""
        entries.append({
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "message": f.message,
            "fingerprint": f.fingerprint(text),
            "reason": "TODO: justify or fix",
        })
    path.write_text(json.dumps(
        {"schema": "slo.sa-baseline/1", "findings": entries},
        indent=2, sort_keys=True) + "\n")
