"""Layering pass (SA001, SA002).

Builds the real include graph from quoted ``#include`` directives and
enforces the declared module DAG from ``config.LAYERING``:

* SA001 — a file in module M includes a header from module N that M's
  declared dependency set does not contain.
* SA002 — a cycle in the file-level include graph (reported once per
  cycle, at its lexicographically smallest member).

The observed *module* graph can be rendered to Graphviz DOT (allowed
edges solid, violations red and bold) for the CI artifact.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import config
from model import Reporter, SourceFile, module_of

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def quoted_includes(source: SourceFile) -> list[tuple[int, str]]:
    """(line, target) for every quoted include, read from the raw text
    (the sanitizer blanks the quoted path)."""
    out = []
    for m in _INCLUDE_RE.finditer(source.raw):
        line = source.raw.count("\n", 0, m.start()) + 1
        out.append((line, m.group(1)))
    return out


def _resolve(source: SourceFile, target: str,
             by_rel: dict[str, SourceFile]) -> str | None:
    """Repo-relative path of an include target, or None if it points
    outside the analyzed set (e.g. generated headers)."""
    rooted = f"src/{target}"
    if rooted in by_rel:
        return rooted
    sibling = os.path.normpath(str(Path(source.rel).parent / target))
    if sibling in by_rel:
        return sibling
    if target in by_rel:
        return target
    return None


def run(files: list[SourceFile], reporter: Reporter,
        layering: dict[str, set[str]] | None = None,
        unrestricted: set[str] | None = None,
        dot_path: Path | None = None) -> None:
    layering = config.LAYERING if layering is None else layering
    unrestricted = (config.UNRESTRICTED_MODULES if unrestricted is None
                    else unrestricted)
    by_rel = {f.rel: f for f in files}
    known_modules = set(layering) | {f.module for f in files}
    file_graph: dict[str, list[str]] = {}
    module_edges: dict[tuple[str, str], int] = {}
    violating_edges: set[tuple[str, str]] = set()

    for source in files:
        targets: list[str] = []
        for line, target in quoted_includes(source):
            resolved = _resolve(source, target, by_rel)
            if resolved is not None:
                targets.append(resolved)
            # Module attribution works from the include text even when
            # the file is outside the analyzed set; third-party quoted
            # includes (unknown modules) are ignored.
            if resolved is not None:
                target_module = module_of(resolved)
            elif "/" in target:
                target_module = module_of(f"src/{target}")
            else:
                target_module = ""
            if target_module not in known_modules:
                continue
            if not target_module or target_module == source.module:
                continue
            key = (source.module, target_module)
            module_edges[key] = module_edges.get(key, 0) + 1
            if source.module in unrestricted:
                continue
            allowed = layering.get(source.module)
            if allowed is None or target_module not in allowed:
                violating_edges.add(key)
                reporter.report(
                    "SA001", source.rel, line,
                    f"module '{source.module}' must not include "
                    f"'{target}' (module '{target_module}' is not in "
                    f"its declared dependency set)")
        file_graph[source.rel] = targets

    _report_cycles(file_graph, reporter)
    if dot_path is not None:
        dot_path.parent.mkdir(parents=True, exist_ok=True)
        dot_path.write_text(render_dot(module_edges, violating_edges))


def _report_cycles(graph: dict[str, list[str]],
                   reporter: Reporter) -> None:
    """Tarjan SCC over the file include graph; every SCC with more
    than one node (or a self-edge) is a cycle."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth could exceed the Python
        # limit on deep include chains.
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = graph.get(node, [])
            for i in range(pi, len(successors)):
                w = successors[i]
                if w not in index:
                    work[-1] = (node, i + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if recurse:
                continue
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    for scc in sccs:
        if len(scc) == 1 and scc[0] not in graph.get(scc[0], []):
            continue
        members = sorted(scc)
        # Reported at line 1 of the smallest member so an inline
        # sa-ok suppression remains possible.
        reporter.report(
            "SA002", members[0], 1,
            "include cycle: " + " -> ".join(members + [members[0]]))


def render_dot(module_edges: dict[tuple[str, str], int],
               violating: set[tuple[str, str]]) -> str:
    lines = [
        "digraph slo_layering {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    nodes = sorted({m for edge in module_edges for m in edge})
    for node in nodes:
        lines.append(f"  \"{node}\";")
    for (src, dst), count in sorted(module_edges.items()):
        attrs = [f"label=\"{count}\""]
        if (src, dst) in violating:
            attrs.append("color=red")
            attrs.append("penwidth=2")
            attrs.append("fontcolor=red")
        lines.append(
            f"  \"{src}\" -> \"{dst}\" [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"
