"""Lock-order pass (SA003, SA004).

Per translation unit, extracts lock-acquisition sites —
``std::lock_guard`` / ``unique_lock`` / ``scoped_lock`` declarations,
explicit ``.lock()`` calls, ``flock(...)``, and ``CacheKeyLock``
construction — and walks each function body with a brace-scope stack
to know which locks are held at every statement. From that it builds
an inter-procedural (within the TU) *held-while-acquiring* graph:

* SA003 — the union of all TUs' graphs contains both A->B and B->A for
  distinct locks A, B: a potential lock-order inversion.
* SA004 — a blocking wait/help call (``TaskGroup::wait``, ``join``,
  ``parallelFor``-family, condition-variable waits) is made while any
  lock is held: the hold-and-wait shape behind the PR 3 cross-process
  flock deadlock (a waiter stealing unrelated work while holding a
  per-key flock).

Lock identity is the normalized mutex expression. Member-style names
(``mutex_``, ``registry.mutex``) are qualified with the function's
class/namespace context so identical field names in different classes
do not alias; globals (``g_*``) and namespace-qualified names stand
alone. This is a heuristic, not an alias analysis — the suppression
and baseline machinery exists precisely for the residual noise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import config
from lexer import Function, extract_functions, line_of
from model import Reporter, SourceFile

_GUARD_RE = re.compile(
    r'\b(?:std::)?(lock_guard|unique_lock|shared_lock|scoped_lock)\s*'
    r'(?:<[^;>]*>)?\s+(\w+)\s*[({]([^;)}]*)[)}]')
_CACHEKEY_RE = re.compile(r'\bCacheKeyLock\s+(\w+)\s*[({]')
_FLOCK_RE = re.compile(r'\bflock\s*\(\s*([^,]+),\s*LOCK_(EX|SH)\b')
_EXPLICIT_LOCK_RE = re.compile(
    r'([A-Za-z_][\w.\->:\[\]]*?)\s*(?:\.|->)\s*lock\s*\(\s*\)')
_CALL_RE = re.compile(r'([A-Za-z_][\w:]*)\s*\(')
_MEMBER_CALL_RE = re.compile(
    r'([A-Za-z_][\w.\->:\[\]()]*?)\s*(?:\.|->)\s*(\w+)\s*\(')

_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
             "sizeof", "static_cast", "dynamic_cast", "const_cast",
             "reinterpret_cast", "assert", "defined", "decltype"}


def _normalize_lock(expr: str, owner: str) -> str:
    """Canonical lock identity for a mutex expression."""
    expr = expr.strip()
    expr = re.sub(r'^\*', '', expr)          # *mutex_ptr
    expr = re.sub(r'\s+', '', expr)
    expr = expr.replace('this->', '')
    if not expr:
        return f"{owner}::<anon>"
    # Namespace-qualified or global-style names stand alone; member
    # fields get the owning class/namespace prefix.
    if "::" in expr or expr.startswith("g_"):
        return expr
    return f"{owner}::{expr}" if owner else expr


@dataclass
class Acquisition:
    lock: str
    line: int
    scope_depth: int   # brace depth at acquisition; released when the
                       # walker pops below it (guard destructor)
    var: str = ""      # guard variable name, when one exists


@dataclass
class FunctionSummary:
    name: str
    qualname: str
    rel: str
    acquires: set[str]             # locks acquired anywhere inside
    calls: set[str]                # unqualified callee names
    # (held_lock, acquired_lock, line) direct edges
    edges: list[tuple[str, str, int]]
    # (held_lock, callee, line) — resolved inter-procedurally later
    held_calls: list[tuple[str, str, int]]
    # (held_lock, wait_expr, line)
    waits: list[tuple[str, str, int]]


def _owner_of(function: Function) -> str:
    if "::" in function.qualname:
        return function.qualname.rsplit("::", 1)[0]
    return ""


def _walk_function(source: SourceFile, function: Function,
                   wait_bare: set[str],
                   wait_member: set[str]) -> FunctionSummary:
    code = source.code
    body = code[function.body_start:function.body_end]
    base = function.body_start
    owner = _owner_of(function)
    summary = FunctionSummary(
        name=function.name, qualname=function.qualname,
        rel=source.rel, acquires=set(), calls=set(), edges=[],
        held_calls=[], waits=[])

    # Collect events with their offsets, then replay them in order
    # against a brace-depth counter.
    events: list[tuple[int, str, object]] = []
    for m in _GUARD_RE.finditer(body):
        # scoped_lock may take several mutexes; one acquire per arg.
        for arg in m.group(3).split(","):
            if arg.strip():
                events.append((m.start(), "acquire",
                               (_normalize_lock(arg, owner),
                                m.group(2))))
    for m in _CACHEKEY_RE.finditer(body):
        events.append((m.start(), "acquire",
                       ("CacheKeyLock", m.group(1))))
    for m in _FLOCK_RE.finditer(body):
        events.append((m.start(), "acquire", ("flock", "")))
    for m in _EXPLICIT_LOCK_RE.finditer(body):
        recv = m.group(1)
        # `x.lock()` on a mutex-ish receiver; unique_lock variables
        # named `lock` would show up here too — treat all as locks.
        events.append((m.start(), "acquire",
                       (_normalize_lock(recv, owner), "")))
    for m in _MEMBER_CALL_RE.finditer(body):
        if m.group(2) in wait_member:
            close = _args_end(body, m.end() - 1)
            events.append((m.start(), "wait",
                           (f"{m.group(1)}.{m.group(2)}()",
                            body[m.end():close])))
    for m in _CALL_RE.finditer(body):
        name = m.group(1).rsplit("::", 1)[-1]
        if m.group(1) in _KEYWORDS or name in _KEYWORDS:
            continue
        # Skip the match if it is actually a member call (handled
        # above for waits; plain member calls still count as calls).
        if name in wait_bare:
            events.append((m.start(), "wait", (f"{m.group(1)}()", "")))
        events.append((m.start(), "call", name))

    events.sort(key=lambda e: e[0])

    held: list[Acquisition] = []
    depth = 0
    event_idx = 0
    for offset, ch in enumerate(body):
        while event_idx < len(events) and events[event_idx][0] == offset:
            _, kind, payload = events[event_idx]
            event_idx += 1
            line = line_of(code, base + offset)
            if kind == "acquire":
                lock, var = payload  # type: ignore[misc]
                summary.acquires.add(lock)
                for holder in held:
                    if holder.lock != lock:
                        summary.edges.append((holder.lock, lock, line))
                held.append(Acquisition(lock, line, depth, var))
            elif kind == "call":
                callee = str(payload)
                summary.calls.add(callee)
                for holder in held:
                    summary.held_calls.append(
                        (holder.lock, callee, line))
            elif kind == "wait":
                expr, arg_text = payload  # type: ignore[misc]
                for holder in held:
                    # `cv.wait(lock, pred)` *releases* the passed
                    # guard while waiting — the correct CV idiom, not
                    # hold-and-wait.
                    if holder.var and re.search(
                            rf'\b{re.escape(holder.var)}\b', arg_text):
                        continue
                    summary.waits.append((holder.lock, expr, line))
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            # A guard acquired at depth d dies when its scope closes,
            # i.e. the first time depth drops below d.
            held = [h for h in held if h.scope_depth <= depth]
    return summary


def run(files: list[SourceFile], reporter: Reporter,
        wait_bare: set[str] | None = None,
        wait_member: set[str] | None = None) -> None:
    wait_bare = (config.WAIT_CALLS_BARE if wait_bare is None
                 else wait_bare)
    wait_member = (config.WAIT_CALLS_MEMBER if wait_member is None
                   else wait_member)

    # Global held-while-acquiring edge set across all TUs: the same
    # mutex pair acquired in opposite orders in two files is exactly
    # the inversion worth catching.
    all_edges: dict[tuple[str, str], list[tuple[str, int]]] = {}

    for source in files:
        # Headers are analyzed too — inline functions take locks.
        functions = extract_functions(source.code)
        summaries = [
            _walk_function(source, fn, wait_bare, wait_member)
            for fn in functions
        ]
        by_name: dict[str, list[int]] = {}
        for i, s in enumerate(summaries):
            by_name.setdefault(s.name, []).append(i)

        # Transitive acquisition sets within the TU (fixpoint over the
        # local call graph).
        effective: dict[int, set[str]] = {
            i: set(s.acquires) for i, s in enumerate(summaries)}
        changed = True
        while changed:
            changed = False
            for i, s in enumerate(summaries):
                for callee in s.calls:
                    for j in by_name.get(callee, []):
                        if not effective[j] <= effective[i]:
                            effective[i] |= effective[j]
                            changed = True

        for s in summaries:
            for held, acquired, line in s.edges:
                all_edges.setdefault((held, acquired), []).append(
                    (s.rel, line))
            for held, callee, line in s.held_calls:
                for j in by_name.get(callee, []):
                    for acquired in sorted(effective[j]):
                        if acquired != held:
                            all_edges.setdefault(
                                (held, acquired), []).append(
                                    (s.rel, line))
            for held, wait_expr, line in s.waits:
                reporter.report(
                    "SA004", s.rel, line,
                    f"blocking call {wait_expr} while holding lock "
                    f"'{_short(held)}' — hold-and-wait; a waiter that "
                    "helps with unrelated work can deadlock "
                    "(PR 3 shape). Release the lock first or scope "
                    "helping to owned tasks")

    reported: set[frozenset[str]] = set()
    for (a, b), sites in sorted(all_edges.items()):
        if (b, a) not in all_edges or a == b:
            continue
        pair = frozenset((a, b))
        if pair in reported:
            continue
        reported.add(pair)
        rel, line = sites[0]
        other_rel, other_line = all_edges[(b, a)][0]
        reporter.report(
            "SA003", rel, line,
            f"potential lock-order inversion: '{_short(a)}' held while "
            f"acquiring '{_short(b)}' here, but '{_short(b)}' is held "
            f"while acquiring '{_short(a)}' at {other_rel}:{other_line}")


def _short(lock: str) -> str:
    return lock.rsplit("::", 1)[-1] if "::" in lock else lock


def _args_end(body: str, open_idx: int) -> int:
    depth = 0
    for j in range(open_idx, len(body)):
        if body[j] == "(":
            depth += 1
        elif body[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(body)
