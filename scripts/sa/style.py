"""Style pass (SA101..SA110) — the ten rules migrated from the old
regex-only ``scripts/lint_slo.py``, now running on the analyzer's
sanitized view (so string literals and comments can no longer produce
false positives) with the shared sa-ok suppression and baseline
machinery.

  SA101 raw-long            `long`/`unsigned long` in a public header
  SA102 raw-int-id          `int` for a row/col/vertex/nnz identifier
  SA103 raw-chrono          std::chrono outside src/obs + src/prof
  SA104 raw-rusage          getrusage/perf_event_open outside obs/prof
  SA105 raw-thread          std::thread/jthread/async outside src/par
  SA106 assert-side-effect  assert() whose condition mutates state
  SA107 missing-pragma-once header without #pragma once
  SA108 relative-include    ../ or unprefixed include in src/
  SA109 using-namespace-std `using namespace std`
  SA110 iostream-in-header  <iostream> in a header
"""

from __future__ import annotations

import re

import config
from model import Reporter, SourceFile

_ID_RE = re.compile(
    r"\bint\s+(num_rows|num_cols|num_nodes|row|col|vertex|node|nnz|"
    r"degree|label|community)\b")
_ASSERT_RE = re.compile(r"\bassert\s*\(")
_THREAD_RE = re.compile(r"\bstd::(thread|jthread|async)\b")
_RUSAGE_RE = re.compile(r"\b(getrusage|perf_event_open)\b")
_INCLUDE_RE = re.compile(r'\s*#\s*include\s+"([^"]+)"')
_IOSTREAM_RE = re.compile(r"\s*#\s*include\s+<iostream>")
_LONG_RE = re.compile(r"\b(unsigned\s+)?long\b")


def run(files: list[SourceFile], reporter: Reporter) -> None:
    for source in files:
        _check_file(source, reporter)


def _check_file(source: SourceFile, reporter: Reporter) -> None:
    rel = source.rel
    in_tree = rel.startswith(("src/", "bench/"))
    chrono_ok = rel.startswith(config.CHRONO_ALLOWED) or not in_tree
    rusage_ok = rel.startswith(config.RUSAGE_ALLOWED) or not in_tree
    thread_ok = rel.startswith(config.THREAD_ALLOWED) or not in_tree

    if source.is_header and "#pragma once" not in source.raw:
        reporter.report("SA107", rel, 1, "header lacks #pragma once")

    for lineno, code in enumerate(source.code_lines, start=1):
        if source.is_header and rel not in config.ALLOW_RAW_LONG:
            if _LONG_RE.search(code):
                reporter.report(
                    "SA101", rel, lineno,
                    "`long` in a public header — use Index/Offset "
                    "(or a <cstdint> type)")
            m = _ID_RE.search(code)
            if m:
                reporter.report(
                    "SA102", rel, lineno,
                    f"`int {m.group(1)}` — identifiers use "
                    "Index/Offset")
        if not chrono_ok and "std::chrono" in code:
            reporter.report(
                "SA103", rel, lineno,
                "raw std::chrono outside src/obs — time through "
                "SLO_SPAN / obs timers")
        if not rusage_ok and _RUSAGE_RE.search(code):
            reporter.report(
                "SA104", rel, lineno,
                "raw getrusage/perf_event_open outside src/prof — "
                "use prof::CounterSet / prof::peakRssKb")
        if not thread_ok and _THREAD_RE.search(code):
            reporter.report(
                "SA105", rel, lineno,
                "raw std::thread/std::async outside src/par — use "
                "par::parallelFor / par::TaskGroup")
        m = _ASSERT_RE.search(code)
        if m:
            args = code[m.end():]
            if re.search(r"\+\+|--", args) or re.search(
                    r"[^=!<>+\-*/%&|^]=[^=]", args):
                reporter.report(
                    "SA106", rel, lineno,
                    "assert() condition appears to mutate state; "
                    "NDEBUG would change behaviour — use SLO_CHECK")
        # Includes matched on the raw line: the sanitizer blanks the
        # quoted path.
        include = _INCLUDE_RE.match(source.line_text(lineno))
        if include:
            target = include.group(1)
            if target.startswith("..") or "/.." in target:
                reporter.report(
                    "SA108", rel, lineno,
                    "relative include — root includes at src/ "
                    "(e.g. \"matrix/csr.hpp\")")
            elif "/" not in target and rel.startswith("src/"):
                # Only src/ has the module-prefix convention; bench
                # and tests legitimately include sibling helpers.
                reporter.report(
                    "SA108", rel, lineno,
                    f"unprefixed include — spell it "
                    f"\"<module>/{target}\"")
        if re.search(r"\busing\s+namespace\s+std\b", code):
            reporter.report("SA109", rel, lineno,
                            "`using namespace std` is banned")
        if source.is_header and _IOSTREAM_RE.match(code):
            reporter.report(
                "SA110", rel, lineno,
                "<iostream> in a header — use <iosfwd> / <ostream>")
