"""A small C++ lexer for the slo static analyzer.

Not a parser: it produces a *sanitized* view of a translation unit in
which comments, string literals (including raw strings), and character
literals are blanked out while every newline is preserved, so that
byte offsets and line numbers in the sanitized text match the original
file exactly.  On top of that view it tracks brace depth, the
namespace stack, and extracts function definitions heuristically —
enough structure for the layering, lock-order, and determinism passes
without pulling in a real C++ frontend (the analyzer must stay
dependency-free).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


_RAW_PREFIX = re.compile(r'(?:u8|[uUL])?R$')


def sanitize(text: str) -> str:
    """Blank comments, strings, chars and raw strings, preserving the
    line structure (every ``\\n`` survives, everything else inside a
    literal becomes a space)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        # Line comment.
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
            continue
        # Block comment.
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
            continue
        # Raw string literal: R"delim( ... )delim" with optional
        # encoding prefix (u8R, LR, uR, UR).
        if c == '"':
            prefix = _RAW_PREFIX.search(text[max(0, i - 3):i])
            if prefix:
                m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    delim = m.group(1)
                    close = text.find(")" + delim + '"', i + m.end())
                    j = n if close < 0 else close + len(delim) + 2
                    chunk = text[i:j]
                    out.append("".join(ch if ch == "\n" else " "
                                       for ch in chunk))
                    i = j
                    continue
            # Ordinary string literal.
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"' or text[j] == "\n":
                    j += 1
                    break
                j += 1
            chunk = text[i:j]
            out.append('"' + "".join(
                ch if ch == "\n" else " " for ch in chunk[1:-1]))
            out.append(chunk[-1] if chunk[-1] in '"\n' else " ")
            i = j
            continue
        # Character literal. Take care not to treat digit separators
        # (1'000'000) as character literals: a char literal is preceded
        # by a non-alnum character.
        if c == "'":
            prev = text[i - 1] if i > 0 else " "
            if prev.isalnum() or prev == "_":
                out.append(" ")  # digit separator / suffix
                i += 1
                continue
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'" or text[j] == "\n":
                    j += 1
                    break
                j += 1
            chunk = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
            continue
        out.append(c)
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    """1-based line number of a byte offset."""
    return text.count("\n", 0, offset) + 1


_NS_RE = re.compile(r'\bnamespace\s+([A-Za-z_][\w:]*)\s*\{')
_CLASS_RE = re.compile(r'\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{]*\{')
_CONTROL = {"if", "for", "while", "switch", "catch", "return", "do",
            "else", "sizeof", "alignof", "decltype", "new", "delete",
            "static_assert", "noexcept", "defined"}

# A function definition heuristic: an identifier (possibly qualified)
# directly followed by an argument list whose closing paren is in turn
# followed — modulo cv-qualifiers, ref-qualifiers, noexcept, trailing
# return types, and initializer lists — by an opening brace.
_FUNC_HEAD = re.compile(r'([A-Za-z_][\w:~<>]*)\s*\(')


@dataclass
class Function:
    """A heuristically extracted function definition."""
    name: str            # unqualified name
    qualname: str        # namespace/class-qualified where known
    body_start: int      # offset of the opening '{'
    body_end: int        # offset one past the closing '}'
    line: int            # line of the head


@dataclass
class Scopes:
    """Brace-scope walker state shared by passes."""
    namespaces: list[str] = field(default_factory=list)


def _match_paren(text: str, open_idx: int) -> int:
    """Offset one past the paren matching ``text[open_idx]`` ('(')."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def match_brace(text: str, open_idx: int) -> int:
    """Offset one past the brace matching ``text[open_idx]`` ('{')."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def extract_functions(code: str) -> list[Function]:
    """Find function definitions in sanitized text.

    Walks candidate heads ``name(...)`` and accepts those whose
    argument list is followed by ``{`` (after cv/ref/noexcept/trailing
    return tokens).  Nested function bodies (lambdas) are left inside
    their enclosing function's span; local classes are rare enough in
    this tree to ignore.
    """
    functions: list[Function] = []
    # Namespace/class context per offset, built lazily from a scan.
    context: list[tuple[int, int, str]] = []  # (start, end, name)
    for m in _NS_RE.finditer(code):
        brace = code.find("{", m.end() - 1)
        context.append((brace, match_brace(code, brace), m.group(1)))
    for m in _CLASS_RE.finditer(code):
        brace = code.find("{", m.start())
        context.append((brace, match_brace(code, brace), m.group(1)))

    def qualify(offset: int, name: str) -> str:
        parts = [c[2] for c in sorted(context)
                 if c[0] <= offset < c[1]]
        return "::".join(parts + [name]) if parts else name

    taken: list[tuple[int, int]] = []
    for m in _FUNC_HEAD.finditer(code):
        name = m.group(1)
        bare = name.rsplit("::", 1)[-1].split("<", 1)[0]
        if bare in _CONTROL or not bare:
            continue
        close = _match_paren(code, m.end() - 1)
        # Skip over trailing tokens between ')' and '{'.
        tail = code[close:close + 160]
        tm = re.match(
            r'\s*(?:const|volatile|&&?|noexcept(?:\s*\([^)]*\))?|'
            r'override|final|->\s*[\w:<>,&*\s]+|'
            r'\s)*\{', tail)
        if not tm:
            continue
        body_start = close + tm.end() - 1
        # Constructors with init lists: `Foo::Foo(...) : a_(x) {` —
        # the regex above rejects `:`-lists; allow them explicitly.
        body_end = match_brace(code, body_start)
        span = (body_start, body_end)
        # Heads found *inside* an already-taken body are calls or
        # lambdas, not definitions — but heads may be discovered out
        # of order, so filter containment afterwards instead.
        taken.append(span)
        functions.append(Function(
            name=bare,
            qualname=qualify(m.start(), name),
            body_start=body_start,
            body_end=body_end,
            line=line_of(code, m.start()),
        ))
    # Constructor-with-init-list fallback: `Name(...) : init {` was
    # rejected by the tail regex; handle `) :` heads separately.
    for m in _FUNC_HEAD.finditer(code):
        name = m.group(1)
        bare = name.rsplit("::", 1)[-1].split("<", 1)[0]
        if bare in _CONTROL or not bare:
            continue
        close = _match_paren(code, m.end() - 1)
        tail = code[close:close + 400]
        tm = re.match(r'\s*:\s*[^;{]*\{', tail)
        if not tm:
            continue
        body_start = close + tm.end() - 1
        body_end = match_brace(code, body_start)
        functions.append(Function(
            name=bare,
            qualname=qualify(m.start(), name),
            body_start=body_start,
            body_end=body_end,
            line=line_of(code, m.start()),
        ))
    # Drop "functions" fully contained in another function's body:
    # those are lambdas or local constructs, and the lock pass wants
    # them attributed to the enclosing definition.
    spans = sorted((f.body_start, f.body_end) for f in functions)

    def contained(f: Function) -> bool:
        return any(s < f.body_start and f.body_end <= e
                   for s, e in spans
                   if (s, e) != (f.body_start, f.body_end))

    return [f for f in functions if not contained(f)]
