"""compile_commands.json discovery for the slo static analyzer.

The analyzer is source-driven (it walks ``src/``, ``bench/``,
``tests/``, ``examples/``), but the compilation database — exported by
every CMake preset — is the authority on which .cpp files are real
translation units. When a database is found, any analyzed .cpp
missing from it is reported to stderr as a warning (dead file or a
CMakeLists omission), and TU-scoped passes (lock-order) use database
order. The analyzer still runs without one (fresh checkout, no
configure yet).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

_CANDIDATES = ("build/compile_commands.json",
               "build-asan/compile_commands.json",
               "build-tsan/compile_commands.json")


def find_database(root: Path, explicit: str | None = None) -> Path | None:
    if explicit:
        path = Path(explicit)
        return path if path.exists() else None
    for candidate in _CANDIDATES:
        path = root / candidate
        if path.exists():
            return path
    return None


def translation_units(db_path: Path, root: Path) -> set[str]:
    """Repo-relative posix paths of every TU in the database."""
    entries = json.loads(db_path.read_text())
    units: set[str] = set()
    for entry in entries:
        file_path = Path(entry["file"])
        if not file_path.is_absolute():
            file_path = Path(entry.get("directory", ".")) / file_path
        file_path = Path(os.path.normpath(file_path))
        if file_path.is_relative_to(root):
            units.add(file_path.relative_to(root).as_posix())
    return units
