"""Project configuration for the slo static analyzer.

This file *is* the declared architecture: the module DAG the layering
pass enforces, the path scopes style rules honour, and the sink
heuristics of the determinism pass. Changing the architecture means
changing this file in the same PR — reviewers see both moves together.
"""

from __future__ import annotations

from pathlib import Path

# ---------------------------------------------------------------------------
# Layering: declared module DAG (module -> modules it may include).
#
# The intended order is bottom-up:
#
#   obs                       observability is the bottom layer; it
#                             includes nothing else so every other
#                             layer can report through it
#   check, matrix             contracts + matrix types. These two are a
#                             declared mutual seam: matrix constructors
#                             validate through check, while
#                             check/validators.hpp needs matrix/types —
#                             both directions are leaf-header only
#   par, prof                 runtime + profiling on top of obs
#   kernels, partition,
#   community, cache          mid-layer algorithm families
#   reorder                   orderings compose community + partition
#   gpu                       simulators compose kernels + cache
#   qc                        test-support generators/oracles see all
#                             algorithm layers
#   core                      the experiment driver layer composes
#                             everything below it
#   serve                     the reordering daemon sits on top of
#                             core (corpus + artifact store) and the
#                             runtime layers
#   bench / tests / examples  leaves; may include anything
#
# The file-level include graph must still be acyclic (SA002): the
# matrix<->check seam is allowed at module granularity precisely
# because no file-level cycle exists.
# ---------------------------------------------------------------------------

LAYERING: dict[str, set[str]] = {
    "obs": set(),
    "check": {"obs", "matrix"},
    "matrix": {"obs", "check"},
    "par": {"obs", "check"},
    "prof": {"obs", "check"},
    "kernels": {"matrix", "obs", "check"},
    "partition": {"matrix", "obs", "check", "par"},
    "community": {"matrix", "par", "obs", "check"},
    "cache": {"matrix", "par", "obs", "check"},
    "reorder": {"matrix", "community", "partition", "par", "obs",
                "check"},
    "gpu": {"matrix", "kernels", "cache", "par", "obs", "check"},
    "qc": {"matrix", "community", "cache", "kernels", "reorder",
           "gpu", "par", "partition", "obs", "check", "prof"},
    "core": {"matrix", "reorder", "community", "partition", "gpu",
             "kernels", "cache", "par", "prof", "obs", "check"},
    "serve": {"core", "matrix", "reorder", "community", "partition",
              "gpu", "kernels", "cache", "par", "prof", "obs",
              "check"},
}

# Leaf trees that may include any module (and their own siblings).
UNRESTRICTED_MODULES = {"bench", "tests", "examples", ""}

# ---------------------------------------------------------------------------
# Lock-order pass.
# ---------------------------------------------------------------------------

# Call names considered blocking wait/help points: making one of these
# while holding a lock is the hold-and-wait shape of the PR 3 deadlock
# (a waiter helping with unrelated work while a flock is held).
WAIT_CALLS = {
    "wait", "waitAll", "join", "parallelFor", "parallelForChunks",
    "parallelReduce", "parallelStableSort", "parallelInvoke",
    "helpWhileWaiting", "wait_for", "wait_until", "get",
}
# ... except `get` is far too common as a plain accessor; only the
# explicitly blocking names below fire without a receiver match.
WAIT_CALLS_BARE = {
    "waitAll", "parallelFor", "parallelForChunks", "parallelReduce",
    "parallelStableSort", "parallelInvoke", "helpWhileWaiting",
}
# Receiver-qualified blocking calls: `x.wait(...)`, `group->join()`.
WAIT_CALLS_MEMBER = {"wait", "waitAll", "join", "wait_for",
                     "wait_until"}

# ---------------------------------------------------------------------------
# Determinism pass.
# ---------------------------------------------------------------------------

# Sink tokens: an unordered-container iteration whose loop body (or
# enclosing statement) touches one of these flows into an output path
# (manifests, metrics, reports, golden snapshots, streams).
DETERMINISM_SINKS = (
    "<<", "manifest", "Manifest", "metric", "Metric", "record",
    "emit", "writeJson", "toJson", "Json(", "report", "Report",
    "snapshot", "print", "append(",
)
# Modules whose whole job is emitting output: any unordered iteration
# there is a finding regardless of body tokens.
OUTPUT_MODULES = {"obs", "bench"}
OUTPUT_FILE_HINTS = ("report", "manifest", "golden")

# Paths allowed to use nondeterministic randomness sources (SA007).
RANDOMNESS_ALLOWED = ("src/qc/",)

# ---------------------------------------------------------------------------
# Env registry pass.
# ---------------------------------------------------------------------------

ENV_REGISTRY_DOC = Path("docs/env_registry.md")
ENV_PREFIXES = ("SLO_", "REPRO_")
# Shell/workflow/preset files scanned for env references alongside the
# C++ getenv sites.
ENV_SCRIPT_GLOBS = ("scripts/*.sh", "scripts/*.py",
                    ".github/workflows/*.yml", "CMakePresets.json")
# Identifiers matching the prefix that are not environment variables.
ENV_IGNORE = {
    "SLO_BUILD_BENCH",      # CMake option, not an env var
    "SLO_BUILD_EXAMPLES",   # CMake option, not an env var
    "SLO_SANITIZE",         # CMake cache variable
    "SLO_WERROR",           # CMake cache variable
    "SLO_CHECK",            # the contract-check macro family
    "SLO_CHECK_CTX",
    "SLO_SPAN",             # obs macro
    "SLO_LOG_LEVEL",        # obs macro helper
}

# ---------------------------------------------------------------------------
# Style rules (migrated from scripts/lint_slo.py).
# ---------------------------------------------------------------------------

# Headers allowed to use raw `long` (the JSON layer needs the full
# integer conversion ladder).
ALLOW_RAW_LONG = {"src/obs/json.hpp"}
# Modules that own timing / rusage / threading primitives.
CHRONO_ALLOWED = ("src/obs/", "src/prof/")
RUSAGE_ALLOWED = ("src/obs/", "src/prof/")
THREAD_ALLOWED = ("src/par/", "tests/")

# Default analysis roots (repo-relative).
DEFAULT_ROOTS = ("src", "bench", "tests", "examples")
# Fixture corpora are analyzed only by the selftest, never by default
# tree runs.
EXCLUDED_DIRS = ("tests/sa/fixtures",)
