"""Environment/config registry pass (SA008, SA009).

Every ``SLO_*`` / ``REPRO_*`` knob the tree reads must be documented
in ``docs/env_registry.md`` (name, type, default, consumers), and
every documented knob must still have a live reference — the registry
is verified in both directions so it can never rot:

* SA008 — a ``getenv("SLO_*")`` call in C++ (or a ``$SLO_*`` /
  ``SLO_*=value`` use in scripts, workflows, and CMake presets) whose
  variable has no row in the registry.
* SA009 — a registry row whose variable is referenced nowhere.

The registry is hand-written prose (type, default, description) but
machine-verified membership — the generated-then-verified pattern.
"""

from __future__ import annotations

import re
from pathlib import Path

import config
from model import Reporter, SourceFile

_GETENV_RE = re.compile(r'getenv\s*\(\s*"((?:SLO|REPRO)_[A-Z0-9_]+)"')
# Shell/workflow references: $SLO_X, ${SLO_X...}, SLO_X=value; preset
# environment blocks: "SLO_X":.
_SCRIPT_REF_RE = re.compile(
    r'\$\{?((?:SLO|REPRO)_[A-Z0-9_]+)|'
    r'\b((?:SLO|REPRO)_[A-Z0-9_]+)=|'
    r'"((?:SLO|REPRO)_[A-Z0-9_]+)"\s*:')
_ROW_RE = re.compile(r'^\|\s*`((?:SLO|REPRO)_[A-Z0-9_]+)`\s*\|')


def registry_vars(doc_path: Path) -> dict[str, tuple[int, str]]:
    """Registered variable -> (line number, row text)."""
    if not doc_path.exists():
        return {}
    rows: dict[str, tuple[int, str]] = {}
    for lineno, line in enumerate(
            doc_path.read_text().splitlines(), start=1):
        m = _ROW_RE.match(line.strip())
        if m:
            rows[m.group(1)] = (lineno, line)
    return rows


def scan_script_refs(root: Path,
                     globs: tuple[str, ...]) -> dict[str, tuple[str, int]]:
    """Env references in shell/workflow/preset files (first site per
    variable). Comment lines are skipped so prose mentions don't count
    as references."""
    refs: dict[str, tuple[str, int]] = {}
    for pattern in globs:
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            for lineno, line in enumerate(
                    path.read_text(errors="replace").splitlines(),
                    start=1):
                if line.lstrip().startswith("#"):
                    continue
                for m in _SCRIPT_REF_RE.finditer(line):
                    var = m.group(1) or m.group(2) or m.group(3)
                    if var in config.ENV_IGNORE:
                        continue
                    refs.setdefault(var, (rel, lineno))
    return refs


def run(files: list[SourceFile], reporter: Reporter, root: Path,
        doc_path: Path | None = None,
        script_globs: tuple[str, ...] | None = None) -> None:
    doc_path = (root / config.ENV_REGISTRY_DOC if doc_path is None
                else doc_path)
    script_globs = (config.ENV_SCRIPT_GLOBS if script_globs is None
                    else script_globs)
    registered = registry_vars(doc_path)
    doc_rel = (doc_path.relative_to(root).as_posix()
               if doc_path.is_relative_to(root) else str(doc_path))

    referenced: dict[str, tuple[str, int]] = {}
    # C++ getenv sites — scanned on raw lines because the variable
    # name lives inside a string literal the sanitizer blanks.
    for source in files:
        for lineno, raw in enumerate(source.raw_lines, start=1):
            for m in _GETENV_RE.finditer(raw):
                var = m.group(1)
                if var in config.ENV_IGNORE:
                    continue
                referenced.setdefault(var, (source.rel, lineno))
                if var not in registered:
                    reporter.report(
                        "SA008", source.rel, lineno,
                        f"env var '{var}' read here but missing from "
                        f"{doc_rel} — add a row (name, type, default, "
                        "consumers, description)")
    # Script/workflow/preset sites.
    for var, (rel, lineno) in sorted(scan_script_refs(
            root, script_globs).items()):
        referenced.setdefault(var, (rel, lineno))
        if var not in registered:
            reporter.report(
                "SA008", rel, lineno,
                f"env var '{var}' used here but missing from "
                f"{doc_rel}")

    for var, (lineno, row_text) in sorted(registered.items()):
        if var in referenced:
            continue
        # The registry doc is not a SourceFile, so row suppressions
        # ride in an HTML comment on the row itself.
        if "sa-ok: SA009" in row_text:
            reporter.suppressed_count += 1
            continue
        reporter.report(
            "SA009", doc_rel, lineno,
            f"registry row '{var}' has no reference anywhere in "
            "the tree — delete the row or restore the consumer")
