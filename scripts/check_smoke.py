#!/usr/bin/env python3
"""ctest-registered smoke test for the static-analysis layer.

Two halves (see tests/CMakeLists.txt for the registration):

  1. Run the project static analyzer (scripts/sa/run.py) over its
     default roots — the tree must be clean against the committed
     baseline.
  2. Run the check_probe binary (which corrupts a permutation on
     purpose) with SLO_CHECK_REPORT pointing at a temp file, then
     schema-check the slo.check-violation/1 JSON report it leaves.

Usage: check_smoke.py <repo-root> <check_probe-binary>
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_FIELDS = {
    "schema": "slo.check-violation/1",
    "component": "check.permutation",
}
REQUIRED_KEYS = {"file", "line", "expression", "message",
                 "check_level", "context"}


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1])
    probe = Path(argv[2])

    sa = subprocess.run(
        [sys.executable, str(root / "scripts" / "sa" / "run.py")],
        cwd=root)
    if sa.returncode != 0:
        print("check_smoke: static-analysis findings",
              file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="slo-check-smoke-") as tmp:
        report_path = Path(tmp) / "violation.json"
        env = dict(os.environ, SLO_CHECK_REPORT=str(report_path))
        run = subprocess.run([str(probe)], env=env,
                             capture_output=True, text=True)
        if run.returncode != 0:
            print("check_smoke: probe failed:\n" + run.stdout +
                  run.stderr, file=sys.stderr)
            return 1
        if not report_path.is_file():
            print("check_smoke: probe left no violation report",
                  file=sys.stderr)
            return 1
        report = json.loads(report_path.read_text(encoding="utf-8"))

    for key, expected in REQUIRED_FIELDS.items():
        if report.get(key) != expected:
            print(f"check_smoke: report[{key!r}] = {report.get(key)!r},"
                  f" expected {expected!r}", file=sys.stderr)
            return 1
    missing = REQUIRED_KEYS - report.keys()
    if missing:
        print(f"check_smoke: report missing keys: {sorted(missing)}",
              file=sys.stderr)
        return 1
    if not isinstance(report["line"], int) or report["line"] <= 0:
        print("check_smoke: report line is not a positive integer",
              file=sys.stderr)
        return 1
    if "validators.cpp" not in report["file"]:
        print(f"check_smoke: unexpected source file {report['file']!r}",
              file=sys.stderr)
        return 1
    if report["context"].get("where") != "check_probe":
        print("check_smoke: context lacks the probe's `where` tag:"
              f" {report['context']!r}", file=sys.stderr)
        return 1

    print("check_smoke: static analysis clean, violation report "
          "schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
