#!/usr/bin/env python3
"""Project lint for the slo tree (AST-free, stdlib-only).

Enforces repo rules that neither the compiler nor clang-tidy express:

  raw-long            `long`/`unsigned long` in public headers where the
                      Index/Offset typedefs belong (the 32/64-bit split
                      is a deliberate contract; `long` is whatever the
                      ABI says). Allowlisted: src/obs/json.hpp, which
                      needs the full integer conversion ladder.
  raw-int-id          `int` used for a row/col/vertex/nnz-style
                      identifier in a header (should be Index/Offset).
  raw-chrono          std::chrono timing outside src/obs and src/prof —
                      all timing goes through the observability layer so
                      manifests stay the single source of truth.
  raw-rusage          getrusage/perf_event_open outside src/obs and
                      src/prof — resource and hardware counters go
                      through prof::CounterSet / prof::peakRssKb so the
                      perf/rusage degradation story stays in one place.
  raw-thread          std::thread/std::jthread/std::async outside
                      src/par — parallelism goes through the par layer
                      (parallelFor / TaskGroup) so SLO_THREADS=1 can
                      restore serial behaviour everywhere.
  assert-side-effect  assert() whose condition mutates state; NDEBUG
                      builds would change behaviour. Use SLO_CHECK.
  missing-pragma-once header without #pragma once.
  relative-include    `#include "../..."` or a quoted include without a
                      module prefix; includes are rooted at src/.
  using-namespace-std `using namespace std`.
  iostream-in-header  <iostream> in a header (drags in static ios
                      initializers; use <iosfwd> or <ostream>).

Suppress a finding by appending `// slo-lint: allow(<rule>)` to the
line. Exit status: 0 clean, 1 findings, 2 usage error.

Usage: lint_slo.py [--quiet] [PATH...]    (default: src bench)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# (rule, path-predicate, header-only)
ALLOW_RAW_LONG = {Path("src/obs/json.hpp")}

ID_PATTERN = re.compile(
    r"\bint\s+(num_rows|num_cols|num_nodes|row|col|vertex|node|nnz|"
    r"degree|label|community)\b"
)
ASSERT_PATTERN = re.compile(r"\bassert\s*\(")
SUPPRESS_PATTERN = re.compile(r"//\s*slo-lint:\s*allow\(([\w,\s-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay valid."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def suppressed(raw_line: str, rule: str) -> bool:
    match = SUPPRESS_PATTERN.search(raw_line)
    if not match:
        return False
    allowed = {item.strip() for item in match.group(1).split(",")}
    return rule in allowed


class Linter:
    def __init__(self) -> None:
        self.findings: list[tuple[Path, int, str, str]] = []

    def report(self, path: Path, lineno: int, raw_line: str, rule: str,
               message: str) -> None:
        if not suppressed(raw_line, rule):
            self.findings.append((path, lineno, rule, message))

    def lint_file(self, path: Path, root: Path) -> None:
        rel = path.relative_to(root) if path.is_relative_to(root) else path
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        code_lines = strip_comments_and_strings(raw).splitlines()
        is_header = path.suffix in {".hpp", ".h"}
        in_obs = "src/obs" in path.as_posix()
        in_par = "src/par" in path.as_posix()
        in_prof = "src/prof" in path.as_posix()

        if is_header and "#pragma once" not in raw:
            self.report(rel, 1, "", "missing-pragma-once",
                        "header lacks #pragma once")

        for lineno, (code, rawl) in enumerate(
                zip(code_lines, raw_lines), start=1):
            if is_header and rel not in ALLOW_RAW_LONG:
                if re.search(r"\b(unsigned\s+)?long\b", code):
                    self.report(rel, lineno, rawl, "raw-long",
                                "`long` in a public header — use "
                                "Index/Offset (or a <cstdint> type)")
                match = ID_PATTERN.search(code)
                if match:
                    self.report(rel, lineno, rawl, "raw-int-id",
                                f"`int {match.group(1)}` — identifiers "
                                "use Index/Offset")
            if not in_obs and not in_prof and "std::chrono" in code:
                self.report(rel, lineno, rawl, "raw-chrono",
                            "raw std::chrono outside src/obs — time "
                            "through SLO_SPAN / obs timers")
            if not in_obs and not in_prof and re.search(
                    r"\b(getrusage|perf_event_open)\b", code):
                self.report(rel, lineno, rawl, "raw-rusage",
                            "raw getrusage/perf_event_open outside "
                            "src/prof — use prof::CounterSet / "
                            "prof::peakRssKb")
            if not in_par and re.search(
                    r"\bstd::(thread|jthread|async)\b", code):
                self.report(rel, lineno, rawl, "raw-thread",
                            "raw std::thread/std::async outside "
                            "src/par — use par::parallelFor / "
                            "par::TaskGroup")
            match = ASSERT_PATTERN.search(code)
            if match:
                args = code[match.end():]
                if re.search(r"\+\+|--", args) or re.search(
                        r"[^=!<>+\-*/%&|^]=[^=]", args):
                    self.report(rel, lineno, rawl, "assert-side-effect",
                                "assert() condition appears to mutate "
                                "state; NDEBUG would change behaviour "
                                "— use SLO_CHECK")
            # Match on the raw line: the stripper blanks the quoted path.
            include = re.match(r'\s*#\s*include\s+"([^"]+)"', rawl)
            if include:
                target = include.group(1)
                if target.startswith("..") or "/.." in target:
                    self.report(rel, lineno, rawl, "relative-include",
                                "relative include — root includes at "
                                "src/ (e.g. \"matrix/csr.hpp\")")
                elif "/" not in target and "src/" in path.as_posix():
                    # Only src/ has the module-prefix convention; bench
                    # and tests legitimately include sibling helpers.
                    self.report(rel, lineno, rawl, "relative-include",
                                "unprefixed include — spell it "
                                "\"<module>/" + target + "\"")
            if re.search(r"\busing\s+namespace\s+std\b", code):
                self.report(rel, lineno, rawl, "using-namespace-std",
                            "`using namespace std` is banned")
            if is_header and re.match(
                    r"\s*#\s*include\s+<iostream>", code):
                self.report(rel, lineno, rawl, "iostream-in-header",
                            "<iostream> in a header — use <iosfwd> / "
                            "<ostream>")


def main(argv: list[str]) -> int:
    quiet = False
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = len(args) != len(argv) - 1
    root = Path.cwd()
    targets = [Path(a) for a in args] or [Path("src"), Path("bench")]

    files: list[Path] = []
    for target in targets:
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(sorted(target.rglob("*.hpp")))
            files.extend(sorted(target.rglob("*.h")))
            files.extend(sorted(target.rglob("*.cpp")))
        else:
            print(f"lint_slo: no such path: {target}", file=sys.stderr)
            return 2

    linter = Linter()
    for path in files:
        linter.lint_file(path, root)

    for path, lineno, rule, message in linter.findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if not quiet:
        status = ("clean" if not linter.findings
                  else f"{len(linter.findings)} finding(s)")
        print(f"lint_slo: {len(files)} files, {status}", file=sys.stderr)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
