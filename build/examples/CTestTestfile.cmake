# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_community_explorer "/root/repo/build/examples/community_explorer")
set_tests_properties(example_community_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
