file(REMOVE_RECURSE
  "CMakeFiles/reorder_tool.dir/reorder_tool.cpp.o"
  "CMakeFiles/reorder_tool.dir/reorder_tool.cpp.o.d"
  "reorder_tool"
  "reorder_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
