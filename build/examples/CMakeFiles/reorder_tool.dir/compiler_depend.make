# Empty compiler generated dependencies file for reorder_tool.
# This may be replaced when dependencies are built.
