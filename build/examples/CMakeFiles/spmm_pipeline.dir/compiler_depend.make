# Empty compiler generated dependencies file for spmm_pipeline.
# This may be replaced when dependencies are built.
