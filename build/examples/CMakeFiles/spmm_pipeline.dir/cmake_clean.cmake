file(REMOVE_RECURSE
  "CMakeFiles/spmm_pipeline.dir/spmm_pipeline.cpp.o"
  "CMakeFiles/spmm_pipeline.dir/spmm_pipeline.cpp.o.d"
  "spmm_pipeline"
  "spmm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
