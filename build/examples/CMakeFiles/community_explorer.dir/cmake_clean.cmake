file(REMOVE_RECURSE
  "CMakeFiles/community_explorer.dir/community_explorer.cpp.o"
  "CMakeFiles/community_explorer.dir/community_explorer.cpp.o.d"
  "community_explorer"
  "community_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
