# Empty compiler generated dependencies file for community_explorer.
# This may be replaced when dependencies are built.
