file(REMOVE_RECURSE
  "CMakeFiles/webgraph_analysis.dir/webgraph_analysis.cpp.o"
  "CMakeFiles/webgraph_analysis.dir/webgraph_analysis.cpp.o.d"
  "webgraph_analysis"
  "webgraph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
