# Empty dependencies file for webgraph_analysis.
# This may be replaced when dependencies are built.
