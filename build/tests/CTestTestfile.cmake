# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/community_test[1]_include.cmake")
include("/root/repo/build/tests/reorder_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
