file(REMOVE_RECURSE
  "CMakeFiles/reorder_test.dir/reorder/degree_orders_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/degree_orders_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/gorder_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/gorder_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/locality_metrics_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/locality_metrics_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/properties_param_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/properties_param_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/rabbit_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/rabbit_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/rabbitpp_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/rabbitpp_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/rcm_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/rcm_test.cpp.o.d"
  "CMakeFiles/reorder_test.dir/reorder/slashburn_test.cpp.o"
  "CMakeFiles/reorder_test.dir/reorder/slashburn_test.cpp.o.d"
  "reorder_test"
  "reorder_test.pdb"
  "reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
