file(REMOVE_RECURSE
  "CMakeFiles/kernels_test.dir/kernels/access_stream_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels/access_stream_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/kernels/kernels_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels/kernels_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/kernels/propagation_blocking_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels/propagation_blocking_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/kernels/stream_sweep_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels/stream_sweep_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/kernels/tiled_spmv_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels/tiled_spmv_test.cpp.o.d"
  "kernels_test"
  "kernels_test.pdb"
  "kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
