# Empty compiler generated dependencies file for slo_cache.
# This may be replaced when dependencies are built.
