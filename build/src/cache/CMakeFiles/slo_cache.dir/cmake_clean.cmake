file(REMOVE_RECURSE
  "CMakeFiles/slo_cache.dir/belady.cpp.o"
  "CMakeFiles/slo_cache.dir/belady.cpp.o.d"
  "CMakeFiles/slo_cache.dir/cache.cpp.o"
  "CMakeFiles/slo_cache.dir/cache.cpp.o.d"
  "CMakeFiles/slo_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/slo_cache.dir/hierarchy.cpp.o.d"
  "libslo_cache.a"
  "libslo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
