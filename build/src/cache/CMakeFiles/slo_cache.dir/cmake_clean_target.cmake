file(REMOVE_RECURSE
  "libslo_cache.a"
)
