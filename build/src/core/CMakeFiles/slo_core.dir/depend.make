# Empty dependencies file for slo_core.
# This may be replaced when dependencies are built.
