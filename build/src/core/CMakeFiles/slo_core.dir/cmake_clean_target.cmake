file(REMOVE_RECURSE
  "libslo_core.a"
)
