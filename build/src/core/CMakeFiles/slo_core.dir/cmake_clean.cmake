file(REMOVE_RECURSE
  "CMakeFiles/slo_core.dir/artifact_cache.cpp.o"
  "CMakeFiles/slo_core.dir/artifact_cache.cpp.o.d"
  "CMakeFiles/slo_core.dir/dataset.cpp.o"
  "CMakeFiles/slo_core.dir/dataset.cpp.o.d"
  "CMakeFiles/slo_core.dir/experiment.cpp.o"
  "CMakeFiles/slo_core.dir/experiment.cpp.o.d"
  "CMakeFiles/slo_core.dir/report.cpp.o"
  "CMakeFiles/slo_core.dir/report.cpp.o.d"
  "CMakeFiles/slo_core.dir/stats.cpp.o"
  "CMakeFiles/slo_core.dir/stats.cpp.o.d"
  "libslo_core.a"
  "libslo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
