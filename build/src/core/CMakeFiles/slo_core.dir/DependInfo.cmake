
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/artifact_cache.cpp" "src/core/CMakeFiles/slo_core.dir/artifact_cache.cpp.o" "gcc" "src/core/CMakeFiles/slo_core.dir/artifact_cache.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/slo_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/slo_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/slo_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/slo_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/slo_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/slo_core.dir/report.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/slo_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/slo_core.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/slo_community.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/slo_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/slo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/slo_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/slo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/slo_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
