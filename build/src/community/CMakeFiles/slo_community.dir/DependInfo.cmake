
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/aggregation.cpp" "src/community/CMakeFiles/slo_community.dir/aggregation.cpp.o" "gcc" "src/community/CMakeFiles/slo_community.dir/aggregation.cpp.o.d"
  "/root/repo/src/community/clustering.cpp" "src/community/CMakeFiles/slo_community.dir/clustering.cpp.o" "gcc" "src/community/CMakeFiles/slo_community.dir/clustering.cpp.o.d"
  "/root/repo/src/community/dendrogram.cpp" "src/community/CMakeFiles/slo_community.dir/dendrogram.cpp.o" "gcc" "src/community/CMakeFiles/slo_community.dir/dendrogram.cpp.o.d"
  "/root/repo/src/community/louvain.cpp" "src/community/CMakeFiles/slo_community.dir/louvain.cpp.o" "gcc" "src/community/CMakeFiles/slo_community.dir/louvain.cpp.o.d"
  "/root/repo/src/community/metrics.cpp" "src/community/CMakeFiles/slo_community.dir/metrics.cpp.o" "gcc" "src/community/CMakeFiles/slo_community.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
