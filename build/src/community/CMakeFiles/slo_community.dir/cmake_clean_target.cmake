file(REMOVE_RECURSE
  "libslo_community.a"
)
