# Empty compiler generated dependencies file for slo_community.
# This may be replaced when dependencies are built.
