file(REMOVE_RECURSE
  "CMakeFiles/slo_community.dir/aggregation.cpp.o"
  "CMakeFiles/slo_community.dir/aggregation.cpp.o.d"
  "CMakeFiles/slo_community.dir/clustering.cpp.o"
  "CMakeFiles/slo_community.dir/clustering.cpp.o.d"
  "CMakeFiles/slo_community.dir/dendrogram.cpp.o"
  "CMakeFiles/slo_community.dir/dendrogram.cpp.o.d"
  "CMakeFiles/slo_community.dir/louvain.cpp.o"
  "CMakeFiles/slo_community.dir/louvain.cpp.o.d"
  "CMakeFiles/slo_community.dir/metrics.cpp.o"
  "CMakeFiles/slo_community.dir/metrics.cpp.o.d"
  "libslo_community.a"
  "libslo_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
