file(REMOVE_RECURSE
  "CMakeFiles/slo_gpu.dir/gpu_spec.cpp.o"
  "CMakeFiles/slo_gpu.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/slo_gpu.dir/simulate.cpp.o"
  "CMakeFiles/slo_gpu.dir/simulate.cpp.o.d"
  "CMakeFiles/slo_gpu.dir/simulate_blocked.cpp.o"
  "CMakeFiles/slo_gpu.dir/simulate_blocked.cpp.o.d"
  "CMakeFiles/slo_gpu.dir/simulate_tiled.cpp.o"
  "CMakeFiles/slo_gpu.dir/simulate_tiled.cpp.o.d"
  "CMakeFiles/slo_gpu.dir/traffic_model.cpp.o"
  "CMakeFiles/slo_gpu.dir/traffic_model.cpp.o.d"
  "libslo_gpu.a"
  "libslo_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
