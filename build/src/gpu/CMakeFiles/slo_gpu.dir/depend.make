# Empty dependencies file for slo_gpu.
# This may be replaced when dependencies are built.
