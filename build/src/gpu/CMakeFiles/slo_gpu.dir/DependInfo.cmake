
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_spec.cpp" "src/gpu/CMakeFiles/slo_gpu.dir/gpu_spec.cpp.o" "gcc" "src/gpu/CMakeFiles/slo_gpu.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/gpu/simulate.cpp" "src/gpu/CMakeFiles/slo_gpu.dir/simulate.cpp.o" "gcc" "src/gpu/CMakeFiles/slo_gpu.dir/simulate.cpp.o.d"
  "/root/repo/src/gpu/simulate_blocked.cpp" "src/gpu/CMakeFiles/slo_gpu.dir/simulate_blocked.cpp.o" "gcc" "src/gpu/CMakeFiles/slo_gpu.dir/simulate_blocked.cpp.o.d"
  "/root/repo/src/gpu/simulate_tiled.cpp" "src/gpu/CMakeFiles/slo_gpu.dir/simulate_tiled.cpp.o" "gcc" "src/gpu/CMakeFiles/slo_gpu.dir/simulate_tiled.cpp.o.d"
  "/root/repo/src/gpu/traffic_model.cpp" "src/gpu/CMakeFiles/slo_gpu.dir/traffic_model.cpp.o" "gcc" "src/gpu/CMakeFiles/slo_gpu.dir/traffic_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/slo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/slo_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
