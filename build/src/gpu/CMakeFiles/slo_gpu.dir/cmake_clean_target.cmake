file(REMOVE_RECURSE
  "libslo_gpu.a"
)
