file(REMOVE_RECURSE
  "libslo_partition.a"
)
