file(REMOVE_RECURSE
  "CMakeFiles/slo_partition.dir/partition.cpp.o"
  "CMakeFiles/slo_partition.dir/partition.cpp.o.d"
  "libslo_partition.a"
  "libslo_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
