# Empty dependencies file for slo_partition.
# This may be replaced when dependencies are built.
