file(REMOVE_RECURSE
  "libslo_kernels.a"
)
