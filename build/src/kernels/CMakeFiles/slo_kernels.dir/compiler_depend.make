# Empty compiler generated dependencies file for slo_kernels.
# This may be replaced when dependencies are built.
