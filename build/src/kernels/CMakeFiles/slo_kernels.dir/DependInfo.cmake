
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/access_stream.cpp" "src/kernels/CMakeFiles/slo_kernels.dir/access_stream.cpp.o" "gcc" "src/kernels/CMakeFiles/slo_kernels.dir/access_stream.cpp.o.d"
  "/root/repo/src/kernels/kernels.cpp" "src/kernels/CMakeFiles/slo_kernels.dir/kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/slo_kernels.dir/kernels.cpp.o.d"
  "/root/repo/src/kernels/propagation_blocking.cpp" "src/kernels/CMakeFiles/slo_kernels.dir/propagation_blocking.cpp.o" "gcc" "src/kernels/CMakeFiles/slo_kernels.dir/propagation_blocking.cpp.o.d"
  "/root/repo/src/kernels/tiled_spmv.cpp" "src/kernels/CMakeFiles/slo_kernels.dir/tiled_spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/slo_kernels.dir/tiled_spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
