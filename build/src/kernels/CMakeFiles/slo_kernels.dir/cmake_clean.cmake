file(REMOVE_RECURSE
  "CMakeFiles/slo_kernels.dir/access_stream.cpp.o"
  "CMakeFiles/slo_kernels.dir/access_stream.cpp.o.d"
  "CMakeFiles/slo_kernels.dir/kernels.cpp.o"
  "CMakeFiles/slo_kernels.dir/kernels.cpp.o.d"
  "CMakeFiles/slo_kernels.dir/propagation_blocking.cpp.o"
  "CMakeFiles/slo_kernels.dir/propagation_blocking.cpp.o.d"
  "CMakeFiles/slo_kernels.dir/tiled_spmv.cpp.o"
  "CMakeFiles/slo_kernels.dir/tiled_spmv.cpp.o.d"
  "libslo_kernels.a"
  "libslo_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
