# Empty compiler generated dependencies file for slo_matrix.
# This may be replaced when dependencies are built.
