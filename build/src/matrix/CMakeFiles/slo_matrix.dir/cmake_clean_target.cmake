file(REMOVE_RECURSE
  "libslo_matrix.a"
)
