
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/binary_io.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/binary_io.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/binary_io.cpp.o.d"
  "/root/repo/src/matrix/coo.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/coo.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/coo.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/csr.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/csr.cpp.o.d"
  "/root/repo/src/matrix/generators.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/generators.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/generators.cpp.o.d"
  "/root/repo/src/matrix/matrix_market.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/matrix_market.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/matrix_market.cpp.o.d"
  "/root/repo/src/matrix/permutation.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/permutation.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/permutation.cpp.o.d"
  "/root/repo/src/matrix/properties.cpp" "src/matrix/CMakeFiles/slo_matrix.dir/properties.cpp.o" "gcc" "src/matrix/CMakeFiles/slo_matrix.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
