file(REMOVE_RECURSE
  "CMakeFiles/slo_matrix.dir/binary_io.cpp.o"
  "CMakeFiles/slo_matrix.dir/binary_io.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/coo.cpp.o"
  "CMakeFiles/slo_matrix.dir/coo.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/csr.cpp.o"
  "CMakeFiles/slo_matrix.dir/csr.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/generators.cpp.o"
  "CMakeFiles/slo_matrix.dir/generators.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/matrix_market.cpp.o"
  "CMakeFiles/slo_matrix.dir/matrix_market.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/permutation.cpp.o"
  "CMakeFiles/slo_matrix.dir/permutation.cpp.o.d"
  "CMakeFiles/slo_matrix.dir/properties.cpp.o"
  "CMakeFiles/slo_matrix.dir/properties.cpp.o.d"
  "libslo_matrix.a"
  "libslo_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
