file(REMOVE_RECURSE
  "libslo_reorder.a"
)
