
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/degree_orders.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/degree_orders.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/degree_orders.cpp.o.d"
  "/root/repo/src/reorder/gorder.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/gorder.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/gorder.cpp.o.d"
  "/root/repo/src/reorder/locality_metrics.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/locality_metrics.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/locality_metrics.cpp.o.d"
  "/root/repo/src/reorder/rabbit.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/rabbit.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/rabbit.cpp.o.d"
  "/root/repo/src/reorder/rabbitpp.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/rabbitpp.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/rabbitpp.cpp.o.d"
  "/root/repo/src/reorder/rcm.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/rcm.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/rcm.cpp.o.d"
  "/root/repo/src/reorder/reorder.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/reorder.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/reorder.cpp.o.d"
  "/root/repo/src/reorder/slashburn.cpp" "src/reorder/CMakeFiles/slo_reorder.dir/slashburn.cpp.o" "gcc" "src/reorder/CMakeFiles/slo_reorder.dir/slashburn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/slo_community.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/slo_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
