file(REMOVE_RECURSE
  "CMakeFiles/slo_reorder.dir/degree_orders.cpp.o"
  "CMakeFiles/slo_reorder.dir/degree_orders.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/gorder.cpp.o"
  "CMakeFiles/slo_reorder.dir/gorder.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/locality_metrics.cpp.o"
  "CMakeFiles/slo_reorder.dir/locality_metrics.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/rabbit.cpp.o"
  "CMakeFiles/slo_reorder.dir/rabbit.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/rabbitpp.cpp.o"
  "CMakeFiles/slo_reorder.dir/rabbitpp.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/rcm.cpp.o"
  "CMakeFiles/slo_reorder.dir/rcm.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/reorder.cpp.o"
  "CMakeFiles/slo_reorder.dir/reorder.cpp.o.d"
  "CMakeFiles/slo_reorder.dir/slashburn.cpp.o"
  "CMakeFiles/slo_reorder.dir/slashburn.cpp.o.d"
  "libslo_reorder.a"
  "libslo_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
