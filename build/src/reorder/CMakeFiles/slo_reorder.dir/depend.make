# Empty dependencies file for slo_reorder.
# This may be replaced when dependencies are built.
