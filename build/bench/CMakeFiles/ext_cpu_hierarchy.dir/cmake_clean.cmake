file(REMOVE_RECURSE
  "CMakeFiles/ext_cpu_hierarchy.dir/ext_cpu_hierarchy.cpp.o"
  "CMakeFiles/ext_cpu_hierarchy.dir/ext_cpu_hierarchy.cpp.o.d"
  "ext_cpu_hierarchy"
  "ext_cpu_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cpu_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
