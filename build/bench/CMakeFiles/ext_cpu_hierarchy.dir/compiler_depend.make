# Empty compiler generated dependencies file for ext_cpu_hierarchy.
# This may be replaced when dependencies are built.
