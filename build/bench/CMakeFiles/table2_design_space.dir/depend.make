# Empty dependencies file for table2_design_space.
# This may be replaced when dependencies are built.
