file(REMOVE_RECURSE
  "CMakeFiles/table2_design_space.dir/table2_design_space.cpp.o"
  "CMakeFiles/table2_design_space.dir/table2_design_space.cpp.o.d"
  "table2_design_space"
  "table2_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
