file(REMOVE_RECURSE
  "CMakeFiles/micro_reorder.dir/micro_reorder.cpp.o"
  "CMakeFiles/micro_reorder.dir/micro_reorder.cpp.o.d"
  "micro_reorder"
  "micro_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
