# Empty compiler generated dependencies file for micro_reorder.
# This may be replaced when dependencies are built.
