# Empty dependencies file for ext_locality_metrics.
# This may be replaced when dependencies are built.
