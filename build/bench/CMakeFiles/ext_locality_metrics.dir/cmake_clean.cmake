file(REMOVE_RECURSE
  "CMakeFiles/ext_locality_metrics.dir/ext_locality_metrics.cpp.o"
  "CMakeFiles/ext_locality_metrics.dir/ext_locality_metrics.cpp.o.d"
  "ext_locality_metrics"
  "ext_locality_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_locality_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
