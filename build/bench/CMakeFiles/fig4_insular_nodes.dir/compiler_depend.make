# Empty compiler generated dependencies file for fig4_insular_nodes.
# This may be replaced when dependencies are built.
