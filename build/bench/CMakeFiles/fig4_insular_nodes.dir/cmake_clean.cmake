file(REMOVE_RECURSE
  "CMakeFiles/fig4_insular_nodes.dir/fig4_insular_nodes.cpp.o"
  "CMakeFiles/fig4_insular_nodes.dir/fig4_insular_nodes.cpp.o.d"
  "fig4_insular_nodes"
  "fig4_insular_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_insular_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
