# Empty compiler generated dependencies file for ext_tiling.
# This may be replaced when dependencies are built.
