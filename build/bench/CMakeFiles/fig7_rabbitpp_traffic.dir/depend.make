# Empty dependencies file for fig7_rabbitpp_traffic.
# This may be replaced when dependencies are built.
