file(REMOVE_RECURSE
  "CMakeFiles/fig7_rabbitpp_traffic.dir/fig7_rabbitpp_traffic.cpp.o"
  "CMakeFiles/fig7_rabbitpp_traffic.dir/fig7_rabbitpp_traffic.cpp.o.d"
  "fig7_rabbitpp_traffic"
  "fig7_rabbitpp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rabbitpp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
