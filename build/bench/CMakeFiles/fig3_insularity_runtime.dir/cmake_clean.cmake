file(REMOVE_RECURSE
  "CMakeFiles/fig3_insularity_runtime.dir/fig3_insularity_runtime.cpp.o"
  "CMakeFiles/fig3_insularity_runtime.dir/fig3_insularity_runtime.cpp.o.d"
  "fig3_insularity_runtime"
  "fig3_insularity_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_insularity_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
