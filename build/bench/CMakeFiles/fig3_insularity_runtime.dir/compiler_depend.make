# Empty compiler generated dependencies file for fig3_insularity_runtime.
# This may be replaced when dependencies are built.
