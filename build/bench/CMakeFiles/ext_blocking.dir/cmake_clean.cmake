file(REMOVE_RECURSE
  "CMakeFiles/ext_blocking.dir/ext_blocking.cpp.o"
  "CMakeFiles/ext_blocking.dir/ext_blocking.cpp.o.d"
  "ext_blocking"
  "ext_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
