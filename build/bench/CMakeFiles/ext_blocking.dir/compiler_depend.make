# Empty compiler generated dependencies file for ext_blocking.
# This may be replaced when dependencies are built.
