# Empty compiler generated dependencies file for fig8_belady_headroom.
# This may be replaced when dependencies are built.
