file(REMOVE_RECURSE
  "CMakeFiles/fig8_belady_headroom.dir/fig8_belady_headroom.cpp.o"
  "CMakeFiles/fig8_belady_headroom.dir/fig8_belady_headroom.cpp.o.d"
  "fig8_belady_headroom"
  "fig8_belady_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_belady_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
