# Empty compiler generated dependencies file for table4_other_kernels.
# This may be replaced when dependencies are built.
