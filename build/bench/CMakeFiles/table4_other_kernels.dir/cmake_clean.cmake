file(REMOVE_RECURSE
  "CMakeFiles/table4_other_kernels.dir/table4_other_kernels.cpp.o"
  "CMakeFiles/table4_other_kernels.dir/table4_other_kernels.cpp.o.d"
  "table4_other_kernels"
  "table4_other_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_other_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
