file(REMOVE_RECURSE
  "CMakeFiles/table3_dead_lines.dir/table3_dead_lines.cpp.o"
  "CMakeFiles/table3_dead_lines.dir/table3_dead_lines.cpp.o.d"
  "table3_dead_lines"
  "table3_dead_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dead_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
