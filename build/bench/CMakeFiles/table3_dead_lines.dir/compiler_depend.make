# Empty compiler generated dependencies file for table3_dead_lines.
# This may be replaced when dependencies are built.
