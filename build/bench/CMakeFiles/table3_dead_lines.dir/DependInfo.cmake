
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_dead_lines.cpp" "bench/CMakeFiles/table3_dead_lines.dir/table3_dead_lines.cpp.o" "gcc" "bench/CMakeFiles/table3_dead_lines.dir/table3_dead_lines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/slo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/slo_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/slo_community.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/slo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/slo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/slo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/slo_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/slo_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
