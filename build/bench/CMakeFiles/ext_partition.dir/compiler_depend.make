# Empty compiler generated dependencies file for ext_partition.
# This may be replaced when dependencies are built.
