file(REMOVE_RECURSE
  "CMakeFiles/ext_partition.dir/ext_partition.cpp.o"
  "CMakeFiles/ext_partition.dir/ext_partition.cpp.o.d"
  "ext_partition"
  "ext_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
