file(REMOVE_RECURSE
  "CMakeFiles/ext_cpu_platform.dir/ext_cpu_platform.cpp.o"
  "CMakeFiles/ext_cpu_platform.dir/ext_cpu_platform.cpp.o.d"
  "ext_cpu_platform"
  "ext_cpu_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cpu_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
