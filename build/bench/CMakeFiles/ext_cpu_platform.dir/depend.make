# Empty dependencies file for ext_cpu_platform.
# This may be replaced when dependencies are built.
