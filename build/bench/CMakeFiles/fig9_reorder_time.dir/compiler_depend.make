# Empty compiler generated dependencies file for fig9_reorder_time.
# This may be replaced when dependencies are built.
