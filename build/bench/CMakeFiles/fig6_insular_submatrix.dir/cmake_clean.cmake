file(REMOVE_RECURSE
  "CMakeFiles/fig6_insular_submatrix.dir/fig6_insular_submatrix.cpp.o"
  "CMakeFiles/fig6_insular_submatrix.dir/fig6_insular_submatrix.cpp.o.d"
  "fig6_insular_submatrix"
  "fig6_insular_submatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_insular_submatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
