# Empty compiler generated dependencies file for fig6_insular_submatrix.
# This may be replaced when dependencies are built.
