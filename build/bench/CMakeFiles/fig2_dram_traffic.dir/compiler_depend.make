# Empty compiler generated dependencies file for fig2_dram_traffic.
# This may be replaced when dependencies are built.
