file(REMOVE_RECURSE
  "CMakeFiles/fig2_dram_traffic.dir/fig2_dram_traffic.cpp.o"
  "CMakeFiles/fig2_dram_traffic.dir/fig2_dram_traffic.cpp.o.d"
  "fig2_dram_traffic"
  "fig2_dram_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dram_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
