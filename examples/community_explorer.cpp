/**
 * @file
 * Community explorer: runs the library's two community detectors on a
 * matrix and prints the quality metrics the paper's analysis is built
 * on — modularity, insularity, insular-node share, community sizes,
 * and degree skew — plus the RABBIT++ node classification.
 *
 * Usage:
 *   ./examples/community_explorer            (built-in demo matrix)
 *   ./examples/community_explorer input.mtx  (your MatrixMarket file)
 */

#include <cstdio>
#include <string>

#include "community/louvain.hpp"
#include "community/metrics.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/properties.hpp"
#include "reorder/rabbitpp.hpp"

int
main(int argc, char **argv)
{
    using namespace slo;

    Csr matrix;
    if (argc > 1) {
        std::printf("loading %s...\n", argv[1]);
        matrix = io::readCsrFromMatrixMarketFile(argv[1]);
        require(matrix.isSquare(),
                "community_explorer: matrix must be square");
        if (!matrix.isSymmetricPattern())
            matrix = matrix.symmetrized();
    } else {
        std::printf("no input given; generating a demo social "
                    "network (pass a .mtx path to use your own)\n");
        matrix =
            gen::temporalInteraction(32768, 256, 10.0, 0.02, 60.0, 3)
                .permutedSymmetric(Permutation::random(32768, 5));
    }

    std::printf("\nmatrix: %d rows, %lld non-zeros, avg degree %.2f\n",
                matrix.numRows(),
                static_cast<long long>(matrix.numNonZeros()),
                matrix.averageDegree());
    const DegreeStats degrees = degreeStats(matrix);
    std::printf("degrees: min %d, median %.0f, max %d\n",
                degrees.minDegree, degrees.medianDegree,
                degrees.maxDegree);
    std::printf("degree skew (nnz share of top 10%% columns): %.1f%%\n",
                degreeSkew(matrix) * 100.0);
    std::printf("connected components: %d, empty rows: %d\n",
                connectedComponents(matrix), emptyRowCount(matrix));

    // RABBIT's incremental aggregation.
    const reorder::RabbitResult rabbit = reorder::rabbitOrder(matrix);
    const community::CommunitySizeStats rabbit_sizes =
        community::communitySizeStats(rabbit.clustering);
    std::printf("\n--- RABBIT aggregation ---\n");
    std::printf("communities: %d (avg size %.1f, largest %.1f%% of "
                "matrix)\n",
                rabbit_sizes.numCommunities, rabbit_sizes.avgSize,
                rabbit_sizes.maxSizeFraction * 100.0);
    std::printf("modularity:  %.4f\n",
                community::modularity(matrix, rabbit.clustering));
    std::printf("insularity:  %.4f  (>= 0.95 predicts near-ideal "
                "SpMV with RABBIT)\n",
                community::insularity(matrix, rabbit.clustering));
    std::printf("insular nodes: %.1f%%\n",
                community::insularNodeFraction(matrix,
                                               rabbit.clustering) *
                    100.0);
    std::printf("mean conductance: %.4f  (lower = better isolated "
                "communities)\n",
                community::meanConductance(matrix,
                                           rabbit.clustering));

    // Louvain cross-check.
    const community::LouvainResult louvain =
        community::louvain(matrix);
    std::printf("\n--- Louvain (cross-check) ---\n");
    std::printf("communities: %d, modularity %.4f, levels %d\n",
                louvain.clustering.numCommunities(),
                louvain.modularity, louvain.levels);

    // RABBIT++ node classification.
    const reorder::RabbitPlusResult rpp =
        reorder::rabbitPlusFromRabbit(matrix, rabbit, {});
    std::printf("\n--- RABBIT++ classification ---\n");
    std::printf("insular nodes grouped at the tail: %d (%.1f%%)\n",
                rpp.numInsular,
                100.0 * rpp.numInsular / matrix.numRows());
    std::printf("non-insular hubs grouped at the head: %d\n",
                rpp.numHubs);
    return 0;
}
