/**
 * @file
 * Corpus characterization report — the Sec. III diversity claim as a
 * runnable tool. Prints every corpus matrix with the structural
 * properties the paper's analysis turns on (rows, nnz, average degree,
 * skew, insularity under RABBIT communities, modularity), plus the
 * curation summary (pool size, exclusions, per-repository split).
 *
 * Usage: ./examples/corpus_report            (small scale)
 *        REPRO_SCALE=medium ./examples/corpus_report
 */

#include <iostream>

#include "community/metrics.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "matrix/properties.hpp"

int
main()
{
    using namespace slo;

    const core::Scale scale = core::scaleFromEnv();
    const auto pool = core::candidatePool();
    const auto corpus = core::paperCorpus(scale);
    const core::CurationCriteria criteria = core::paperCriteria(scale);

    std::cout << "candidate pool: " << pool.size()
              << " matrices; curated corpus: " << corpus.size()
              << " (criteria: rows >= " << criteria.minRows
              << ", nnz <= " << criteria.maxNnz
              << ", largest per publisher group, exceptions:";
    for (const auto &group : criteria.exceptionGroups)
        std::cout << ' ' << group;
    std::cout << ")\n\n";

    core::Table table({"matrix", "repository", "domain", "rows", "nnz",
                       "avg deg", "skew", "insularity", "modularity"});
    std::cerr << "building corpus + RABBIT communities (cached after "
                 "the first run)...\n";
    int high_insularity = 0;
    for (const core::DatasetEntry &entry : corpus) {
        const Csr m = entry.build(scale);
        const core::RabbitArtifacts rabbit =
            core::rabbitArtifactsFor(entry, m, scale);
        const double q =
            community::modularity(m, rabbit.clustering);
        if (rabbit.insularity >= community::kInsularityThreshold)
            ++high_insularity;
        table.addRow({entry.name, entry.repository, entry.domain,
                      std::to_string(m.numRows()),
                      std::to_string(m.numNonZeros()),
                      core::fmt(m.averageDegree(), 1),
                      core::fmtPct(degreeSkew(m)),
                      core::fmt(rabbit.insularity, 3),
                      core::fmt(q, 3)});
        std::cerr << "[corpus_report] " << entry.name << " done\n";
    }
    table.print(std::cout);

    std::cout << "\nhigh-insularity (>= 0.95) matrices: "
              << high_insularity << "/" << corpus.size()
              << " — the paper's corpus splits roughly in half\n";
    return 0;
}
