/**
 * @file
 * Quickstart: the 60-second tour of the library.
 *
 * 1. Generate a community-structured sparse matrix (or load your own
 *    .mtx with slo::io::readCsrFromMatrixMarketFile).
 * 2. Reorder it with RABBIT++.
 * 3. Run SpMV and check that results are unchanged.
 * 4. Ask the GPU model how much DRAM traffic the reordering saved.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "gpu/simulate.hpp"
#include "kernels/kernels.hpp"
#include "matrix/generators.hpp"
#include "reorder/reorder.hpp"

int
main()
{
    using namespace slo;

    // A shuffled social-network-like matrix: 64k nodes, ~800k edges.
    std::printf("generating input matrix...\n");
    const Csr matrix =
        gen::temporalInteraction(65536, 512, 10.0, 0.02, 80.0, 42)
            .permutedSymmetric(Permutation::random(65536, 7));
    std::printf("matrix: %d x %d, %lld non-zeros, avg degree %.1f\n",
                matrix.numRows(), matrix.numCols(),
                static_cast<long long>(matrix.numNonZeros()),
                matrix.averageDegree());

    // Reorder with RABBIT++ (the paper's proposal). One call; any
    // technique from reorder::allTechniques() works the same way.
    std::printf("computing RABBIT++ ordering...\n");
    const Permutation perm = reorder::computeOrdering(
        reorder::Technique::RabbitPlusPlus, matrix);
    const Csr reordered = matrix.permutedSymmetric(perm);

    // SpMV results must be identical (up to FP reassociation): the
    // input vector moves into the new index space, the result moves
    // back.
    std::vector<Value> x(static_cast<std::size_t>(matrix.numRows()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i % 100) * 0.01f;
    const std::vector<Value> y_before = kernels::spmvCsr(matrix, x);
    const std::vector<Value> y_after = kernels::unpermuteVector(
        kernels::spmvCsr(reordered, kernels::permuteVector(x, perm)),
        perm);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        max_diff = std::max(
            max_diff, static_cast<double>(
                          std::abs(y_before[i] - y_after[i])));
    }
    std::printf("SpMV result max |diff| after reordering: %.2e\n",
                max_diff);

    // What did it buy? Simulate the kernel on the modelled GPU.
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const gpu::SimReport before = gpu::simulateKernel(matrix, spec);
    const gpu::SimReport after = gpu::simulateKernel(reordered, spec);
    std::printf("\n%-22s %12s %12s\n", "", "before", "after");
    std::printf("%-22s %11.2fx %11.2fx\n",
                "DRAM traffic/compulsory", before.normalizedTraffic,
                after.normalizedTraffic);
    std::printf("%-22s %11.2fx %11.2fx\n", "run time/ideal",
                before.normalizedRuntime, after.normalizedRuntime);
    std::printf("%-22s %11.1f%% %11.1f%%\n", "L2 hit rate",
                before.l2HitRate * 100.0, after.l2HitRate * 100.0);
    std::printf("\nspeedup from reordering: %.2fx\n",
                before.modeledSeconds / after.modeledSeconds);
    return 0;
}
