/**
 * @file
 * SpMM pipeline scenario (Table IV / Sec. VI-C): a GNN-style workload
 * runs SpMM (sparse adjacency x dense feature matrix) for many epochs
 * over the same matrix. The example reorders once, shows the per-epoch
 * benefit at two feature widths, and works out the amortization point
 * — after how many kernel launches the one-off reordering cost has
 * paid for itself.
 *
 * Build & run:  ./examples/spmm_pipeline
 */

#include <cstdio>

#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "obs/trace.hpp"
#include "reorder/reorder.hpp"

int
main()
{
    using namespace slo;

    std::printf("generating a shuffled social graph...\n");
    const Csr matrix =
        gen::temporalInteraction(65536, 512, 10.0, 0.02, 80.0, 17)
            .permutedSymmetric(Permutation::random(65536, 23));
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);

    // One-off pre-processing (timed on this host).
    const obs::Span reorder_span("example.reorder");
    const Permutation perm = reorder::computeOrdering(
        reorder::Technique::RabbitPlusPlus, matrix);
    const double reorder_seconds = reorder_span.elapsedSeconds();
    const Csr reordered = matrix.permutedSymmetric(perm);
    std::printf("RABBIT++ pre-processing took %.2fs (one-off)\n\n",
                reorder_seconds);

    std::printf("%-14s %14s %14s %10s\n", "kernel",
                "before (s/run)", "after (s/run)", "speedup");
    double saved_per_epoch = 0.0;
    for (Index k : {4, 64, 256}) {
        gpu::SimOptions options;
        options.kernel = kernels::KernelKind::SpmmCsr;
        options.denseCols = k;
        const gpu::SimReport before =
            gpu::simulateKernel(matrix, spec, options);
        const gpu::SimReport after =
            gpu::simulateKernel(reordered, spec, options);
        std::printf("SpMM-%-9d %14.3e %14.3e %9.2fx\n", k,
                    before.modeledSeconds, after.modeledSeconds,
                    before.modeledSeconds / after.modeledSeconds);
        if (k == 64)
            saved_per_epoch =
                before.modeledSeconds - after.modeledSeconds;
    }

    if (saved_per_epoch > 0.0) {
        std::printf(
            "\nAmortization (SpMM-64): the reordering pays for itself "
            "after %.0f kernel launches\n(a multi-epoch GNN training "
            "run launches orders of magnitude more).\n",
            reorder_seconds / saved_per_epoch);
        std::printf(
            "Note: pre-processing runs on this host's CPU while the "
            "kernel time is the modelled GPU\n— the paper's Sec. VI-C "
            "makes the same style of comparison.\n");
    }
    return 0;
}
