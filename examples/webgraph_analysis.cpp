/**
 * @file
 * Web-graph scenario: the paper's sk-2005 vs pld-arc anecdote
 * (Observation 3) on two synthetic web crawls with identical structure
 * but different publisher orderings.
 *
 * One crawl ships "publisher-ordered" (the publisher already applied a
 * community reordering, like sk-2005's LLP); the other ships with
 * hashed ids (like pld-arc). The example shows that ORIGINAL is a
 * misleading baseline, and that RABBIT++ makes both converge to the
 * same near-ideal traffic.
 *
 * Build & run:  ./examples/webgraph_analysis
 */

#include <cstdio>

#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "reorder/rabbit.hpp"
#include "reorder/reorder.hpp"

int
main()
{
    using namespace slo;

    std::printf("generating two structurally identical web crawls...\n");
    const Csr crawl =
        gen::hierarchicalCommunity(98304, 10, 4, 18.0, 0.2, 2025);

    // "sk-2005-like": publisher applied a community ordering.
    const Csr published_ordered =
        crawl.permutedSymmetric(reorder::rabbitOrder(crawl).perm);
    // "pld-arc-like": publisher shipped hashed ids.
    const Csr published_hashed = crawl.permutedSymmetric(
        Permutation::random(crawl.numRows(), 13));

    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);

    auto report_for = [&spec](const Csr &m, reorder::Technique t) {
        const Permutation perm = reorder::computeOrdering(t, m);
        return gpu::simulateKernel(m.permutedSymmetric(perm), spec);
    };

    std::printf("\nSpMV DRAM traffic normalized to compulsory:\n");
    std::printf("%-26s %10s %10s %10s\n", "matrix", "ORIGINAL",
                "RABBIT", "RABBIT++");
    for (const auto &[name, matrix] :
         {std::pair<const char *, const Csr &>{"sk-2005-like",
                                               published_ordered},
          std::pair<const char *, const Csr &>{"pld-arc-like",
                                               published_hashed}}) {
        const double original =
            gpu::simulateKernel(matrix, spec).normalizedTraffic;
        const double rabbit =
            report_for(matrix, reorder::Technique::Rabbit)
                .normalizedTraffic;
        const double rpp =
            report_for(matrix, reorder::Technique::RabbitPlusPlus)
                .normalizedTraffic;
        std::printf("%-26s %9.2fx %9.2fx %9.2fx\n", name, original,
                    rabbit, rpp);
    }

    std::printf(
        "\nTakeaway (paper Observation 3): the two ORIGINAL numbers\n"
        "differ wildly even though the graphs are structurally\n"
        "identical — ORIGINAL reflects an arbitrary publisher choice,\n"
        "not a property of the matrix. Community-based reordering\n"
        "erases the difference.\n");
    return 0;
}
