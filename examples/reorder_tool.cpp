/**
 * @file
 * reorder_tool: a command-line matrix reorderer — the utility a
 * downstream user actually wants. Reads a MatrixMarket file, applies a
 * technique, writes the reordered matrix (and optionally the
 * permutation), and reports the modelled locality improvement.
 *
 * Usage:
 *   reorder_tool <input.mtx> <output.mtx> [TECHNIQUE] [--perm out.txt]
 *
 * TECHNIQUE is one of: ORIGINAL RANDOM DEGSORT DBG HUBSORT HUBCLUSTER
 * RCM SLASHBURN GORDER RABBIT RABBIT++ (default RABBIT++).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gpu/simulate.hpp"
#include "matrix/matrix_market.hpp"
#include "reorder/reorder.hpp"

int
main(int argc, char **argv)
{
    using namespace slo;

    std::vector<std::string> args(argv + 1, argv + argc);
    std::string perm_path;
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == "--perm") {
            perm_path = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) +
                           2);
            break;
        }
    }
    if (args.size() < 2) {
        std::fprintf(stderr,
                     "usage: reorder_tool <in.mtx> <out.mtx> "
                     "[TECHNIQUE] [--perm out.txt]\n");
        return 2;
    }

    try {
        const reorder::Technique technique =
            args.size() >= 3 ? reorder::techniqueFromName(args[2])
                             : reorder::Technique::RabbitPlusPlus;

        std::printf("reading %s...\n", args[0].c_str());
        Csr matrix = io::readCsrFromMatrixMarketFile(args[0]);
        require(matrix.isSquare(),
                "reorder_tool: matrix must be square (symmetric "
                "reordering relabels rows and columns together)");
        std::printf("matrix: %d rows, %lld non-zeros\n",
                    matrix.numRows(),
                    static_cast<long long>(matrix.numNonZeros()));

        std::printf("computing %s ordering...\n",
                    reorder::techniqueName(technique).c_str());
        const Permutation perm =
            reorder::computeOrdering(technique, matrix);
        const Csr reordered = matrix.permutedSymmetric(perm);

        std::printf("writing %s...\n", args[1].c_str());
        io::writeMatrixMarketFile(args[1], reordered);
        if (!perm_path.empty()) {
            std::ofstream out(perm_path);
            require(out.is_open(),
                    "reorder_tool: cannot open " + perm_path);
            out << "# newId per oldId, one per line\n";
            for (Index v = 0; v < perm.size(); ++v)
                out << perm.newId(v) << '\n';
            std::printf("wrote permutation to %s\n",
                        perm_path.c_str());
        }

        // Modelled benefit on the A6000 (full-size L2: meaningful for
        // matrices with >= ~1.5M rows; smaller inputs mostly fit).
        const gpu::GpuSpec spec = gpu::GpuSpec::a6000();
        const double before =
            gpu::simulateKernel(matrix, spec).normalizedTraffic;
        const double after =
            gpu::simulateKernel(reordered, spec).normalizedTraffic;
        std::printf("modelled SpMV DRAM traffic (A6000, normalized "
                    "to compulsory): %.2fx -> %.2fx\n",
                    before, after);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
