/**
 * @file
 * PageRank: the canonical "many SpMV iterations over one matrix"
 * application — the workload class the paper's amortization argument
 * (Sec. VI-C) is about. Runs power iteration on a synthetic web crawl
 * with and without RABBIT++ reordering, verifies the ranks agree, and
 * reports the host-side time saved per iteration vs the one-off
 * reordering cost.
 *
 * Build & run:  ./examples/pagerank
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "kernels/kernels.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/reorder.hpp"

namespace
{

using namespace slo;

/** One damped power iteration: rank' = d*A^T_norm*rank + (1-d)/n. */
std::vector<Value>
pagerank(const Csr &matrix, int iterations, double damping)
{
    const Index n = matrix.numRows();
    // Column-normalize by out-degree via the transpose trick: we use
    // A as "links from row to col" and pull ranks along rows.
    const std::vector<Index> degrees = outDegrees(matrix);
    std::vector<Value> rank(static_cast<std::size_t>(n),
                            1.0f / static_cast<float>(n));
    std::vector<Value> contribution(static_cast<std::size_t>(n));
    std::vector<Value> next(static_cast<std::size_t>(n));
    for (int it = 0; it < iterations; ++it) {
        for (Index v = 0; v < n; ++v) {
            const auto sv = static_cast<std::size_t>(v);
            contribution[sv] =
                degrees[sv] > 0
                    ? rank[sv] / static_cast<float>(degrees[sv])
                    : 0.0f;
        }
        kernels::spmvCsr(matrix, contribution, next);
        const auto base =
            static_cast<float>((1.0 - damping) / n);
        for (Index v = 0; v < n; ++v) {
            const auto sv = static_cast<std::size_t>(v);
            rank[sv] = base + static_cast<float>(damping) * next[sv];
        }
    }
    return rank;
}

} // namespace

int
main()
{
    using namespace slo;

    std::printf("generating a shuffled web crawl...\n");
    const Csr matrix =
        gen::hierarchicalCommunity(262144, 10, 4, 16.0, 0.2, 99)
            .permutedSymmetric(Permutation::random(262144, 3));
    constexpr int kIterations = 20;
    constexpr double kDamping = 0.85;

    // Baseline run.
    const slo::obs::Span t_base("pagerank.baseline");
    const auto ranks = pagerank(matrix, kIterations, kDamping);
    const double base_seconds = t_base.elapsedSeconds();

    // Reorder once, run the same iterations.
    const slo::obs::Span t_reorder("pagerank.reorder");
    const Permutation perm = reorder::computeOrdering(
        reorder::Technique::RabbitPlusPlus, matrix);
    const double reorder_seconds = t_reorder.elapsedSeconds();
    const Csr reordered = matrix.permutedSymmetric(perm);

    const slo::obs::Span t_fast("pagerank.reordered");
    const auto ranks_reordered =
        pagerank(reordered, kIterations, kDamping);
    const double fast_seconds = t_fast.elapsedSeconds();

    // Ranks must agree once mapped back to original ids.
    const auto ranks_back =
        kernels::unpermuteVector(ranks_reordered, perm);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        max_diff = std::max(
            max_diff, static_cast<double>(
                          std::abs(ranks[i] - ranks_back[i])));
    }

    std::printf("\n%d PageRank iterations on %d nodes / %lld edges\n",
                kIterations, matrix.numRows(),
                static_cast<long long>(matrix.numNonZeros()));
    std::printf("original order : %.3fs\n", base_seconds);
    std::printf("RABBIT++ order : %.3fs (+%.3fs one-off reorder)\n",
                fast_seconds, reorder_seconds);
    std::printf("per-iteration speedup: %.2fx\n",
                base_seconds / fast_seconds);
    if (base_seconds > fast_seconds) {
        std::printf("reordering amortizes after %.0f iterations\n",
                    reorder_seconds * kIterations /
                        (base_seconds - fast_seconds));
    }
    std::printf("max rank difference: %.2e (results identical up to "
                "FP rounding)\n",
                max_diff);
    return 0;
}
