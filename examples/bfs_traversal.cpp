/**
 * @file
 * BFS traversal: graph analytics is the other workload family the
 * reordering literature targets (RABBIT itself is from a graph-
 * processing paper). Runs level-synchronous BFS over a shuffled social
 * graph before and after RABBIT++ reordering, verifies the level
 * structure is identical, and reports the wall-clock effect of
 * locality on a traversal (not SpMV) access pattern.
 *
 * Build & run:  ./examples/bfs_traversal
 */

#include <cstdio>
#include <queue>
#include <vector>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "matrix/generators.hpp"
#include "reorder/reorder.hpp"

namespace
{

using namespace slo;

/** Level-synchronous BFS; returns per-vertex level (-1 unreached). */
std::vector<Index>
bfsLevels(const Csr &graph, Index source)
{
    std::vector<Index> level(
        static_cast<std::size_t>(graph.numRows()), -1);
    std::vector<Index> frontier = {source};
    level[static_cast<std::size_t>(source)] = 0;
    Index depth = 0;
    std::vector<Index> next;
    while (!frontier.empty()) {
        ++depth;
        for (Index u : frontier) {
            for (Index v : graph.rowIndices(u)) {
                auto &lv = level[static_cast<std::size_t>(v)];
                if (lv < 0) {
                    lv = depth;
                    next.push_back(v);
                }
            }
        }
        frontier = std::move(next);
        next.clear();
    }
    return level;
}

} // namespace

int
main()
{
    using namespace slo;

    std::printf("generating a shuffled social graph...\n");
    const Csr graph =
        gen::temporalInteraction(262144, 1024, 10.0, 0.02, 80.0, 77)
            .permutedSymmetric(Permutation::random(262144, 5));
    const Index source = 12345;

    // Baseline traversal (repeat to smooth timing noise).
    const slo::obs::Span t_base("bfs.baseline");
    std::vector<Index> levels;
    for (int run = 0; run < 5; ++run)
        levels = bfsLevels(graph, source);
    const double base_seconds = t_base.elapsedSeconds() / 5.0;

    const Permutation perm = reorder::computeOrdering(
        reorder::Technique::RabbitPlusPlus, graph);
    const Csr reordered = graph.permutedSymmetric(perm);

    const slo::obs::Span t_fast("bfs.reordered");
    std::vector<Index> levels_reordered;
    for (int run = 0; run < 5; ++run)
        levels_reordered = bfsLevels(reordered, perm.newId(source));
    const double fast_seconds = t_fast.elapsedSeconds() / 5.0;

    // The traversal structure must be identical under relabelling.
    bool identical = true;
    Index reached = 0;
    for (Index v = 0; v < graph.numRows(); ++v) {
        const Index before = levels[static_cast<std::size_t>(v)];
        const Index after = levels_reordered[static_cast<std::size_t>(
            perm.newId(v))];
        identical = identical && (before == after);
        reached += before >= 0 ? 1 : 0;
    }

    std::printf("\nBFS from node %d reaches %d/%d nodes\n", source,
                reached, graph.numRows());
    std::printf("levels identical after reordering: %s\n",
                identical ? "yes" : "NO (bug!)");
    const double speedup = base_seconds / fast_seconds;
    std::printf("traversal time: %.3fs -> %.3fs (%.2fx)\n",
                base_seconds, fast_seconds, speedup);
    if (speedup > 1.05) {
        std::printf("(reordering speeds up traversals too — the "
                    "original use case of RABBIT)\n");
    } else {
        std::printf(
            "(flat wall clock here usually means the whole graph fits "
            "in this host's last-level cache\n — the locality effect "
            "appears once the working set exceeds it; the invariance "
            "check above\n is the correctness point of this "
            "example)\n");
    }
    return identical ? 0 : 1;
}
