/**
 * @file
 * Multilevel k-way graph partitioning (METIS-style).
 *
 * The paper's related work (Sec. VII) groups partitioning-based
 * orderings (METIS, GraphGrind) with community-based reordering and
 * conjectures that RABBIT++'s insular/hub grouping extends to them.
 * This module provides the substrate to test that: a from-scratch
 * multilevel partitioner — heavy-edge-matching coarsening, greedy
 * growing for the coarsest bisection, Fiduccia-Mattheyses boundary
 * refinement, recursive bisection for k parts — plus the
 * partition-based ordering exposed through reorder::Technique.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::partition
{

/** Partitioning knobs. */
struct PartitionOptions
{
    /** Number of parts (rounded up to the recursion's power of two). */
    Index numParts = 8;

    /** Coarsen until this many vertices remain per bisection. */
    Index coarsenTarget = 128;

    /** Allowed part weight relative to perfect balance (>= 1.0). */
    double imbalance = 1.10;

    /** FM refinement passes per uncoarsening level. */
    int refinePasses = 4;

    /** Tie-breaking/matching randomization seed. */
    std::uint64_t seed = 1;
};

/** Result of a k-way partitioning. */
struct PartitionResult
{
    /** Part id per vertex, in [0, parts). */
    std::vector<Index> assignment;
    Index parts = 0;
    /** Edges crossing part boundaries (each undirected edge once). */
    Offset cutEdges = 0;
};

/**
 * Partition the undirected graph @p graph (symmetric pattern expected)
 * into options.numParts parts by multilevel recursive bisection.
 */
PartitionResult partitionGraph(const Csr &graph,
                               const PartitionOptions &options = {});

/** Count cut edges of @p assignment on @p graph (undirected). */
Offset cutOf(const Csr &graph, const std::vector<Index> &assignment);

/**
 * Partition-based ordering: vertices sorted by (part, original id),
 * so every part occupies a contiguous id range — the classic
 * partitioning-as-reordering use.
 */
Permutation partitionOrder(const Csr &matrix,
                           const PartitionOptions &options = {});

} // namespace slo::partition
