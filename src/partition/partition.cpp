#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "matrix/rng.hpp"

namespace slo::partition
{

namespace
{

/** Internal weighted graph (edge + vertex weights). */
struct WGraph
{
    Index n = 0;
    std::vector<Offset> offsets = {0};
    std::vector<Index> adj;
    std::vector<double> ew;
    std::vector<Index> vw;

    Index
    totalWeight() const
    {
        Index total = 0;
        for (Index w : vw)
            total += w;
        return total;
    }
};

WGraph
fromCsr(const Csr &graph)
{
    WGraph wg;
    wg.n = graph.numRows();
    wg.offsets.assign(graph.rowOffsets().begin(),
                      graph.rowOffsets().end());
    wg.adj.assign(graph.colIndices().begin(),
                  graph.colIndices().end());
    wg.ew.assign(wg.adj.size(), 1.0);
    wg.vw.assign(static_cast<std::size_t>(wg.n), 1);
    return wg;
}

/** Random visit order. */
std::vector<Index>
shuffledOrder(Index n, Rng &rng)
{
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index{0});
    for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.below(i));
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

/**
 * Heavy-edge matching: match[v] = partner (or v itself).
 * @return number of coarse vertices.
 */
Index
heavyEdgeMatching(const WGraph &wg, Rng &rng,
                  std::vector<Index> *coarse_id)
{
    std::vector<Index> match(static_cast<std::size_t>(wg.n), -1);
    const std::vector<Index> order = shuffledOrder(wg.n, rng);
    for (Index v : order) {
        const auto sv = static_cast<std::size_t>(v);
        if (match[sv] >= 0)
            continue;
        Index best = v;
        double best_w = -1.0;
        for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1]; ++i) {
            const auto si = static_cast<std::size_t>(i);
            const Index u = wg.adj[si];
            if (u == v || match[static_cast<std::size_t>(u)] >= 0)
                continue;
            if (wg.ew[si] > best_w) {
                best_w = wg.ew[si];
                best = u;
            }
        }
        match[sv] = best;
        match[static_cast<std::size_t>(best)] = v;
    }

    coarse_id->assign(static_cast<std::size_t>(wg.n), -1);
    Index next = 0;
    for (Index v = 0; v < wg.n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if ((*coarse_id)[sv] >= 0)
            continue;
        (*coarse_id)[sv] = next;
        const Index partner = match[sv];
        if (partner != v)
            (*coarse_id)[static_cast<std::size_t>(partner)] = next;
        ++next;
    }
    return next;
}

/** Contract wg by coarse_id into a coarse graph. */
WGraph
contract(const WGraph &wg, const std::vector<Index> &coarse_id,
         Index coarse_n)
{
    std::vector<std::unordered_map<Index, double>> adj(
        static_cast<std::size_t>(coarse_n));
    std::vector<Index> vw(static_cast<std::size_t>(coarse_n), 0);
    for (Index v = 0; v < wg.n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        const Index cv = coarse_id[sv];
        vw[static_cast<std::size_t>(cv)] += wg.vw[sv];
        for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1]; ++i) {
            const auto si = static_cast<std::size_t>(i);
            const Index cu =
                coarse_id[static_cast<std::size_t>(wg.adj[si])];
            if (cu != cv)
                adj[static_cast<std::size_t>(cv)][cu] += wg.ew[si];
        }
    }

    WGraph coarse;
    coarse.n = coarse_n;
    coarse.vw = std::move(vw);
    coarse.offsets.assign(static_cast<std::size_t>(coarse_n) + 1, 0);
    for (Index c = 0; c < coarse_n; ++c) {
        coarse.offsets[static_cast<std::size_t>(c) + 1] =
            coarse.offsets[static_cast<std::size_t>(c)] +
            static_cast<Offset>(adj[static_cast<std::size_t>(c)]
                                    .size());
    }
    coarse.adj.resize(static_cast<std::size_t>(coarse.offsets.back()));
    coarse.ew.resize(coarse.adj.size());
    for (Index c = 0; c < coarse_n; ++c) {
        auto pos = static_cast<std::size_t>(
            coarse.offsets[static_cast<std::size_t>(c)]);
        std::vector<std::pair<Index, double>> entries(
            adj[static_cast<std::size_t>(c)].begin(),
            adj[static_cast<std::size_t>(c)].end());
        std::sort(entries.begin(), entries.end());
        for (const auto &[u, w] : entries) {
            coarse.adj[pos] = u;
            coarse.ew[pos] = w;
            ++pos;
        }
    }
    return coarse;
}

/**
 * Greedy-growing initial bisection: BFS-grow side 0 from a random
 * seed, preferring vertices with the strongest connection to the grown
 * region, until it holds ~target_fraction of the weight.
 */
std::vector<std::uint8_t>
growBisection(const WGraph &wg, double target_fraction, Rng &rng)
{
    std::vector<std::uint8_t> side(static_cast<std::size_t>(wg.n), 1);
    if (wg.n == 0)
        return side;
    const double target =
        target_fraction * static_cast<double>(wg.totalWeight());

    std::vector<double> gain(static_cast<std::size_t>(wg.n), 0.0);
    std::vector<bool> in_frontier(static_cast<std::size_t>(wg.n),
                                  false);
    std::vector<Index> frontier;
    double grown = 0.0;

    auto add = [&](Index v) {
        const auto sv = static_cast<std::size_t>(v);
        side[sv] = 0;
        grown += wg.vw[sv];
        for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1]; ++i) {
            const auto si = static_cast<std::size_t>(i);
            const Index u = wg.adj[si];
            const auto su = static_cast<std::size_t>(u);
            if (side[su] == 0)
                continue;
            gain[su] += wg.ew[si];
            if (!in_frontier[su]) {
                in_frontier[su] = true;
                frontier.push_back(u);
            }
        }
    };

    add(static_cast<Index>(rng.below(
        static_cast<std::uint64_t>(wg.n))));
    while (grown < target) {
        // Pick the frontier vertex with max gain (linear scan: the
        // coarsest graph is small by construction).
        Index best = -1;
        double best_gain = -1.0;
        std::size_t best_pos = 0;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const Index v = frontier[i];
            const auto sv = static_cast<std::size_t>(v);
            if (side[sv] == 0)
                continue;
            if (gain[sv] > best_gain) {
                best_gain = gain[sv];
                best = v;
                best_pos = i;
            }
        }
        if (best < 0) {
            // Disconnected remainder: seed a new region.
            Index fallback = -1;
            for (Index v = 0; v < wg.n; ++v) {
                if (side[static_cast<std::size_t>(v)] == 1) {
                    fallback = v;
                    break;
                }
            }
            if (fallback < 0)
                break;
            add(fallback);
            continue;
        }
        frontier[best_pos] = frontier.back();
        frontier.pop_back();
        in_frontier[static_cast<std::size_t>(best)] = false;
        add(best);
    }
    return side;
}

/**
 * FM-style boundary refinement: greedy positive-gain moves under a
 * balance constraint, several passes.
 */
void
refineBisection(const WGraph &wg, std::vector<std::uint8_t> *side,
                double target_fraction, double imbalance, int passes,
                Rng &rng)
{
    const double total = static_cast<double>(wg.totalWeight());
    const double max0 = target_fraction * total * imbalance;
    const double max1 = (1.0 - target_fraction) * total * imbalance;

    // external/internal connection weight per vertex.
    std::vector<double> ext(static_cast<std::size_t>(wg.n), 0.0);
    std::vector<double> internal(static_cast<std::size_t>(wg.n), 0.0);
    double weight0 = 0.0;
    for (Index v = 0; v < wg.n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if ((*side)[sv] == 0)
            weight0 += wg.vw[sv];
        for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1]; ++i) {
            const auto si = static_cast<std::size_t>(i);
            if ((*side)[static_cast<std::size_t>(wg.adj[si])] ==
                (*side)[sv]) {
                internal[sv] += wg.ew[si];
            } else {
                ext[sv] += wg.ew[si];
            }
        }
    }

    // Rebalance first: recursive bisection and greedy growing can leave
    // a side over its bound; force the cheapest moves off the heavy
    // side (approximate: gains are not re-evaluated during the sweep).
    auto rebalance = [&](std::uint8_t heavy, double limit,
                         bool heavy_is_zero) {
        double heavy_weight = heavy_is_zero ? weight0
                                            : total - weight0;
        if (heavy_weight <= limit)
            return;
        std::vector<Index> candidates;
        for (Index v = 0; v < wg.n; ++v) {
            if ((*side)[static_cast<std::size_t>(v)] == heavy)
                candidates.push_back(v);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
            [&](Index a, Index b) {
                const auto sa = static_cast<std::size_t>(a);
                const auto sb = static_cast<std::size_t>(b);
                return ext[sa] - internal[sa] >
                       ext[sb] - internal[sb];
            });
        for (Index v : candidates) {
            if (heavy_weight <= limit)
                break;
            const auto sv = static_cast<std::size_t>(v);
            (*side)[sv] = heavy == 0 ? 1 : 0;
            weight0 += heavy == 0 ? -wg.vw[sv] : wg.vw[sv];
            heavy_weight -= wg.vw[sv];
            std::swap(ext[sv], internal[sv]);
            for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1];
                 ++i) {
                const auto si = static_cast<std::size_t>(i);
                const auto su =
                    static_cast<std::size_t>(wg.adj[si]);
                if ((*side)[su] == (*side)[sv]) {
                    internal[su] += wg.ew[si];
                    ext[su] -= wg.ew[si];
                } else {
                    internal[su] -= wg.ew[si];
                    ext[su] += wg.ew[si];
                }
            }
        }
    };
    rebalance(0, max0, true);
    rebalance(1, max1, false);

    for (int pass = 0; pass < passes; ++pass) {
        bool moved = false;
        for (Index v : shuffledOrder(wg.n, rng)) {
            const auto sv = static_cast<std::size_t>(v);
            const double gain = ext[sv] - internal[sv];
            if (gain <= 0.0)
                continue;
            const bool to_zero = (*side)[sv] == 1;
            const double new_w0 =
                weight0 + (to_zero ? wg.vw[sv] : -wg.vw[sv]);
            if (new_w0 > max0 || total - new_w0 > max1)
                continue;
            // Move v; update neighbours incrementally.
            (*side)[sv] = to_zero ? 0 : 1;
            weight0 = new_w0;
            std::swap(ext[sv], internal[sv]);
            for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1];
                 ++i) {
                const auto si = static_cast<std::size_t>(i);
                const auto su =
                    static_cast<std::size_t>(wg.adj[si]);
                if ((*side)[su] == (*side)[sv]) {
                    internal[su] += wg.ew[si];
                    ext[su] -= wg.ew[si];
                } else {
                    internal[su] -= wg.ew[si];
                    ext[su] += wg.ew[si];
                }
            }
            moved = true;
        }
        if (!moved)
            break;
    }
}

/** Multilevel bisection of wg into sides {0,1}. */
std::vector<std::uint8_t>
bisect(const WGraph &wg, double target_fraction,
       const PartitionOptions &options, Rng &rng)
{
    if (wg.n <= options.coarsenTarget) {
        std::vector<std::uint8_t> side =
            growBisection(wg, target_fraction, rng);
        refineBisection(wg, &side, target_fraction, options.imbalance,
                        options.refinePasses, rng);
        return side;
    }

    std::vector<Index> coarse_id;
    const Index coarse_n = heavyEdgeMatching(wg, rng, &coarse_id);
    if (coarse_n >= wg.n) {
        // Matching made no progress (e.g. edgeless): bisect directly.
        std::vector<std::uint8_t> side =
            growBisection(wg, target_fraction, rng);
        refineBisection(wg, &side, target_fraction, options.imbalance,
                        options.refinePasses, rng);
        return side;
    }
    const WGraph coarse = contract(wg, coarse_id, coarse_n);
    const std::vector<std::uint8_t> coarse_side =
        bisect(coarse, target_fraction, options, rng);

    // Project and refine at this level.
    std::vector<std::uint8_t> side(static_cast<std::size_t>(wg.n));
    for (Index v = 0; v < wg.n; ++v) {
        side[static_cast<std::size_t>(v)] =
            coarse_side[static_cast<std::size_t>(
                coarse_id[static_cast<std::size_t>(v)])];
    }
    refineBisection(wg, &side, target_fraction, options.imbalance,
                    options.refinePasses, rng);
    return side;
}

/** Extract the sub-graph induced by `vertices` (order preserved). */
WGraph
inducedSubgraph(const WGraph &wg, const std::vector<Index> &vertices,
                std::vector<Index> *local_of)
{
    local_of->assign(static_cast<std::size_t>(wg.n), -1);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        (*local_of)[static_cast<std::size_t>(vertices[i])] =
            static_cast<Index>(i);
    }
    WGraph sub;
    sub.n = static_cast<Index>(vertices.size());
    sub.vw.resize(vertices.size());
    sub.offsets.assign(vertices.size() + 1, 0);
    // Count, then fill.
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        const auto sv = static_cast<std::size_t>(vertices[i]);
        sub.vw[i] = wg.vw[sv];
        Offset degree = 0;
        for (Offset e = wg.offsets[sv]; e < wg.offsets[sv + 1]; ++e) {
            if ((*local_of)[static_cast<std::size_t>(
                    wg.adj[static_cast<std::size_t>(e)])] >= 0) {
                ++degree;
            }
        }
        sub.offsets[i + 1] = sub.offsets[i] + degree;
    }
    sub.adj.resize(static_cast<std::size_t>(sub.offsets.back()));
    sub.ew.resize(sub.adj.size());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        const auto sv = static_cast<std::size_t>(vertices[i]);
        auto pos = static_cast<std::size_t>(sub.offsets[i]);
        for (Offset e = wg.offsets[sv]; e < wg.offsets[sv + 1]; ++e) {
            const auto se = static_cast<std::size_t>(e);
            const Index local =
                (*local_of)[static_cast<std::size_t>(wg.adj[se])];
            if (local >= 0) {
                sub.adj[pos] = local;
                sub.ew[pos] = wg.ew[se];
                ++pos;
            }
        }
    }
    return sub;
}

/** Recursively split `vertices` of wg into `parts` parts. */
void
recursiveBisect(const WGraph &wg, const std::vector<Index> &vertices,
                Index parts, Index first_part,
                const PartitionOptions &options, Rng &rng,
                std::vector<Index> *assignment)
{
    if (parts <= 1 || vertices.size() <= 1) {
        for (Index v : vertices)
            (*assignment)[static_cast<std::size_t>(v)] = first_part;
        return;
    }
    const Index left_parts = (parts + 1) / 2;
    const double target_fraction =
        static_cast<double>(left_parts) / static_cast<double>(parts);

    std::vector<Index> local_of;
    const WGraph sub = inducedSubgraph(wg, vertices, &local_of);
    const std::vector<std::uint8_t> side =
        bisect(sub, target_fraction, options, rng);

    std::vector<Index> left, right;
    for (std::size_t i = 0; i < vertices.size(); ++i)
        (side[i] == 0 ? left : right).push_back(vertices[i]);
    // Degenerate splits (everything on one side) still terminate:
    // steal one vertex if needed.
    if (left.empty() && !right.empty()) {
        left.push_back(right.back());
        right.pop_back();
    } else if (right.empty() && !left.empty()) {
        right.push_back(left.back());
        left.pop_back();
    }
    recursiveBisect(wg, left, left_parts, first_part, options, rng,
                    assignment);
    recursiveBisect(wg, right, parts - left_parts,
                    first_part + left_parts, options, rng, assignment);
}

} // namespace

Offset
cutOf(const Csr &graph, const std::vector<Index> &assignment)
{
    require(assignment.size() ==
                static_cast<std::size_t>(graph.numRows()),
            "cutOf: assignment size mismatch");
    Offset cut2 = 0;
    for (Index v = 0; v < graph.numRows(); ++v) {
        for (Index u : graph.rowIndices(v)) {
            if (assignment[static_cast<std::size_t>(v)] !=
                assignment[static_cast<std::size_t>(u)]) {
                ++cut2;
            }
        }
    }
    return cut2 / 2; // symmetric pattern stores each edge twice
}

PartitionResult
partitionGraph(const Csr &graph, const PartitionOptions &options)
{
    require(graph.isSquare(), "partitionGraph: graph must be square");
    require(options.numParts >= 1,
            "partitionGraph: need at least one part");
    require(options.imbalance >= 1.0,
            "partitionGraph: imbalance must be >= 1.0");

    const Csr sym = graph.isSymmetricPattern() ? graph
                                               : graph.symmetrized();
    const WGraph wg = fromCsr(sym);
    Rng rng(options.seed);

    PartitionResult result;
    result.parts = options.numParts;
    result.assignment.assign(static_cast<std::size_t>(wg.n), 0);
    std::vector<Index> all(static_cast<std::size_t>(wg.n));
    std::iota(all.begin(), all.end(), Index{0});
    recursiveBisect(wg, all, options.numParts, 0, options, rng,
                    &result.assignment);
    result.cutEdges = cutOf(sym, result.assignment);
    return result;
}

Permutation
partitionOrder(const Csr &matrix, const PartitionOptions &options)
{
    const PartitionResult result = partitionGraph(matrix, options);
    std::vector<Index> order(
        static_cast<std::size_t>(matrix.numRows()));
    std::iota(order.begin(), order.end(), Index{0});
    std::stable_sort(order.begin(), order.end(),
        [&result](Index a, Index b) {
            return result.assignment[static_cast<std::size_t>(a)] <
                   result.assignment[static_cast<std::size_t>(b)];
        });
    return Permutation::fromNewToOld(order);
}

} // namespace slo::partition
