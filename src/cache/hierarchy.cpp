#include "cache/hierarchy.hpp"

namespace slo::cache
{

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels)
{
    require(!levels.empty(), "CacheHierarchy: need at least one level");
    for (std::size_t i = 0; i < levels.size(); ++i) {
        levels[i].validate();
        if (i > 0) {
            require(levels[i].capacityBytes >=
                        levels[i - 1].capacityBytes,
                    "CacheHierarchy: capacities must be "
                    "non-decreasing outward");
        }
        levels_.emplace_back(levels[i]);
    }
}

std::size_t
CacheHierarchy::access(std::uint64_t addr)
{
    // Probe inward-out; CacheSim::access fills on miss, which is
    // exactly the inclusive fill-on-the-way-back behaviour.
    for (std::size_t level = 0; level < levels_.size(); ++level) {
        if (levels_[level].access(addr)) {
            // Hit at `level`; inner levels were already filled by
            // their misses above.
            return level;
        }
    }
    return levels_.size();
}

void
CacheHierarchy::finish()
{
    for (CacheSim &level : levels_)
        level.finish();
}

const CacheStats &
CacheHierarchy::levelStats(std::size_t level) const
{
    require(level < levels_.size(),
            "CacheHierarchy: level out of range");
    return levels_[level].stats();
}

std::uint64_t
CacheHierarchy::dramTrafficBytes() const
{
    return levels_.back().stats().fillBytes;
}

} // namespace slo::cache
