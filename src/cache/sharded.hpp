/**
 * @file
 * Set-sharded LRU cache simulation on the slo::par runtime.
 *
 * A set-associative LRU cache is a collection of completely independent
 * sets: an access only ever reads or writes the state of the one set
 * its line maps to. ShardedCacheSim exploits that by partitioning the
 * set space into contiguous ranges, one CacheSim shard per range, and
 * replaying each incoming batch on all shards concurrently — every
 * shard consumes exactly the subsequence of the batch that maps into
 * its sets, in batch order.
 *
 * Determinism: per-set state evolves identically to a serial replay
 * (each set sees the same access subsequence in the same order), every
 * CacheStats counter is a sum over sets, and finish() merges shard
 * counters in fixed shard order — so the final stats are bit-identical
 * to a single CacheSim at ANY shard count and ANY SLO_THREADS value,
 * enforced by the qc property suite (tests/qc/sharded_cache_props).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "par/thread_pool.hpp"

namespace slo::cache
{

/** LRU cache simulation split over per-set-range shards. */
class ShardedCacheSim
{
  public:
    /**
     * @param num_shards shard count; <= 0 picks the pool's thread
     *        count (clamped to the set count). The shard count never
     *        affects the simulated stats, only the parallelism.
     * @param pool pool to replay batches on; nullptr =
     *        par::ThreadPool::global().
     */
    explicit ShardedCacheSim(const CacheConfig &config,
                             int num_shards = 0,
                             par::ThreadPool *pool = nullptr);

    /** Forwarded to every shard (misses split by shard afterwards). */
    void setIrregularRegion(std::uint64_t lo, std::uint64_t hi);

    /**
     * Replay @p count addresses in order. Routing is computed once on
     * the calling thread; shards then replay their subsequences
     * concurrently. Blocks until the whole batch is consumed.
     */
    void accessBatch(const std::uint64_t *addrs, std::size_t count);

    /**
     * Finish every shard (invariant checks + dead-line accounting) and
     * merge the counters in shard order. Call exactly once.
     */
    void finish();

    /** Merged stats; only meaningful after finish(). */
    const CacheStats &stats() const { return stats_; }

    int numShards() const { return static_cast<int>(shards_.size()); }
    const CacheConfig &config() const { return config_; }

  private:
    CacheConfig config_;
    SetIndexer indexer_;
    std::uint32_t lineShift_ = 0;
    par::ThreadPool *pool_ = nullptr;
    std::vector<CacheSim> shards_;
    /** set -> owning shard id (numSets entries). */
    std::vector<std::uint8_t> shardOfSet_;
    /** Per-batch routing bytes, reused across batches. */
    std::vector<std::uint8_t> routing_;
    CacheStats stats_;
    bool finished_ = false;
};

} // namespace slo::cache
