#include "cache/sharded.hpp"

#include <algorithm>
#include <bit>

#include "check/check.hpp"
#include "par/parallel.hpp"

namespace slo::cache
{

namespace
{

/** Routing bytes cap the shard count (one uint8 per access). */
constexpr int kMaxShards = 64;

} // namespace

ShardedCacheSim::ShardedCacheSim(const CacheConfig &config,
                                 int num_shards, par::ThreadPool *pool)
    : config_(config),
      pool_(pool != nullptr ? pool : &par::ThreadPool::global())
{
    config_.validate();
    indexer_ = SetIndexer(config_.numSets());
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    const std::uint64_t num_sets = config_.numSets();
    std::uint64_t shards =
        num_shards > 0 ? static_cast<std::uint64_t>(num_shards)
                       : static_cast<std::uint64_t>(
                             pool_->numThreads());
    // Every shard scans the whole batch to pick out its accesses, so
    // shards beyond the physical core count only multiply that scan —
    // clamp to the hardware unless the caller pinned a count (results
    // are identical for any shard count; see the qc properties).
    if (num_shards <= 0) {
        shards = std::min<std::uint64_t>(
            shards,
            static_cast<std::uint64_t>(par::hardwareThreads()));
    }
    shards = std::clamp<std::uint64_t>(shards, 1, kMaxShards);
    shards = std::min(shards, num_sets);

    shards_.reserve(static_cast<std::size_t>(shards));
    shardOfSet_.resize(static_cast<std::size_t>(num_sets));
    for (std::uint64_t s = 0; s < shards; ++s) {
        // Even contiguous partition; bounds depend only on the shard
        // count, never on the thread count or the batch contents.
        const std::uint64_t begin = s * num_sets / shards;
        const std::uint64_t end = (s + 1) * num_sets / shards;
        shards_.emplace_back(config_, begin, end - begin);
        std::fill(shardOfSet_.begin() +
                      static_cast<std::ptrdiff_t>(begin),
                  shardOfSet_.begin() + static_cast<std::ptrdiff_t>(end),
                  static_cast<std::uint8_t>(s));
    }
}

void
ShardedCacheSim::setIrregularRegion(std::uint64_t lo, std::uint64_t hi)
{
    for (CacheSim &shard : shards_)
        shard.setIrregularRegion(lo, hi);
}

void
ShardedCacheSim::accessBatch(const std::uint64_t *addrs,
                             std::size_t count)
{
    if (count == 0)
        return;
    if (shards_.size() == 1) {
        shards_[0].accessBatch(addrs, count);
        return;
    }
    routing_.resize(count);
    const std::uint8_t *const shard_of_set = shardOfSet_.data();
    for (std::size_t i = 0; i < count; ++i) {
        routing_[i] = shard_of_set[static_cast<std::size_t>(
            indexer_.setOf(addrs[i] >> lineShift_))];
    }
    par::parallelFor(
        std::size_t{0}, shards_.size(),
        [&](std::size_t s) {
            shards_[s].accessRouted(addrs, routing_.data(), count,
                                    static_cast<std::uint8_t>(s));
        },
        {.grain = 1, .pool = pool_});
}

void
ShardedCacheSim::finish()
{
    require(!finished_, "ShardedCacheSim::finish: called twice");
    finished_ = true;
    // Shard order is fixed, so the merged counters are reproducible;
    // they are sums of disjoint per-set contributions either way.
    for (CacheSim &shard : shards_) {
        shard.finish();
        stats_.accumulate(shard.stats());
    }
}

} // namespace slo::cache
