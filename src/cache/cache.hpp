/**
 * @file
 * Set-associative cache simulator.
 *
 * Models the GPU's L2 (the only cache level that matters for DRAM
 * traffic; the paper's own validation methodology, Sec. VI-B). The
 * simulator is replacement-policy-generic at the stats level: this file
 * provides the LRU implementation, belady.hpp the oracular OPT policy
 * used for the headroom analysis of Fig. 8.
 *
 * Semantics: every access is treated uniformly as a fill-on-miss read of
 * one cache line; DRAM traffic is misses * lineBytes. With perfect reuse
 * every array's lines are fetched exactly once, which makes simulated
 * traffic equal the paper's compulsory-traffic formula by construction
 * (write-back accounting for Y would double-count the "move each array
 * once" budget; see DESIGN.md).
 *
 * Dead lines (Table III): a line is dead if it is evicted — or still
 * resident when the run ends — without ever being hit after its fill.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "matrix/types.hpp"

namespace slo::cache
{

/** Geometry of a simulated cache. */
struct CacheConfig
{
    std::uint64_t capacityBytes = 6ULL * 1024 * 1024; ///< A6000 L2
    std::uint32_t lineBytes = 32;  ///< GPU sector granularity
    std::uint32_t ways = 16;

    /**
     * Sectored-cache mode: tags cover lineBytes but fills happen per
     * sector of this many bytes (the real A6000 L2 is 128B lines with
     * 32B sectors). 0 = unsectored (fills whole lines).
     */
    std::uint32_t sectorBytes = 0;

    std::uint64_t
    numLines() const
    {
        return capacityBytes / lineBytes;
    }

    std::uint64_t
    numSets() const
    {
        return numLines() / ways;
    }

    /** @throws std::invalid_argument unless the geometry is coherent. */
    void validate() const;
};

/** Counters accumulated by a simulation run. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t linesFilled = 0;     ///< == misses
    std::uint64_t deadLines = 0;       ///< filled but never re-hit
    /** Misses whose address falls in the configured irregular region. */
    std::uint64_t irregularMisses = 0;
    /** Bytes actually filled from DRAM (sector- or line-granular). */
    std::uint64_t fillBytes = 0;
    /** Fill bytes for misses inside the irregular region. */
    std::uint64_t irregularFillBytes = 0;

    double
    hitRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(accesses);
    }

    double
    deadLineFraction() const
    {
        return linesFilled == 0
                   ? 0.0
                   : static_cast<double>(deadLines) /
                         static_cast<double>(linesFilled);
    }

    /** DRAM read traffic in bytes for a cache with @p line_bytes lines. */
    std::uint64_t
    trafficBytes(std::uint32_t line_bytes) const
    {
        return misses * line_bytes;
    }
};

/** LRU set-associative cache. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);

    /**
     * Mark [lo, hi) as the irregularly-accessed region; misses inside it
     * are counted separately (stats().irregularMisses) so the
     * performance model can de-rate their bandwidth.
     */
    void
    setIrregularRegion(std::uint64_t lo, std::uint64_t hi)
    {
        irregularLo_ = lo;
        irregularHi_ = hi;
    }

    /**
     * Access one byte address; the whole enclosing line is filled on a
     * miss. @return true on hit.
     */
    bool access(std::uint64_t addr);

    /**
     * Finish the run: counts still-resident never-rehit lines as dead.
     * Must be called exactly once, after the last access.
     * Runs checkInvariants() before flushing counters.
     */
    void finish();

    /**
     * Validate simulator state against the cache-consistency contract
     * (gated on SLO_CHECK_LEVEL).
     * cheap: counter coherence — hits + misses == accesses,
     *        linesFilled <= misses, evictions <= linesFilled,
     *        deadLines <= linesFilled, fill bytes match the fill
     *        granularity.
     * full:  per-set structural state — resident tags map to their set,
     *        no duplicate tags within a set, LRU timestamps unique
     *        among a set's valid ways and bounded by the access clock,
     *        sector masks only set in sectored mode.
     * @throws check::ContractViolation on the first violated invariant.
     */
    void checkInvariants() const;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Way
    {
        std::uint64_t tag = kInvalid;
        std::uint64_t lastUse = 0;
        std::uint32_t sectorMask = 0; ///< valid sectors (sectored mode)
        bool reused = false;
    };

    static constexpr std::uint64_t kInvalid = ~0ULL;

    CacheConfig config_;
    std::uint64_t irregularLo_ = 1;
    std::uint64_t irregularHi_ = 0;
    std::uint64_t numSets_ = 1;
    std::uint32_t lineShift_ = 0;
    std::uint32_t sectorShift_ = 0; ///< 0 in unsectored mode
    std::uint64_t clock_ = 0;
    bool finished_ = false;
    std::vector<Way> ways_; ///< numSets * ways, set-major
    CacheStats stats_;
};

} // namespace slo::cache
