/**
 * @file
 * Set-associative cache simulator.
 *
 * Models the GPU's L2 (the only cache level that matters for DRAM
 * traffic; the paper's own validation methodology, Sec. VI-B). The
 * simulator is replacement-policy-generic at the stats level: this file
 * provides the LRU implementation, belady.hpp the oracular OPT policy
 * used for the headroom analysis of Fig. 8.
 *
 * Semantics: every access is treated uniformly as a fill-on-miss read of
 * one cache line; DRAM traffic is misses * lineBytes. With perfect reuse
 * every array's lines are fetched exactly once, which makes simulated
 * traffic equal the paper's compulsory-traffic formula by construction
 * (write-back accounting for Y would double-count the "move each array
 * once" budget; see DESIGN.md).
 *
 * Dead lines (Table III): a line is dead if it is evicted — or still
 * resident when the run ends — without ever being hit after its fill.
 *
 * Hot path: state is stored as compact per-field arrays (tags, LRU
 * ages, sector masks) instead of an array of way structs, the set index
 * is computed without a hardware divide (mask for power-of-two set
 * counts, a Lemire multiply-shift reduction otherwise), and consumers
 * feed addresses through accessBatch() so the per-access work inlines
 * into one tight loop. A CacheSim can also be restricted to a set
 * range, which is how sharded.hpp parallelizes one simulation across
 * disjoint set partitions without changing any counter.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "matrix/types.hpp"

namespace slo::cache
{

/** Geometry of a simulated cache. */
struct CacheConfig
{
    std::uint64_t capacityBytes = 6ULL * 1024 * 1024; ///< A6000 L2
    std::uint32_t lineBytes = 32;  ///< GPU sector granularity
    std::uint32_t ways = 16;

    /**
     * Sectored-cache mode: tags cover lineBytes but fills happen per
     * sector of this many bytes (the real A6000 L2 is 128B lines with
     * 32B sectors). 0 = unsectored (fills whole lines).
     */
    std::uint32_t sectorBytes = 0;

    std::uint64_t
    numLines() const
    {
        return capacityBytes / lineBytes;
    }

    std::uint64_t
    numSets() const
    {
        return numLines() / ways;
    }

    /** @throws std::invalid_argument unless the geometry is coherent. */
    void validate() const;
};

/** Counters accumulated by a simulation run. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t linesFilled = 0;     ///< == misses
    std::uint64_t deadLines = 0;       ///< filled but never re-hit
    /** Misses whose address falls in the configured irregular region. */
    std::uint64_t irregularMisses = 0;
    /** Bytes actually filled from DRAM (sector- or line-granular). */
    std::uint64_t fillBytes = 0;
    /** Fill bytes for misses inside the irregular region. */
    std::uint64_t irregularFillBytes = 0;

    /** Fold @p other into this block (shard merging; all additive). */
    void
    accumulate(const CacheStats &other)
    {
        accesses += other.accesses;
        hits += other.hits;
        misses += other.misses;
        evictions += other.evictions;
        linesFilled += other.linesFilled;
        deadLines += other.deadLines;
        irregularMisses += other.irregularMisses;
        fillBytes += other.fillBytes;
        irregularFillBytes += other.irregularFillBytes;
    }

    double
    hitRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(accesses);
    }

    double
    deadLineFraction() const
    {
        return linesFilled == 0
                   ? 0.0
                   : static_cast<double>(deadLines) /
                         static_cast<double>(linesFilled);
    }

    /** DRAM read traffic in bytes for a cache with @p line_bytes lines. */
    std::uint64_t
    trafficBytes(std::uint32_t line_bytes) const
    {
        return misses * line_bytes;
    }
};

/**
 * line -> set mapping without a per-access divide: a mask when the set
 * count is a power of two, otherwise Lemire's multiply-shift modulus
 * for 32-bit line numbers (every layout this library builds stays well
 * below 2^32 lines) with a plain % fallback above that.
 */
class SetIndexer
{
  public:
    SetIndexer() = default;

    explicit SetIndexer(std::uint64_t num_sets) : numSets_(num_sets)
    {
        pow2_ = (num_sets & (num_sets - 1)) == 0;
        mask_ = num_sets - 1;
        if (num_sets > 1)
            fastmodM_ = ~0ULL / num_sets + 1;
    }

    std::uint64_t numSets() const { return numSets_; }

    std::uint64_t
    setOf(std::uint64_t line) const
    {
        if (pow2_)
            return line & mask_;
#if defined(__SIZEOF_INT128__)
        if (line <= 0xFFFFFFFFULL && numSets_ <= 0xFFFFFFFFULL) {
            const std::uint64_t low = fastmodM_ * line;
            return static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(low) * numSets_) >> 64);
        }
#endif
        return line % numSets_;
    }

  private:
    std::uint64_t numSets_ = 1;
    std::uint64_t mask_ = 0;
    std::uint64_t fastmodM_ = 0;
    bool pow2_ = true;
};

/**
 * LRU set-associative cache.
 *
 * The default constructor simulates the whole cache; the set-range
 * constructor restricts the instance to sets [setBegin, setBegin +
 * setCount) so independent shards can split one simulation (LRU state
 * never crosses a set boundary). A set-range instance must only ever
 * see addresses mapping into its range.
 */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);

    /** Shard over sets [set_begin, set_begin + set_count). */
    CacheSim(const CacheConfig &config, std::uint64_t set_begin,
             std::uint64_t set_count);

    /**
     * Mark [lo, hi) as the irregularly-accessed region; misses inside it
     * are counted separately (stats().irregularMisses) so the
     * performance model can de-rate their bandwidth.
     */
    void
    setIrregularRegion(std::uint64_t lo, std::uint64_t hi)
    {
        irregularLo_ = lo;
        irregularHi_ = hi;
    }

    /**
     * Access one byte address; the whole enclosing line is filled on a
     * miss. @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Replay @p count addresses in order (the batched hot path). */
    void accessBatch(const std::uint64_t *addrs, std::size_t count);

    /**
     * Replay only the addresses whose routing byte matches @p own:
     * `addrs[i]` is consumed iff `shard_ids[i] == own`. Order among the
     * consumed addresses is preserved, which is all per-set LRU state
     * can observe. Used by ShardedCacheSim.
     */
    void accessRouted(const std::uint64_t *addrs,
                      const std::uint8_t *shard_ids, std::size_t count,
                      std::uint8_t own);

    /**
     * Finish the run: counts still-resident never-rehit lines as dead.
     * Must be called exactly once, after the last access.
     * Runs checkInvariants() before flushing counters.
     */
    void finish();

    /**
     * Validate simulator state against the cache-consistency contract
     * (gated on SLO_CHECK_LEVEL).
     * cheap: counter coherence — hits + misses == accesses,
     *        linesFilled <= misses, evictions <= linesFilled,
     *        deadLines <= linesFilled, fill bytes match the fill
     *        granularity.
     * full:  per-set structural state — resident tags map to their set,
     *        no duplicate tags within a set, LRU timestamps unique
     *        among a set's valid ways and bounded by the access clock,
     *        sector masks only set in sectored mode.
     * @throws check::ContractViolation on the first violated invariant.
     */
    void checkInvariants() const;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    std::uint64_t setBegin() const { return setBegin_; }
    std::uint64_t setCount() const { return setCount_; }

  private:
    static constexpr std::uint64_t kInvalid = ~0ULL;

    /**
     * Batched core; @p shard_ids/@p own only read when Routed.
     * StaticWays != 0 bakes the associativity into the instantiation
     * (way-scan loops fully unroll); 0 reads config_.ways at runtime.
     */
    template <bool Routed, std::uint32_t StaticWays>
    void accessLoop(const std::uint64_t *addrs,
                    const std::uint8_t *shard_ids, std::size_t count,
                    std::uint8_t own);

    CacheConfig config_;
    SetIndexer indexer_;
    std::uint64_t irregularLo_ = 1;
    std::uint64_t irregularHi_ = 0;
    std::uint64_t setBegin_ = 0;
    std::uint64_t setCount_ = 1;
    std::uint32_t lineShift_ = 0;
    std::uint32_t sectorShift_ = 0;
    std::uint32_t sectorIndexMask_ = 0; ///< sectorsPerLine - 1
    std::uint32_t fillBytes_ = 0; ///< bytes per fill (sector or line)
    bool sectored_ = false;
    std::uint64_t clock_ = 0;
    bool finished_ = false;
    /** Way state, set-major compact arrays (setCount * ways each). */
    std::vector<std::uint64_t> tags_;     ///< kInvalid = empty way
    std::vector<std::uint64_t> lastUse_;  ///< 0 = empty way
    std::vector<std::uint32_t> sectorMasks_;
    std::vector<std::uint8_t> reused_;
    /**
     * Most-recently-touched way per set — a search accelerator only
     * (one probe usually resolves streaming re-accesses without the
     * full way scan); never consulted for replacement, so simulated
     * results are independent of it.
     */
    std::vector<std::uint8_t> mruWay_;
    CacheStats stats_;
};

} // namespace slo::cache
