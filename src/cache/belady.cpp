#include "cache/belady.hpp"

#include <bit>
#include <limits>
#include <unordered_map>

namespace slo::cache
{

CacheStats
simulateBelady(const std::vector<std::uint64_t> &trace,
               const CacheConfig &config, std::uint64_t irregular_lo,
               std::uint64_t irregular_hi)
{
    config.validate();
    require(config.sectorBytes == 0,
            "simulateBelady: sectored mode is not supported");
    const auto line_shift = static_cast<std::uint32_t>(
        std::countr_zero(config.lineBytes));
    const std::uint64_t num_sets = config.numSets();
    constexpr std::uint64_t kNever =
        std::numeric_limits<std::uint64_t>::max();
    constexpr std::uint64_t kInvalid = ~0ULL;

    // next_use[i] = index of the next access to the same line, or kNever.
    std::vector<std::uint64_t> next_use(trace.size());
    {
        std::unordered_map<std::uint64_t, std::uint64_t> last_seen;
        last_seen.reserve(trace.size() / 4 + 1);
        for (std::size_t i = trace.size(); i-- > 0;) {
            const std::uint64_t line = trace[i] >> line_shift;
            const auto it = last_seen.find(line);
            next_use[i] = (it == last_seen.end()) ? kNever : it->second;
            last_seen[line] = i;
        }
    }

    struct Way
    {
        std::uint64_t tag = kInvalid;
        std::uint64_t nextUse = kNever;
        bool reused = false;
    };
    std::vector<Way> ways(static_cast<std::size_t>(config.numSets()) *
                          config.ways);

    CacheStats stats;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint64_t line = trace[i] >> line_shift;
        const std::uint64_t set = line % num_sets;
        Way *const base =
            ways.data() + static_cast<std::size_t>(set) * config.ways;
        ++stats.accesses;

        Way *victim = base;
        bool hit = false;
        for (std::uint32_t w = 0; w < config.ways; ++w) {
            Way &way = base[w];
            if (way.tag == line) {
                way.nextUse = next_use[i];
                way.reused = true;
                ++stats.hits;
                hit = true;
                break;
            }
            if (way.tag == kInvalid) {
                if (victim->tag != kInvalid)
                    victim = &way;
            } else if (victim->tag != kInvalid &&
                       way.nextUse > victim->nextUse) {
                victim = &way;
            }
        }
        if (hit)
            continue;

        ++stats.misses;
        ++stats.linesFilled;
        stats.fillBytes += config.lineBytes;
        if (trace[i] >= irregular_lo && trace[i] < irregular_hi) {
            ++stats.irregularMisses;
            stats.irregularFillBytes += config.lineBytes;
        }
        // OPT refinement: if the incoming line's next use is further out
        // than every resident line's, the best decision is to not let it
        // displace useful data (cache bypass, which OPT subsumes).
        if (victim->tag != kInvalid && victim->nextUse < next_use[i]) {
            if (next_use[i] == kNever)
                ++stats.deadLines; // bypassed line is never reused
            continue;
        }
        if (victim->tag != kInvalid) {
            ++stats.evictions;
            if (!victim->reused)
                ++stats.deadLines;
        }
        victim->tag = line;
        victim->nextUse = next_use[i];
        victim->reused = false;
    }

    for (const Way &way : ways) {
        if (way.tag != kInvalid && !way.reused)
            ++stats.deadLines;
    }
    return stats;
}

} // namespace slo::cache
