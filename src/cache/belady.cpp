#include "cache/belady.hpp"

#include <bit>

namespace slo::cache
{

BeladySim::BeladySim(const CacheConfig &config,
                     std::uint64_t irregular_lo,
                     std::uint64_t irregular_hi)
    : config_(config), irregularLo_(irregular_lo),
      irregularHi_(irregular_hi)
{
    config_.validate();
    require(config_.sectorBytes == 0,
            "BeladySim: sectored mode is not supported");
    indexer_ = SetIndexer(config_.numSets());
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    const auto slots =
        static_cast<std::size_t>(config_.numSets()) * config_.ways;
    tags_.assign(slots, kInvalid);
    nextUse_.assign(slots, kNever);
    reused_.assign(slots, 0);
}

void
BeladySim::access(std::uint64_t addr, std::uint64_t next_use)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::size_t base =
        static_cast<std::size_t>(indexer_.setOf(line)) * config_.ways;
    const std::uint32_t ways = config_.ways;
    ++stats_.accesses;

    const std::uint64_t *const tags = tags_.data() + base;
    std::uint32_t w = 0;
    while (w < ways && tags[w] != line)
        ++w;
    if (w < ways) {
        nextUse_[base + w] = next_use;
        reused_[base + w] = 1;
        ++stats_.hits;
        return;
    }

    ++stats_.misses;
    ++stats_.linesFilled;
    stats_.fillBytes += config_.lineBytes;
    if (addr >= irregularLo_ && addr < irregularHi_) {
        ++stats_.irregularMisses;
        stats_.irregularFillBytes += config_.lineBytes;
    }

    // Victim: the first empty way, else the resident line whose next
    // use is furthest out (ties keep the lowest way index).
    std::size_t victim = base;
    for (std::uint32_t i = 0; i < ways; ++i) {
        const std::size_t slot = base + i;
        if (tags_[slot] == kInvalid) {
            if (tags_[victim] != kInvalid)
                victim = slot;
        } else if (tags_[victim] != kInvalid &&
                   nextUse_[slot] > nextUse_[victim]) {
            victim = slot;
        }
    }
    // OPT refinement: if the incoming line's next use is further out
    // than every resident line's, the best decision is to not let it
    // displace useful data (cache bypass, which OPT subsumes).
    if (tags_[victim] != kInvalid && nextUse_[victim] < next_use) {
        if (next_use == kNever)
            ++stats_.deadLines; // bypassed line is never reused
        return;
    }
    if (tags_[victim] != kInvalid) {
        ++stats_.evictions;
        if (reused_[victim] == 0)
            ++stats_.deadLines;
    }
    tags_[victim] = line;
    nextUse_[victim] = next_use;
    reused_[victim] = 0;
}

void
BeladySim::finish()
{
    require(!finished_, "BeladySim::finish: called twice");
    finished_ = true;
    for (std::size_t slot = 0; slot < tags_.size(); ++slot) {
        if (tags_[slot] != kInvalid && reused_[slot] == 0)
            ++stats_.deadLines;
    }
}

NextUseRecorder::NextUseRecorder(const CacheConfig &config,
                                 std::uint64_t reserve_hint)
{
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config.lineBytes));
    nextDelta_.reserve(static_cast<std::size_t>(reserve_hint));
    lastSeen_.reserve(static_cast<std::size_t>(reserve_hint / 4 + 1));
}

void
NextUseRecorder::push(std::uint64_t addr)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint64_t index = nextDelta_.size();
    require(index < kNeverDelta,
            "NextUseRecorder: streams of 2^32-1+ accesses are not "
            "supported");
    nextDelta_.push_back(kNeverDelta);
    const auto [it, inserted] = lastSeen_.try_emplace(line, index);
    if (!inserted) {
        // The delta fits: both indices are < 2^32 - 1.
        nextDelta_[static_cast<std::size_t>(it->second)] =
            static_cast<std::uint32_t>(index - it->second);
        it->second = index;
    }
}

CacheStats
simulateBelady(const std::vector<std::uint64_t> &trace,
               const CacheConfig &config, std::uint64_t irregular_lo,
               std::uint64_t irregular_hi)
{
    return simulateBeladyStreamed(
        config, irregular_lo, irregular_hi, trace.size(),
        [&trace](auto &&sink) {
            for (const std::uint64_t addr : trace)
                sink(addr);
        });
}

} // namespace slo::cache
