/**
 * @file
 * Multi-level cache hierarchy simulator.
 *
 * RABBIT was designed to map *hierarchical* communities onto the
 * multi-level caches of server-class CPUs (paper Sec. V-A recounting
 * Arai et al.): innermost communities into the small L1/L2, looser
 * super-communities into the L3. The GPU experiments only need the
 * single L2 model in cache.hpp; this hierarchy model backs the
 * ext_cpu_hierarchy bench that checks the multi-level claim.
 *
 * Semantics: inclusive hierarchy; an access probes L1 first and walks
 * outward until it hits (or misses everywhere = DRAM access); the line
 * is then filled into every level it missed in. Per-level stats follow
 * CacheSim's conventions; DRAM traffic is the last level's fill bytes.
 */

#pragma once

#include <vector>

#include "cache/cache.hpp"

namespace slo::cache
{

/** A stack of cache levels, L1 first (smallest). */
class CacheHierarchy
{
  public:
    /**
     * @param levels geometries from L1 outward; capacities must be
     *        non-decreasing
     */
    explicit CacheHierarchy(std::vector<CacheConfig> levels);

    std::size_t numLevels() const { return levels_.size(); }

    /**
     * Access one byte address.
     * @return the level index that hit (0 = L1), or numLevels() for a
     *         DRAM access.
     */
    std::size_t access(std::uint64_t addr);

    /** Finish all levels (dead-line accounting). */
    void finish();

    /** Stats of level @p level (0 = L1). */
    const CacheStats &levelStats(std::size_t level) const;

    /** Bytes fetched from DRAM (the outermost level's fills). */
    std::uint64_t dramTrafficBytes() const;

  private:
    std::vector<CacheSim> levels_;
};

} // namespace slo::cache
