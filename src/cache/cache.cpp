#include "cache/cache.hpp"

#include <bit>

#include "check/check.hpp"
#include "obs/metrics.hpp"

namespace slo::cache
{

void
CacheConfig::validate() const
{
    require(lineBytes > 0 && std::has_single_bit(lineBytes),
            "CacheConfig: lineBytes must be a power of two");
    require(ways > 0, "CacheConfig: ways must be positive");
    require(capacityBytes >= static_cast<std::uint64_t>(lineBytes) * ways,
            "CacheConfig: capacity smaller than one set");
    require(capacityBytes % (static_cast<std::uint64_t>(lineBytes) *
                             ways) == 0,
            "CacheConfig: capacity must be a multiple of lineBytes*ways");
    // Note: the set count need NOT be a power of two — the real A6000
    // L2 (6 MB, 16-way, 32 B sectors) has 12288 sets; indexing uses
    // modulo.
    if (sectorBytes != 0) {
        require(std::has_single_bit(sectorBytes),
                "CacheConfig: sectorBytes must be a power of two");
        require(sectorBytes < lineBytes &&
                    lineBytes / sectorBytes <= 32,
                "CacheConfig: need 2..32 sectors per line");
    }
}

CacheSim::CacheSim(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    numSets_ = config_.numSets();
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    if (config_.sectorBytes != 0) {
        sectorShift_ = static_cast<std::uint32_t>(
            std::countr_zero(config_.sectorBytes));
    }
    ways_.resize(static_cast<std::size_t>(config_.numSets()) *
                 config_.ways);
}

bool
CacheSim::access(std::uint64_t addr)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint64_t set = line % numSets_;
    const bool sectored = config_.sectorBytes != 0;
    const std::uint32_t sector_bit =
        sectored ? (1u << ((addr >> sectorShift_) &
                           ((config_.lineBytes >> sectorShift_) - 1)))
                 : 1u;
    const std::uint32_t fill_bytes =
        sectored ? config_.sectorBytes : config_.lineBytes;
    const bool irregular = addr >= irregularLo_ && addr < irregularHi_;

    Way *const base =
        ways_.data() + static_cast<std::size_t>(set) * config_.ways;
    ++stats_.accesses;
    ++clock_;

    Way *victim = base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Way &way = base[w];
        if (way.tag == line) {
            way.lastUse = clock_;
            if ((way.sectorMask & sector_bit) != 0) {
                way.reused = true;
                ++stats_.hits;
                return true;
            }
            // Sector miss on a resident line: fill one sector.
            way.sectorMask |= sector_bit;
            ++stats_.misses;
            stats_.fillBytes += fill_bytes;
            if (irregular) {
                ++stats_.irregularMisses;
                stats_.irregularFillBytes += fill_bytes;
            }
            return false;
        }
        if (way.tag == kInvalid) {
            // Prefer an empty way over evicting; an empty way can never
            // be "older" in LRU terms.
            if (victim->tag != kInvalid)
                victim = &way;
        } else if (victim->tag != kInvalid &&
                   way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    ++stats_.misses;
    ++stats_.linesFilled;
    stats_.fillBytes += fill_bytes;
    if (irregular) {
        ++stats_.irregularMisses;
        stats_.irregularFillBytes += fill_bytes;
    }
    if (victim->tag != kInvalid) {
        ++stats_.evictions;
        if (!victim->reused)
            ++stats_.deadLines;
    }
    victim->tag = line;
    victim->lastUse = clock_;
    victim->sectorMask = sector_bit;
    victim->reused = false;
    return false;
}

void
CacheSim::checkInvariants() const
{
    if (!check::enabled(check::Level::Cheap))
        return;
    check::Context ctx;
    ctx.add("accesses", stats_.accesses);
    ctx.add("hits", stats_.hits);
    ctx.add("misses", stats_.misses);
    SLO_CHECK_CTX(stats_.hits + stats_.misses == stats_.accesses,
                  "check.cache", ctx,
                  "hits + misses must equal accesses");
    SLO_CHECK_CTX(stats_.linesFilled <= stats_.misses, "check.cache",
                  ctx, "more lines filled than misses");
    SLO_CHECK_CTX(stats_.evictions <= stats_.linesFilled, "check.cache",
                  ctx, "more evictions than lines filled");
    const std::uint64_t fill_granularity =
        config_.sectorBytes != 0 ? config_.sectorBytes
                                 : config_.lineBytes;
    SLO_CHECK_CTX(stats_.fillBytes == stats_.misses * fill_granularity,
                  "check.cache", ctx,
                  "fill bytes inconsistent with fill granularity "
                      << fill_granularity);
    SLO_CHECK_CTX(stats_.irregularMisses <= stats_.misses,
                  "check.cache", ctx,
                  "more irregular misses than misses");

    if (!check::enabled(check::Level::Full))
        return;
    const std::uint32_t sectors_per_line =
        config_.sectorBytes != 0 ? config_.lineBytes / config_.sectorBytes
                                 : 1;
    const std::uint32_t valid_mask =
        sectors_per_line >= 32
            ? ~0u
            : (1u << sectors_per_line) - 1u;
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        const Way *const base =
            ways_.data() + static_cast<std::size_t>(set) * config_.ways;
        for (std::uint32_t w = 0; w < config_.ways; ++w) {
            const Way &way = base[w];
            if (way.tag == kInvalid)
                continue;
            check::Context way_ctx;
            way_ctx.add("set", set);
            way_ctx.add("way", w);
            way_ctx.add("tag", way.tag);
            SLO_CHECK_CTX(way.tag % numSets_ == set, "check.cache",
                          way_ctx,
                          "resident tag mapped to the wrong set");
            SLO_CHECK_CTX(way.lastUse <= clock_, "check.cache", way_ctx,
                          "LRU timestamp ahead of the access clock");
            SLO_CHECK_CTX(way.sectorMask != 0 &&
                              (way.sectorMask & ~valid_mask) == 0,
                          "check.cache", way_ctx,
                          "sector mask outside the line's sectors");
            for (std::uint32_t other = w + 1; other < config_.ways;
                 ++other) {
                if (base[other].tag == kInvalid)
                    continue;
                SLO_CHECK_CTX(base[other].tag != way.tag, "check.cache",
                              way_ctx,
                              "duplicate tag resident in one set");
                SLO_CHECK_CTX(base[other].lastUse != way.lastUse,
                              "check.cache", way_ctx,
                              "LRU stack not unique: two ways share "
                              "timestamp "
                                  << way.lastUse);
            }
        }
    }
}

void
CacheSim::finish()
{
    require(!finished_, "CacheSim::finish: called twice");
    finished_ = true;
    checkInvariants();
    for (const Way &way : ways_) {
        if (way.tag != kInvalid && !way.reused)
            ++stats_.deadLines;
    }
    // Flush the run's totals into the process-wide registry here, once
    // per simulation, so the per-access hot path stays counter-free.
    static obs::Counter &accesses = obs::counter("cache.accesses");
    static obs::Counter &hits = obs::counter("cache.hits");
    static obs::Counter &misses = obs::counter("cache.misses");
    static obs::Counter &fill_bytes = obs::counter("cache.fill_bytes");
    static obs::Counter &irregular_fill_bytes =
        obs::counter("cache.irregular_fill_bytes");
    static obs::Counter &lines_filled =
        obs::counter("cache.lines_filled");
    static obs::Counter &dead_lines = obs::counter("cache.dead_lines");
    accesses.add(stats_.accesses);
    hits.add(stats_.hits);
    misses.add(stats_.misses);
    fill_bytes.add(stats_.fillBytes);
    irregular_fill_bytes.add(stats_.irregularFillBytes);
    lines_filled.add(stats_.linesFilled);
    dead_lines.add(stats_.deadLines);
}

} // namespace slo::cache
