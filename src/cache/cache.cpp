#include "cache/cache.hpp"

#include <bit>

#include "check/check.hpp"
#include "obs/metrics.hpp"

namespace slo::cache
{

void
CacheConfig::validate() const
{
    require(lineBytes > 0 && std::has_single_bit(lineBytes),
            "CacheConfig: lineBytes must be a power of two");
    require(ways > 0, "CacheConfig: ways must be positive");
    require(capacityBytes >= static_cast<std::uint64_t>(lineBytes) * ways,
            "CacheConfig: capacity smaller than one set");
    require(capacityBytes % (static_cast<std::uint64_t>(lineBytes) *
                             ways) == 0,
            "CacheConfig: capacity must be a multiple of lineBytes*ways");
    // Note: the set count need NOT be a power of two — the real A6000
    // L2 (6 MB, 16-way, 32 B sectors) has 12288 sets; indexing uses
    // SetIndexer's divide-free reduction.
    if (sectorBytes != 0) {
        require(std::has_single_bit(sectorBytes),
                "CacheConfig: sectorBytes must be a power of two");
        require(sectorBytes < lineBytes &&
                    lineBytes / sectorBytes <= 32,
                "CacheConfig: need 2..32 sectors per line");
    }
}

CacheSim::CacheSim(const CacheConfig &config)
    : CacheSim(config, 0, config.numSets())
{
}

CacheSim::CacheSim(const CacheConfig &config, std::uint64_t set_begin,
                   std::uint64_t set_count)
    : config_(config)
{
    config_.validate();
    require(set_count >= 1 &&
                set_begin + set_count <= config_.numSets(),
            "CacheSim: set range outside the cache's sets");
    indexer_ = SetIndexer(config_.numSets());
    setBegin_ = set_begin;
    setCount_ = set_count;
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    sectored_ = config_.sectorBytes != 0;
    if (sectored_) {
        sectorShift_ = static_cast<std::uint32_t>(
            std::countr_zero(config_.sectorBytes));
        sectorIndexMask_ = (config_.lineBytes >> sectorShift_) - 1;
    }
    fillBytes_ = sectored_ ? config_.sectorBytes : config_.lineBytes;
    const auto slots =
        static_cast<std::size_t>(setCount_) * config_.ways;
    tags_.assign(slots, kInvalid);
    lastUse_.assign(slots, 0);
    sectorMasks_.assign(slots, 0);
    reused_.assign(slots, 0);
    mruWay_.assign(static_cast<std::size_t>(setCount_), 0);
}

/**
 * The batched per-access core, shared by accessBatch() and
 * accessRouted() (and, with a one-element batch, access()).
 *
 * All hot state lives in locals for the duration of the loop: the
 * way-state arrays are written through __restrict pointers and the
 * counters/clock are registers, so a tag store cannot force the
 * compiler to re-load the counters (a uint64_t store may legally alias
 * a uint64_t member) and the loop stays free of redundant member
 * traffic. State is written back once per batch.
 *
 * Replacement is exact LRU: on a miss the victim is the way with the
 * smallest LRU age, where empty ways carry age 0 — a real timestamp is
 * never 0 (the clock pre-increments), so any empty way outranks every
 * resident line, and the strict < keeps the lowest-indexed minimum,
 * i.e. the first empty way. Timestamps are unique within a set (one
 * clock tick per access), so the resident victim is unique too.
 */
template <bool Routed, std::uint32_t StaticWays>
void
CacheSim::accessLoop(const std::uint64_t *addrs,
                     const std::uint8_t *shard_ids, std::size_t count,
                     std::uint8_t own)
{
    const SetIndexer indexer = indexer_;
    const std::uint64_t set_begin = setBegin_;
    // StaticWays != 0 pins the associativity at compile time so the
    // way-scan loops fully unroll (every modelled config is 16-way);
    // StaticWays == 0 is the generic runtime-trip-count fallback.
    const std::uint32_t ways = StaticWays != 0 ? StaticWays
                                               : config_.ways;
    const std::uint32_t line_shift = lineShift_;
    const bool sectored = sectored_;
    const std::uint32_t sector_shift = sectorShift_;
    const std::uint32_t sector_index_mask = sectorIndexMask_;
    const std::uint64_t fill_bytes = fillBytes_;
    const std::uint64_t irregular_lo = irregularLo_;
    const std::uint64_t irregular_hi = irregularHi_;
    std::uint64_t *__restrict const tags_base = tags_.data();
    std::uint64_t *__restrict const last_use = lastUse_.data();
    std::uint32_t *__restrict const sector_masks = sectorMasks_.data();
    std::uint8_t *__restrict const reused = reused_.data();
    std::uint8_t *__restrict const mru = mruWay_.data();
    std::uint64_t clock = clock_;
    // Counters kept in registers across the batch; hits are derived at
    // the end (every processed access is a hit or a miss) so the
    // common hit path pays for the clock tick and nothing else.
    std::uint64_t processed = 0;
    std::uint64_t misses = 0;
    std::uint64_t lines_filled = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dead_lines = 0;
    std::uint64_t irregular_misses = 0;

    for (std::size_t i = 0; i < count; ++i) {
        if constexpr (Routed) {
            if (shard_ids[i] != own)
                continue;
        }
        const std::uint64_t addr = addrs[i];
        const std::uint64_t line = addr >> line_shift;
        const std::size_t set =
            static_cast<std::size_t>(indexer.setOf(line) - set_begin);
        const std::size_t base = set * ways;
        ++processed;
        ++clock;

        std::uint64_t *__restrict const tags = tags_base + base;
        // Probe the set's most-recently-touched way first: streaming
        // accesses re-touch the line they just filled, so one
        // predictable compare usually resolves the search. (The
        // stored way index may be truncated to 8 bits; it is always
        // < ways, so the probe is in bounds — a wrong probe just
        // falls through to the full scan.)
        std::uint32_t w = mru[set];
        if (tags[w] != line) {
            // Full scan: a single branch-free conditional-select chain.
            // Tags are unique within a set, so at most one position
            // matches; no match leaves w == ways. With StaticWays the
            // trip count is a constant and the loop fully unrolls.
            w = tags[0] == line ? 0 : ways;
            for (std::uint32_t j = 1; j < ways; ++j)
                w = tags[j] == line ? j : w;
        }
        if (w < ways) {
            const std::size_t slot = base + w;
            mru[set] = static_cast<std::uint8_t>(w);
            last_use[slot] = clock;
            if (!sectored) {
                reused[slot] = 1;
                continue;
            }
            const std::uint32_t sector_bit =
                1u << ((addr >> sector_shift) & sector_index_mask);
            if ((sector_masks[slot] & sector_bit) != 0) {
                reused[slot] = 1;
                continue;
            }
            // Sector miss on a resident line: fill one sector.
            sector_masks[slot] |= sector_bit;
            ++misses;
            irregular_misses +=
                addr >= irregular_lo && addr < irregular_hi ? 1 : 0;
            continue;
        }

        // Line miss: evict the LRU way. Empty ways carry age 0, which
        // no real timestamp can equal, so the argmin lands on the
        // first empty way when one exists; the strict < keeps the
        // lowest-indexed minimum. This second short loop only runs on
        // misses, so the (dominant) hit path never pays for it.
        const std::uint64_t *__restrict const ages = last_use + base;
        std::uint32_t victim = 0;
        std::uint64_t best = ages[0];
        for (std::uint32_t j = 1; j < ways; ++j) {
            victim = ages[j] < best ? j : victim;
            best = ages[j] < best ? ages[j] : best;
        }
        ++misses;
        ++lines_filled;
        irregular_misses +=
            addr >= irregular_lo && addr < irregular_hi ? 1 : 0;
        const std::size_t slot = base + victim;
        mru[set] = static_cast<std::uint8_t>(victim);
        if (tags[victim] != kInvalid) {
            ++evictions;
            dead_lines += reused[slot] == 0 ? 1 : 0;
        }
        tags[victim] = line;
        last_use[slot] = clock;
        sector_masks[slot] =
            sectored
                ? 1u << ((addr >> sector_shift) & sector_index_mask)
                : 1u;
        reused[slot] = 0;
    }

    clock_ = clock;
    stats_.accesses += processed;
    stats_.hits += processed - misses;
    stats_.misses += misses;
    stats_.linesFilled += lines_filled;
    stats_.evictions += evictions;
    stats_.deadLines += dead_lines;
    stats_.irregularMisses += irregular_misses;
    stats_.fillBytes += misses * fill_bytes;
    stats_.irregularFillBytes += irregular_misses * fill_bytes;
}

bool
CacheSim::access(std::uint64_t addr)
{
    const std::uint64_t hits_before = stats_.hits;
    accessBatch(&addr, 1);
    return stats_.hits != hits_before;
}

void
CacheSim::accessBatch(const std::uint64_t *addrs, std::size_t count)
{
    if (config_.ways == 16)
        accessLoop<false, 16>(addrs, nullptr, count, 0);
    else
        accessLoop<false, 0>(addrs, nullptr, count, 0);
}

void
CacheSim::accessRouted(const std::uint64_t *addrs,
                       const std::uint8_t *shard_ids, std::size_t count,
                       std::uint8_t own)
{
    if (config_.ways == 16)
        accessLoop<true, 16>(addrs, shard_ids, count, own);
    else
        accessLoop<true, 0>(addrs, shard_ids, count, own);
}

void
CacheSim::checkInvariants() const
{
    if (!check::enabled(check::Level::Cheap))
        return;
    check::Context ctx;
    ctx.add("accesses", stats_.accesses);
    ctx.add("hits", stats_.hits);
    ctx.add("misses", stats_.misses);
    SLO_CHECK_CTX(stats_.hits + stats_.misses == stats_.accesses,
                  "check.cache", ctx,
                  "hits + misses must equal accesses");
    SLO_CHECK_CTX(stats_.linesFilled <= stats_.misses, "check.cache",
                  ctx, "more lines filled than misses");
    SLO_CHECK_CTX(stats_.evictions <= stats_.linesFilled, "check.cache",
                  ctx, "more evictions than lines filled");
    SLO_CHECK_CTX(stats_.fillBytes == stats_.misses * fillBytes_,
                  "check.cache", ctx,
                  "fill bytes inconsistent with fill granularity "
                      << fillBytes_);
    SLO_CHECK_CTX(stats_.irregularMisses <= stats_.misses,
                  "check.cache", ctx,
                  "more irregular misses than misses");

    if (!check::enabled(check::Level::Full))
        return;
    const std::uint32_t sectors_per_line =
        sectored_ ? config_.lineBytes / config_.sectorBytes : 1;
    const std::uint32_t valid_mask =
        sectors_per_line >= 32
            ? ~0u
            : (1u << sectors_per_line) - 1u;
    for (std::uint64_t set = 0; set < setCount_; ++set) {
        const std::size_t base =
            static_cast<std::size_t>(set) * config_.ways;
        for (std::uint32_t w = 0; w < config_.ways; ++w) {
            const std::size_t slot = base + w;
            if (tags_[slot] == kInvalid) {
                check::Context way_ctx;
                way_ctx.add("set", setBegin_ + set);
                way_ctx.add("way", w);
                SLO_CHECK_CTX(lastUse_[slot] == 0, "check.cache",
                              way_ctx,
                              "empty way carries an LRU timestamp");
                continue;
            }
            check::Context way_ctx;
            way_ctx.add("set", setBegin_ + set);
            way_ctx.add("way", w);
            way_ctx.add("tag", tags_[slot]);
            SLO_CHECK_CTX(indexer_.setOf(tags_[slot]) ==
                              setBegin_ + set,
                          "check.cache", way_ctx,
                          "resident tag mapped to the wrong set");
            SLO_CHECK_CTX(lastUse_[slot] >= 1 &&
                              lastUse_[slot] <= clock_,
                          "check.cache", way_ctx,
                          "LRU timestamp ahead of the access clock");
            SLO_CHECK_CTX(sectorMasks_[slot] != 0 &&
                              (sectorMasks_[slot] & ~valid_mask) == 0,
                          "check.cache", way_ctx,
                          "sector mask outside the line's sectors");
            for (std::uint32_t other = w + 1; other < config_.ways;
                 ++other) {
                const std::size_t other_slot = base + other;
                if (tags_[other_slot] == kInvalid)
                    continue;
                SLO_CHECK_CTX(tags_[other_slot] != tags_[slot],
                              "check.cache", way_ctx,
                              "duplicate tag resident in one set");
                SLO_CHECK_CTX(lastUse_[other_slot] != lastUse_[slot],
                              "check.cache", way_ctx,
                              "LRU stack not unique: two ways share "
                              "timestamp "
                                  << lastUse_[slot]);
            }
        }
    }
}

void
CacheSim::finish()
{
    require(!finished_, "CacheSim::finish: called twice");
    finished_ = true;
    checkInvariants();
    for (std::size_t slot = 0; slot < tags_.size(); ++slot) {
        if (tags_[slot] != kInvalid && reused_[slot] == 0)
            ++stats_.deadLines;
    }
    // Flush the run's totals into the process-wide registry here, once
    // per simulation, so the per-access hot path stays counter-free.
    static obs::Counter &accesses = obs::counter("cache.accesses");
    static obs::Counter &hits = obs::counter("cache.hits");
    static obs::Counter &misses = obs::counter("cache.misses");
    static obs::Counter &fill_bytes = obs::counter("cache.fill_bytes");
    static obs::Counter &irregular_fill_bytes =
        obs::counter("cache.irregular_fill_bytes");
    static obs::Counter &lines_filled =
        obs::counter("cache.lines_filled");
    static obs::Counter &dead_lines = obs::counter("cache.dead_lines");
    accesses.add(stats_.accesses);
    hits.add(stats_.hits);
    misses.add(stats_.misses);
    fill_bytes.add(stats_.fillBytes);
    irregular_fill_bytes.add(stats_.irregularFillBytes);
    lines_filled.add(stats_.linesFilled);
    dead_lines.add(stats_.deadLines);
}

} // namespace slo::cache
