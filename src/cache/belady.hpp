/**
 * @file
 * Belady's OPT replacement policy over a materialized trace.
 *
 * Fig. 8's headroom analysis: an idealized L2 that evicts the line whose
 * next use lies furthest in the future (Belady 1966). OPT needs the whole
 * future, so unlike the streaming LRU simulator it consumes a
 * pre-recorded trace of byte addresses.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"

namespace slo::cache
{

/**
 * Simulate @p trace (byte addresses) through a cache of geometry
 * @p config with Belady's optimal replacement. Dead-line accounting
 * matches CacheSim's (evicted or left resident without a re-hit).
 */
CacheStats simulateBelady(const std::vector<std::uint64_t> &trace,
                          const CacheConfig &config,
                          std::uint64_t irregular_lo = 1,
                          std::uint64_t irregular_hi = 0);

} // namespace slo::cache
