/**
 * @file
 * Belady's OPT replacement policy, streamed.
 *
 * Fig. 8's headroom analysis: an idealized L2 that evicts the line whose
 * next use lies furthest in the future (Belady 1966). OPT needs the
 * future, but it does not need a materialized address trace: the
 * access stream is generated twice (generation is deterministic and
 * cheap next to simulation). Pass 1 records, per access, the distance
 * to the next access of the same line as a 4-byte delta; pass 2
 * regenerates the stream and feeds (address, next-use) pairs to the
 * incremental BeladySim core. Peak memory drops from 16+ bytes per
 * access (the old byte-address trace plus a full-width next-use array)
 * to 4 bytes per access — the delta array is the one per-access
 * allocation exact OPT fundamentally requires.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"

namespace slo::cache
{

/**
 * Incremental OPT simulator: the caller supplies each access's
 * next-use index (the global index of the next access to the same
 * line, or kNever). Counter semantics match CacheSim's, including the
 * bypass refinement: an incoming line whose next use lies beyond every
 * resident line's is not allowed to displace useful data.
 */
class BeladySim
{
  public:
    /** next_use value for "this line is never accessed again". */
    static constexpr std::uint64_t kNever =
        std::numeric_limits<std::uint64_t>::max();

    /** @p config must be unsectored (OPT models whole-line fills). */
    explicit BeladySim(const CacheConfig &config,
                       std::uint64_t irregular_lo = 1,
                       std::uint64_t irregular_hi = 0);

    /** Consume one access; @p next_use per the class contract. */
    void access(std::uint64_t addr, std::uint64_t next_use);

    /** Count still-resident never-rehit lines as dead. Call once. */
    void finish();

    const CacheStats &stats() const { return stats_; }

  private:
    static constexpr std::uint64_t kInvalid = ~0ULL;

    CacheConfig config_;
    SetIndexer indexer_;
    std::uint64_t irregularLo_ = 1;
    std::uint64_t irregularHi_ = 0;
    std::uint32_t lineShift_ = 0;
    bool finished_ = false;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> nextUse_;
    std::vector<std::uint8_t> reused_;
    CacheStats stats_;
};

/**
 * Pass-1 accumulator for the streamed two-pass OPT: push every address
 * in stream order, then read back each access's next-use index during
 * the second pass. Distances are stored as 4-byte deltas; streams of
 * 2^32-1 or more accesses are rejected up front (far beyond any
 * matrix this library simulates).
 */
class NextUseRecorder
{
  public:
    /**
     * @param reserve_hint expected access count (pre-sizes the delta
     *        array; 0 is fine).
     */
    explicit NextUseRecorder(const CacheConfig &config,
                             std::uint64_t reserve_hint);

    /** Record the next access (pass 1 sink). */
    void push(std::uint64_t addr);

    /** Accesses recorded so far. */
    std::uint64_t size() const { return nextDelta_.size(); }

    /** Next-use index of access @p index, or BeladySim::kNever. */
    std::uint64_t
    nextUseAt(std::uint64_t index) const
    {
        const std::uint32_t delta =
            nextDelta_[static_cast<std::size_t>(index)];
        return delta == kNeverDelta ? BeladySim::kNever : index + delta;
    }

  private:
    static constexpr std::uint32_t kNeverDelta = ~0u;

    std::uint32_t lineShift_ = 0;
    std::vector<std::uint32_t> nextDelta_;
    std::unordered_map<std::uint64_t, std::uint64_t> lastSeen_;
};

/**
 * Streamed two-pass OPT simulation. @p replay must be callable twice
 * with a `void(std::uint64_t addr)` sink and emit the identical
 * address sequence both times (every generator in this library is
 * deterministic).
 */
template <typename Replay>
CacheStats
simulateBeladyStreamed(const CacheConfig &config,
                       std::uint64_t irregular_lo,
                       std::uint64_t irregular_hi,
                       std::uint64_t reserve_hint, Replay &&replay)
{
    NextUseRecorder recorder(config, reserve_hint);
    replay([&recorder](std::uint64_t addr) { recorder.push(addr); });

    BeladySim sim(config, irregular_lo, irregular_hi);
    std::uint64_t index = 0;
    replay([&sim, &recorder, &index](std::uint64_t addr) {
        sim.access(addr, recorder.nextUseAt(index));
        ++index;
    });
    require(index == recorder.size(),
            "simulateBeladyStreamed: replay emitted a different "
            "number of accesses on the second pass");
    sim.finish();
    return sim.stats();
}

/**
 * Simulate @p trace (byte addresses) through a cache of geometry
 * @p config with Belady's optimal replacement. Dead-line accounting
 * matches CacheSim's (evicted or left resident without a re-hit).
 * Thin wrapper over the streamed two-pass core, kept for callers and
 * oracles that already hold a materialized trace.
 */
CacheStats simulateBelady(const std::vector<std::uint64_t> &trace,
                          const CacheConfig &config,
                          std::uint64_t irregular_lo = 1,
                          std::uint64_t irregular_hi = 0);

} // namespace slo::cache
