#include "matrix/coo.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace slo
{

Coo::Coo(Index num_rows, Index num_cols)
    : numRows_(num_rows), numCols_(num_cols)
{
    require(num_rows >= 0 && num_cols >= 0,
            "Coo: dimensions must be non-negative");
}

void
Coo::add(Index row, Index col, Value val)
{
    require(row >= 0 && row < numRows_ && col >= 0 && col < numCols_,
            "Coo::add: coordinate out of bounds");
    rows_.push_back(row);
    cols_.push_back(col);
    vals_.push_back(val);
}

void
Coo::addSymmetric(Index row, Index col, Value val)
{
    add(row, col, val);
    if (row != col)
        add(col, row, val);
}

Triplet
Coo::at(Offset i) const
{
    require(i >= 0 && i < numEntries(), "Coo::at: index out of bounds");
    auto idx = static_cast<std::size_t>(i);
    return {rows_[idx], cols_[idx], vals_[idx]};
}

void
Coo::reserve(Offset n)
{
    auto count = static_cast<std::size_t>(n);
    rows_.reserve(count);
    cols_.reserve(count);
    vals_.reserve(count);
}

void
Coo::sortRowMajor()
{
    std::vector<Offset> order(rows_.size());
    std::iota(order.begin(), order.end(), Offset{0});
    std::stable_sort(order.begin(), order.end(),
        [this](Offset a, Offset b) {
            auto ia = static_cast<std::size_t>(a);
            auto ib = static_cast<std::size_t>(b);
            if (rows_[ia] != rows_[ib])
                return rows_[ia] < rows_[ib];
            return cols_[ia] < cols_[ib];
        });

    auto apply = [&order](auto &vec) {
        auto permuted = vec;
        for (std::size_t i = 0; i < order.size(); ++i)
            permuted[i] = vec[static_cast<std::size_t>(order[i])];
        vec = std::move(permuted);
    };
    apply(rows_);
    apply(cols_);
    apply(vals_);
}

bool
Coo::isRowMajorSorted() const
{
    for (std::size_t i = 1; i < rows_.size(); ++i) {
        if (rows_[i - 1] > rows_[i])
            return false;
        if (rows_[i - 1] == rows_[i] && cols_[i - 1] > cols_[i])
            return false;
    }
    return true;
}

void
Coo::transposeInPlace()
{
    std::swap(rows_, cols_);
    std::swap(numRows_, numCols_);
}

} // namespace slo
