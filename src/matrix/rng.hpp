/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every synthetic generator and the RANDOM ordering take an explicit 64-bit
 * seed so experiments are reproducible run-to-run and machine-to-machine
 * (std::mt19937 distributions are not portable across standard libraries, so
 * we implement the distributions we need on top of xoshiro256**).
 */

#pragma once

#include <cstdint>

namespace slo
{

/** SplitMix64: used to seed xoshiro and to hash seeds. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator. Small, fast, high-quality, and fully
 * deterministic across platforms.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free multiply-shift; bias is negligible for our bounds
        // (< 2^32) but we debias anyway for portability of results.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace slo
