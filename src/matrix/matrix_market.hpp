/**
 * @file
 * MatrixMarket (.mtx) reader/writer.
 *
 * Supports the coordinate format with real / integer / pattern fields and
 * general / symmetric symmetry, which covers everything SuiteSparse ships
 * for the matrix classes the paper uses. Lets users run the library's
 * pipeline on real downloaded matrices in addition to the synthetic corpus.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace slo::io
{

/** Parse a MatrixMarket stream into COO (symmetric entries mirrored). */
Coo readMatrixMarket(std::istream &in);

/** Read a .mtx file; @throws std::invalid_argument on parse/IO errors. */
Coo readMatrixMarketFile(const std::string &path);

/** Convenience: read a .mtx file straight into CSR (duplicates summed). */
Csr readCsrFromMatrixMarketFile(const std::string &path);

/**
 * Write a matrix in MatrixMarket coordinate/real/general format.
 * Entries are written row-major sorted, 1-based as per the spec.
 */
void writeMatrixMarket(std::ostream &out, const Csr &matrix);

/** Write a .mtx file; @throws std::invalid_argument on IO errors. */
void writeMatrixMarketFile(const std::string &path, const Csr &matrix);

/**
 * Parse a SNAP/Konect-style whitespace-separated edge list
 * ("src dst [weight]" per line, '#' or '%' comments, 0-based ids).
 * Node count is max id + 1 (square). Values default to 1.
 */
Coo readEdgeList(std::istream &in);

/** Read an edge-list file; @throws std::invalid_argument on errors. */
Coo readEdgeListFile(const std::string &path);

} // namespace slo::io
