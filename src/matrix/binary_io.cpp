#include "matrix/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "check/checked_cast.hpp"

namespace slo::io
{

namespace
{

constexpr char kMagic[4] = {'S', 'L', 'O', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writeScalar(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    require(static_cast<bool>(in), "binary CSR: truncated stream");
    return value;
}

template <typename T>
void
writeVector(std::ostream &out, const std::vector<T> &vec)
{
    writeScalar<std::uint64_t>(out, vec.size());
    out.write(reinterpret_cast<const char *>(vec.data()),
              checkedCast<std::streamsize>(vec.size() * sizeof(T)));
}

/**
 * Bytes left in @p in, or -1 when the stream is not seekable. Guards
 * vector reads against corrupt size fields that would otherwise turn
 * into multi-gigabyte allocations before the read even fails.
 */
std::int64_t
remainingBytes(std::istream &in)
{
    const std::istream::pos_type pos = in.tellg();
    if (pos == std::istream::pos_type(-1))
        return -1;
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(pos);
    if (end == std::istream::pos_type(-1) || !in)
        return -1;
    return static_cast<std::int64_t>(end - pos);
}

template <typename T>
std::vector<T>
readVector(std::istream &in)
{
    const auto size = readScalar<std::uint64_t>(in);
    const auto count = checkedCast<std::size_t>(size);
    if (const std::int64_t remaining = remainingBytes(in);
        remaining >= 0) {
        require(size <= static_cast<std::uint64_t>(remaining) /
                            sizeof(T),
                "binary CSR: declared array size exceeds stream length");
    }
    std::vector<T> vec(count);
    in.read(reinterpret_cast<char *>(vec.data()),
            checkedCast<std::streamsize>(count * sizeof(T)));
    require(static_cast<bool>(in), "binary CSR: truncated array");
    return vec;
}

} // namespace

void
writeCsrBinary(std::ostream &out, const Csr &matrix)
{
    out.write(kMagic, sizeof(kMagic));
    writeScalar<std::uint32_t>(out, kVersion);
    writeScalar<std::int32_t>(out, matrix.numRows());
    writeScalar<std::int32_t>(out, matrix.numCols());
    writeVector(out, matrix.rowOffsets());
    writeVector(out, matrix.colIndices());
    writeVector(out, matrix.values());
    require(static_cast<bool>(out), "binary CSR: write failed");
}

void
writeCsrBinaryFile(const std::string &path, const Csr &matrix)
{
    std::ofstream out(path, std::ios::binary);
    require(out.is_open(), "binary CSR: cannot open " + path);
    writeCsrBinary(out, matrix);
}

Csr
readCsrBinary(std::istream &in)
{
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    require(static_cast<bool>(in) &&
                std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "binary CSR: bad magic");
    const auto version = readScalar<std::uint32_t>(in);
    require(version == kVersion, "binary CSR: unsupported version");
    const auto rows = checkedCast<Index>(readScalar<std::int32_t>(in));
    const auto cols = checkedCast<Index>(readScalar<std::int32_t>(in));
    require(rows >= 0 && cols >= 0,
            "binary CSR: negative dimensions");
    auto offsets = readVector<Offset>(in);
    auto indices = readVector<Index>(in);
    auto values = readVector<Value>(in);
    // The Csr constructor runs the cheap structural contract
    // (monotone offsets, in-range columns); nothing read from disk is
    // trusted beyond the byte level.
    return Csr(rows, cols, std::move(offsets), std::move(indices),
               std::move(values));
}

Csr
readCsrBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    require(in.is_open(), "binary CSR: cannot open " + path);
    return readCsrBinary(in);
}

} // namespace slo::io
