/**
 * @file
 * Structural properties of sparse matrices.
 *
 * These are the quantities the paper's analysis is built on: degree
 * statistics, the degree-distribution *skew* metric (Sec. V-B: percentage
 * of non-zeros connected to the top 10% most-connected rows), matrix
 * bandwidth, and empty-row counts (the wiki-Talk footnote in Sec. VI-A).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo
{

/** Summary of a matrix's (out-)degree distribution. */
struct DegreeStats
{
    Index minDegree = 0;
    Index maxDegree = 0;
    double avgDegree = 0.0;
    double medianDegree = 0.0;
};

/** Degree statistics over rows (out-degrees). */
DegreeStats degreeStats(const Csr &matrix);

/** In-degrees, i.e. column counts (what DEGSORT/DBG/HUBSORT sort by). */
std::vector<Index> inDegrees(const Csr &matrix);

/** Out-degrees (row lengths). */
std::vector<Index> outDegrees(const Csr &matrix);

/**
 * Degree-distribution skew (Sec. V-B): the fraction of non-zeros whose
 * column belongs to the top @p top_fraction most-connected columns (by
 * in-degree). The paper reports this as a percentage with
 * top_fraction = 0.1; returns a value in [0, 1].
 */
double degreeSkew(const Csr &matrix, double top_fraction = 0.1);

/** Maximum |row - col| over all non-zeros (classic matrix bandwidth). */
Index matrixBandwidth(const Csr &matrix);

/** Mean |row - col| over all non-zeros. */
double averageBandwidth(const Csr &matrix);

/** Number of rows with no non-zeros. */
Index emptyRowCount(const Csr &matrix);

/**
 * Histogram of out-degrees bucketed by floor(log2(degree)); bucket 0
 * holds degrees 0 and 1. Used by DBG and by dataset characterization.
 */
std::vector<Offset> degreeHistogramLog2(const Csr &matrix);

/**
 * Number of connected components of the undirected pattern
 * (matrix must have a symmetric pattern).
 */
Index connectedComponents(const Csr &matrix);

} // namespace slo
