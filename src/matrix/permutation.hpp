/**
 * @file
 * Vertex/row permutations.
 *
 * Every reordering technique in the library produces a Permutation: a
 * bijection old-id -> new-id over [0, n). The convention throughout the
 * code base is the "destination" form, i.e. newIds()[old] == new. Helpers
 * convert to/from the "source" form (order[new] == old) that ordering
 * algorithms naturally produce when they emit vertices one by one.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "matrix/types.hpp"

namespace slo
{

/** A bijection over [0, n) mapping old ids to new ids. */
class Permutation
{
  public:
    /** Empty (size-0) permutation. */
    Permutation() = default;

    /**
     * Construct from the destination form: new_ids[old] == new.
     * @throws std::invalid_argument if new_ids is not a bijection.
     */
    explicit Permutation(std::vector<Index> new_ids);

    /** The identity permutation over [0, n). */
    static Permutation identity(Index n);

    /** A uniformly random permutation (Fisher-Yates, deterministic seed). */
    static Permutation random(Index n, std::uint64_t seed);

    /**
     * Construct from the source form: order[new] == old (i.e. the list of
     * old ids in their new order, as ordering algorithms emit them).
     */
    static Permutation fromNewToOld(const std::vector<Index> &order);

    /** @return true iff new_ids is a bijection over [0, n). */
    static bool isPermutation(const std::vector<Index> &new_ids);

    Index size() const { return static_cast<Index>(newIds_.size()); }

    /** New id of old id @p old. */
    Index
    newId(Index old) const
    {
        return newIds_[static_cast<std::size_t>(old)];
    }

    Index operator[](Index old) const { return newId(old); }

    /** Destination-form array (newIds()[old] == new). */
    const std::vector<Index> &newIds() const { return newIds_; }

    /** Source-form array (result[new] == old). */
    std::vector<Index> newToOld() const;

    /** The inverse bijection. */
    Permutation inverse() const;

    /**
     * Composition: first apply *this, then @p next.
     * (result[old] == next[this[old]]).
     */
    Permutation then(const Permutation &next) const;

    /** @return true if this is the identity. */
    bool isIdentity() const;

    bool operator==(const Permutation &other) const = default;

  private:
    std::vector<Index> newIds_;
};

} // namespace slo
