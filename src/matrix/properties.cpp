#include "matrix/properties.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <numeric>

namespace slo
{

DegreeStats
degreeStats(const Csr &matrix)
{
    DegreeStats stats;
    const Index n = matrix.numRows();
    if (n == 0)
        return stats;
    std::vector<Index> degrees(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r)
        degrees[static_cast<std::size_t>(r)] = matrix.degree(r);
    auto [min_it, max_it] =
        std::minmax_element(degrees.begin(), degrees.end());
    stats.minDegree = *min_it;
    stats.maxDegree = *max_it;
    stats.avgDegree = matrix.averageDegree();
    std::nth_element(degrees.begin(), degrees.begin() + n / 2,
                     degrees.end());
    stats.medianDegree =
        static_cast<double>(degrees[static_cast<std::size_t>(n / 2)]);
    return stats;
}

std::vector<Index>
inDegrees(const Csr &matrix)
{
    std::vector<Index> degrees(
        static_cast<std::size_t>(matrix.numCols()), 0);
    for (Index col : matrix.colIndices())
        ++degrees[static_cast<std::size_t>(col)];
    return degrees;
}

std::vector<Index>
outDegrees(const Csr &matrix)
{
    std::vector<Index> degrees(
        static_cast<std::size_t>(matrix.numRows()));
    for (Index r = 0; r < matrix.numRows(); ++r)
        degrees[static_cast<std::size_t>(r)] = matrix.degree(r);
    return degrees;
}

double
degreeSkew(const Csr &matrix, double top_fraction)
{
    require(top_fraction > 0.0 && top_fraction <= 1.0,
            "degreeSkew: top_fraction must be in (0,1]");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0 || matrix.numCols() == 0)
        return 0.0;
    std::vector<Index> degrees = inDegrees(matrix);
    const auto top = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(static_cast<double>(degrees.size()) *
                          top_fraction)));
    std::nth_element(degrees.begin(), degrees.begin() +
                         static_cast<std::ptrdiff_t>(top - 1),
                     degrees.end(), std::greater<Index>());
    const Offset covered = std::accumulate(
        degrees.begin(),
        degrees.begin() + static_cast<std::ptrdiff_t>(top), Offset{0});
    return static_cast<double>(covered) / static_cast<double>(nnz);
}

Index
matrixBandwidth(const Csr &matrix)
{
    Index bandwidth = 0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        for (Index c : matrix.rowIndices(r))
            bandwidth = std::max(bandwidth, std::abs(r - c));
    }
    return bandwidth;
}

double
averageBandwidth(const Csr &matrix)
{
    if (matrix.numNonZeros() == 0)
        return 0.0;
    double total = 0.0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        for (Index c : matrix.rowIndices(r))
            total += std::abs(r - c);
    }
    return total / static_cast<double>(matrix.numNonZeros());
}

Index
emptyRowCount(const Csr &matrix)
{
    Index count = 0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        if (matrix.degree(r) == 0)
            ++count;
    }
    return count;
}

std::vector<Offset>
degreeHistogramLog2(const Csr &matrix)
{
    std::vector<Offset> histogram;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        const Index degree = matrix.degree(r);
        std::size_t bucket = 0;
        if (degree > 1) {
            bucket = static_cast<std::size_t>(
                std::bit_width(static_cast<std::uint32_t>(degree)) - 1);
        }
        if (bucket >= histogram.size())
            histogram.resize(bucket + 1, 0);
        ++histogram[bucket];
    }
    return histogram;
}

Index
connectedComponents(const Csr &matrix)
{
    const Index n = matrix.numRows();
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<Index> stack;
    Index components = 0;
    for (Index start = 0; start < n; ++start) {
        if (visited[static_cast<std::size_t>(start)])
            continue;
        ++components;
        stack.push_back(start);
        visited[static_cast<std::size_t>(start)] = true;
        while (!stack.empty()) {
            const Index u = stack.back();
            stack.pop_back();
            for (Index v : matrix.rowIndices(u)) {
                if (!visited[static_cast<std::size_t>(v)]) {
                    visited[static_cast<std::size_t>(v)] = true;
                    stack.push_back(v);
                }
            }
        }
    }
    return components;
}

} // namespace slo
