/**
 * @file
 * Fast binary CSR serialization.
 *
 * MatrixMarket parsing dominates pre-processing time for large inputs, so
 * (like most reordering tool chains) we provide a binary cache format:
 * magic, version, dimensions, then the three CSR arrays verbatim
 * (little-endian, as written by the host).
 */

#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.hpp"

namespace slo::io
{

/** Serialize @p matrix to a binary stream. */
void writeCsrBinary(std::ostream &out, const Csr &matrix);

/** Write a binary CSR file; @throws std::invalid_argument on IO errors. */
void writeCsrBinaryFile(const std::string &path, const Csr &matrix);

/** Deserialize a matrix written by writeCsrBinary. */
Csr readCsrBinary(std::istream &in);

/** Read a binary CSR file; @throws std::invalid_argument on errors. */
Csr readCsrBinaryFile(const std::string &path);

} // namespace slo::io
