#include "matrix/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "matrix/rng.hpp"

namespace slo::gen
{

namespace
{

/** Finalize an undirected edge list: symmetrize, dedup, random values. */
Csr
finalize(Coo &&coo, std::uint64_t seed)
{
    Coo sym(coo.numRows(), coo.numCols());
    sym.reserve(coo.numEntries() * 2);
    for (Offset i = 0; i < coo.numEntries(); ++i) {
        const Triplet t = coo.at(i);
        if (t.row == t.col)
            continue;
        sym.add(t.row, t.col, t.val);
        sym.add(t.col, t.row, t.val);
    }
    // Duplicate edges are collapsed to a single entry (pattern semantics):
    // build with Keep after manual dedup via Sum would change values, so
    // build with Sum and then overwrite values deterministically.
    Csr csr = Csr::fromCoo(sym, DuplicatePolicy::Sum);
    return withRandomValues(csr, seed ^ 0xabcdef0123456789ULL);
}

} // namespace

Csr
erdosRenyi(Index n, double avg_degree, std::uint64_t seed)
{
    require(n > 0, "erdosRenyi: n must be positive");
    require(avg_degree >= 0.0, "erdosRenyi: negative degree");
    Rng rng(seed);
    // Undirected edges: n*avg_degree/2 samples.
    const auto num_edges =
        static_cast<Offset>(static_cast<double>(n) * avg_degree / 2.0);
    Coo coo(n, n);
    coo.reserve(num_edges);
    for (Offset e = 0; e < num_edges; ++e) {
        auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        auto v = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        if (u != v)
            coo.add(u, v);
    }
    return finalize(std::move(coo), seed);
}

Csr
rmat(int scale, double avg_degree, double a, double b, double c,
     std::uint64_t seed)
{
    require(scale > 0 && scale < 31, "rmat: scale out of range");
    require(a + b + c <= 1.0 + 1e-9, "rmat: probabilities exceed 1");
    const Index n = Index{1} << scale;
    const auto num_edges =
        static_cast<Offset>(static_cast<double>(n) * avg_degree / 2.0);
    Rng rng(seed);
    Coo coo(n, n);
    coo.reserve(num_edges);
    for (Offset e = 0; e < num_edges; ++e) {
        Index row = 0;
        Index col = 0;
        for (int level = 0; level < scale; ++level) {
            // Graph500-style parameter noise keeps degrees from being
            // perfectly deterministic per quadrant.
            const double noise = 0.9 + 0.2 * rng.uniform();
            const double an = a * noise;
            const double bn = b * noise;
            const double cn = c * noise;
            const double dn = (1.0 - a - b - c) * noise;
            const double total = an + bn + cn + dn;
            const double pick = rng.uniform() * total;
            row <<= 1;
            col <<= 1;
            if (pick < an) {
                // top-left quadrant
            } else if (pick < an + bn) {
                col |= 1;
            } else if (pick < an + bn + cn) {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        if (row != col)
            coo.add(row, col);
    }
    return finalize(std::move(coo), seed);
}

Csr
rmatSocial(int scale, double avg_degree, std::uint64_t seed)
{
    return rmat(scale, avg_degree, 0.57, 0.19, 0.19, seed);
}

Csr
plantedPartition(Index n, Index num_communities, double intra_degree,
                 double inter_degree, std::uint64_t seed)
{
    require(n > 0 && num_communities > 0 && num_communities <= n,
            "plantedPartition: bad sizes");
    Rng rng(seed);
    const Index block = (n + num_communities - 1) / num_communities;
    Coo coo(n, n);
    const auto intra_edges = static_cast<Offset>(
        static_cast<double>(n) * intra_degree / 2.0);
    const auto inter_edges = static_cast<Offset>(
        static_cast<double>(n) * inter_degree / 2.0);
    coo.reserve(intra_edges + inter_edges);
    for (Offset e = 0; e < intra_edges; ++e) {
        auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        const Index community = u / block;
        const Index lo = community * block;
        const Index hi = std::min<Index>(lo + block, n);
        auto v = static_cast<Index>(
            lo + rng.below(static_cast<std::uint64_t>(hi - lo)));
        if (u != v)
            coo.add(u, v);
    }
    for (Offset e = 0; e < inter_edges; ++e) {
        auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        auto v = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        if (u != v)
            coo.add(u, v);
    }
    return finalize(std::move(coo), seed);
}

Csr
hierarchicalCommunity(Index n, int branching, int levels,
                      double avg_degree, double level_decay,
                      std::uint64_t seed)
{
    require(n > 0 && branching >= 2 && levels >= 1,
            "hierarchicalCommunity: bad shape");
    require(level_decay > 0.0 && level_decay < 1.0,
            "hierarchicalCommunity: decay must be in (0,1)");
    Rng rng(seed);
    const auto num_edges =
        static_cast<Offset>(static_cast<double>(n) * avg_degree / 2.0);
    Coo coo(n, n);
    coo.reserve(num_edges);

    // Block size at level l (level 0 = innermost, smallest block;
    // level levels-1 = the whole graph).
    std::vector<Index> block_size(static_cast<std::size_t>(levels));
    {
        double size = static_cast<double>(n);
        for (int l = levels - 1; l >= 0; --l) {
            block_size[static_cast<std::size_t>(l)] =
                std::max<Index>(2, static_cast<Index>(std::ceil(size)));
            size /= branching;
        }
    }

    for (Offset e = 0; e < num_edges; ++e) {
        auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        // Geometric level choice: level 0 with prob (1-decay), etc.
        int level = 0;
        while (level + 1 < levels && rng.chance(level_decay))
            ++level;
        const Index bs = block_size[static_cast<std::size_t>(level)];
        const Index lo = (u / bs) * bs;
        const Index hi = std::min<Index>(lo + bs, n);
        auto v = static_cast<Index>(
            lo + rng.below(static_cast<std::uint64_t>(hi - lo)));
        if (u != v)
            coo.add(u, v);
    }
    return finalize(std::move(coo), seed);
}

Csr
barabasiAlbert(Index n, Index edges_per_node, std::uint64_t seed)
{
    require(n > 2 && edges_per_node >= 1, "barabasiAlbert: bad shape");
    Rng rng(seed);
    Coo coo(n, n);
    coo.reserve(static_cast<Offset>(n) * edges_per_node);
    // Endpoint multiset: sampling uniformly from past endpoints implements
    // preferential attachment.
    std::vector<Index> endpoints;
    endpoints.reserve(static_cast<std::size_t>(n) * 2 *
                      static_cast<std::size_t>(edges_per_node));
    coo.add(0, 1);
    endpoints.push_back(0);
    endpoints.push_back(1);
    for (Index u = 2; u < n; ++u) {
        for (Index k = 0; k < edges_per_node; ++k) {
            auto pick = static_cast<std::size_t>(
                rng.below(endpoints.size()));
            const Index v = endpoints[pick];
            if (v != u) {
                coo.add(u, v);
                endpoints.push_back(u);
                endpoints.push_back(v);
            }
        }
    }
    return finalize(std::move(coo), seed);
}

Csr
grid2d(Index width, Index height, double shortcut_prob, std::uint64_t seed)
{
    require(width > 0 && height > 0, "grid2d: bad shape");
    const Index n = width * height;
    Rng rng(seed);
    Coo coo(n, n);
    coo.reserve(static_cast<Offset>(n) * 3);
    auto id = [width](Index x, Index y) { return y * width + x; };
    for (Index y = 0; y < height; ++y) {
        for (Index x = 0; x < width; ++x) {
            const Index u = id(x, y);
            if (x + 1 < width)
                coo.add(u, id(x + 1, y));
            if (y + 1 < height)
                coo.add(u, id(x, y + 1));
            if (shortcut_prob > 0.0 && rng.chance(shortcut_prob)) {
                auto v = static_cast<Index>(
                    rng.below(static_cast<std::uint64_t>(n)));
                if (v != u)
                    coo.add(u, v);
            }
        }
    }
    return finalize(std::move(coo), seed);
}

Csr
stencil3d(Index nx, Index ny, Index nz, int points, std::uint64_t seed)
{
    require(nx > 0 && ny > 0 && nz > 0, "stencil3d: bad shape");
    require(points == 7 || points == 27, "stencil3d: points must be 7|27");
    const Index n = nx * ny * nz;
    Coo coo(n, n);
    auto id = [nx, ny](Index x, Index y, Index z) {
        return (z * ny + y) * nx + x;
    };
    for (Index z = 0; z < nz; ++z) {
        for (Index y = 0; y < ny; ++y) {
            for (Index x = 0; x < nx; ++x) {
                const Index u = id(x, y, z);
                for (Index dz = -1; dz <= 1; ++dz) {
                    for (Index dy = -1; dy <= 1; ++dy) {
                        for (Index dx = -1; dx <= 1; ++dx) {
                            if (dx == 0 && dy == 0 && dz == 0)
                                continue;
                            if (points == 7 &&
                                std::abs(dx) + std::abs(dy) +
                                        std::abs(dz) != 1) {
                                continue;
                            }
                            const Index X = x + dx;
                            const Index Y = y + dy;
                            const Index Z = z + dz;
                            if (X < 0 || X >= nx || Y < 0 || Y >= ny ||
                                Z < 0 || Z >= nz) {
                                continue;
                            }
                            const Index v = id(X, Y, Z);
                            if (u < v) // add each undirected edge once
                                coo.add(u, v);
                        }
                    }
                }
            }
        }
    }
    return finalize(std::move(coo), seed);
}

Csr
banded(Index n, Index half_bandwidth, double fill, std::uint64_t seed)
{
    require(n > 0 && half_bandwidth > 0, "banded: bad shape");
    require(fill > 0.0 && fill <= 1.0, "banded: fill must be in (0,1]");
    Rng rng(seed);
    Coo coo(n, n);
    for (Index r = 0; r < n; ++r) {
        const Index hi = std::min<Index>(n - 1, r + half_bandwidth);
        for (Index c = r + 1; c <= hi; ++c) {
            if (rng.chance(fill))
                coo.add(r, c);
        }
    }
    return finalize(std::move(coo), seed);
}

Csr
chainWithBranches(Index n, double branch_prob, std::uint64_t seed)
{
    require(n > 1, "chainWithBranches: need at least 2 nodes");
    Rng rng(seed);
    Coo coo(n, n);
    coo.reserve(static_cast<Offset>(n) + n / 8);
    for (Index u = 0; u + 1 < n; ++u)
        coo.add(u, u + 1);
    for (Index u = 0; u < n; ++u) {
        if (rng.chance(branch_prob)) {
            // Branch to a node a short hop away: preserves the k-mer
            // graph's high diameter.
            const Index span = 64;
            auto offset = static_cast<Index>(rng.below(span)) + 2;
            const Index v = (u + offset < n) ? u + offset : u - offset;
            if (v >= 0 && v < n && v != u)
                coo.add(u, v);
        }
    }
    return finalize(std::move(coo), seed);
}

Csr
hubStar(Index n, Index num_hubs, double hub_coverage, double tail_degree,
        std::uint64_t seed)
{
    require(n > 2 && num_hubs >= 1 && num_hubs < n, "hubStar: bad shape");
    require(hub_coverage > 0.0 && hub_coverage <= 1.0,
            "hubStar: coverage must be in (0,1]");
    Rng rng(seed);
    Coo coo(n, n);
    const auto covered = static_cast<Index>(
        static_cast<double>(n) * hub_coverage);
    coo.reserve(static_cast<Offset>(covered) * num_hubs +
                static_cast<Offset>(static_cast<double>(n) * tail_degree));
    // Hubs occupy the first ids in natural order (packet-trace servers).
    // Each hub connects to exactly `covered` distinct endpoints (partial
    // Fisher-Yates), so one hub at coverage 0.95 really spans 95% of the
    // graph — the degenerate single-community case of Sec. V-B.
    std::vector<Index> ids(static_cast<std::size_t>(n));
    for (Index h = 0; h < num_hubs; ++h) {
        std::iota(ids.begin(), ids.end(), Index{0});
        for (Index i = 0; i < covered; ++i) {
            const auto j = static_cast<std::size_t>(i) +
                           static_cast<std::size_t>(rng.below(
                               static_cast<std::uint64_t>(n - i)));
            std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
            const Index v = ids[static_cast<std::size_t>(i)];
            if (v != h)
                coo.add(h, v);
        }
    }
    const auto tail_edges = static_cast<Offset>(
        static_cast<double>(n) * tail_degree / 2.0);
    for (Offset e = 0; e < tail_edges; ++e) {
        auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        auto v = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
        if (u != v)
            coo.add(u, v);
    }
    return finalize(std::move(coo), seed);
}

Csr
temporalInteraction(Index n, Index num_communities, double intra_degree,
                    double hub_fraction, double hub_degree,
                    std::uint64_t seed)
{
    require(hub_fraction >= 0.0 && hub_fraction < 1.0,
            "temporalInteraction: bad hub fraction");
    Csr base = plantedPartition(n, num_communities, intra_degree,
                                /*inter_degree=*/0.2, seed);
    // Hub overlay: a small set of "active users" touch random nodes.
    Rng rng(seed ^ 0x7e3a1b5c9d2f4e68ULL);
    const auto num_hubs = static_cast<Index>(
        static_cast<double>(n) * hub_fraction);
    Coo coo(n, n);
    for (Index h = 0; h < std::max<Index>(num_hubs, 1); ++h) {
        // Spread hubs across the id space so they hit many communities.
        auto hub = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(n)));
        const auto edges = static_cast<Offset>(hub_degree);
        for (Offset e = 0; e < edges; ++e) {
            auto v = static_cast<Index>(
                rng.below(static_cast<std::uint64_t>(n)));
            if (v != hub)
                coo.add(hub, v);
        }
    }
    Csr hubs = finalize(std::move(coo), seed ^ 0x1111);
    return overlay(base, hubs);
}

Csr
overlay(const Csr &a, const Csr &b)
{
    require(a.numRows() == b.numRows() && a.numCols() == b.numCols(),
            "overlay: dimension mismatch");
    Coo coo(a.numRows(), a.numCols());
    coo.reserve(a.numNonZeros() + b.numNonZeros());
    for (Index r = 0; r < a.numRows(); ++r) {
        auto ai = a.rowIndices(r);
        auto av = a.rowValues(r);
        for (std::size_t i = 0; i < ai.size(); ++i)
            coo.add(r, ai[i], av[i]);
        auto bi = b.rowIndices(r);
        auto bv = b.rowValues(r);
        for (std::size_t i = 0; i < bi.size(); ++i) {
            if (!a.hasEntry(r, bi[i]))
                coo.add(r, bi[i], bv[i]);
        }
    }
    return Csr::fromCoo(coo, DuplicatePolicy::Keep);
}

Csr
withRandomValues(const Csr &matrix, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> values(
        static_cast<std::size_t>(matrix.numNonZeros()));
    for (auto &v : values)
        v = static_cast<Value>(rng.uniform()) + 1e-3f;
    return Csr(matrix.numRows(), matrix.numCols(), matrix.rowOffsets(),
               matrix.colIndices(), std::move(values));
}

} // namespace slo::gen
