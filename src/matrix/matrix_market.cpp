#include "matrix/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "check/checked_cast.hpp"

namespace slo::io
{

namespace
{

std::string
toLower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return text;
}

} // namespace

Coo
readMatrixMarket(std::istream &in)
{
    std::string line;
    require(static_cast<bool>(std::getline(in, line)),
            "MatrixMarket: empty stream");

    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    require(banner == "%%MatrixMarket",
            "MatrixMarket: missing %%MatrixMarket banner");
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    require(object == "matrix", "MatrixMarket: object must be 'matrix'");
    require(format == "coordinate",
            "MatrixMarket: only 'coordinate' format is supported");
    require(field == "real" || field == "integer" || field == "pattern" ||
                field == "double",
            "MatrixMarket: unsupported field type: " + field);
    require(symmetry == "general" || symmetry == "symmetric" ||
                symmetry == "skew-symmetric",
            "MatrixMarket: unsupported symmetry: " + symmetry);
    const bool pattern = (field == "pattern");
    const bool mirror = (symmetry != "general");

    // Skip comment lines.
    do {
        require(static_cast<bool>(std::getline(in, line)),
                "MatrixMarket: missing size line");
    } while (!line.empty() && line[0] == '%');

    std::istringstream size_line(line);
    long long rows = 0, cols = 0, entries = 0;
    size_line >> rows >> cols >> entries;
    require(rows > 0 && cols > 0 && entries >= 0,
            "MatrixMarket: bad size line");

    Coo coo(checkedCast<Index>(rows), checkedCast<Index>(cols));
    coo.reserve(mirror ? entries * 2 : entries);
    for (long long i = 0; i < entries; ++i) {
        require(static_cast<bool>(std::getline(in, line)),
                "MatrixMarket: truncated entry list");
        std::istringstream entry(line);
        long long r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        require(!entry.fail(), "MatrixMarket: malformed entry");
        if (!pattern) {
            entry >> v;
            require(!entry.fail(), "MatrixMarket: malformed value");
        }
        require(r >= 1 && r <= rows && c >= 1 && c <= cols,
                "MatrixMarket: entry out of bounds");
        const auto row = static_cast<Index>(r - 1);
        const auto col = static_cast<Index>(c - 1);
        const auto val = static_cast<Value>(v);
        coo.add(row, col, val);
        if (mirror && row != col) {
            coo.add(col, row,
                    symmetry == "skew-symmetric" ? -val : val);
        }
    }
    return coo;
}

Coo
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.is_open(), "MatrixMarket: cannot open " + path);
    return readMatrixMarket(in);
}

Csr
readCsrFromMatrixMarketFile(const std::string &path)
{
    return Csr::fromCoo(readMatrixMarketFile(path),
                        DuplicatePolicy::Sum);
}

void
writeMatrixMarket(std::ostream &out, const Csr &matrix)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by slo (ISPASS'23 matrix-reordering reproduction)\n";
    out << matrix.numRows() << ' ' << matrix.numCols() << ' '
        << matrix.numNonZeros() << '\n';
    for (Index r = 0; r < matrix.numRows(); ++r) {
        auto idx = matrix.rowIndices(r);
        auto val = matrix.rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            out << (r + 1) << ' ' << (idx[i] + 1) << ' ' << val[i]
                << '\n';
        }
    }
}

void
writeMatrixMarketFile(const std::string &path, const Csr &matrix)
{
    std::ofstream out(path);
    require(out.is_open(), "MatrixMarket: cannot open " + path);
    writeMatrixMarket(out, matrix);
    require(static_cast<bool>(out), "MatrixMarket: write failed: " + path);
}

Coo
readEdgeList(std::istream &in)
{
    std::vector<Index> sources;
    std::vector<Index> targets;
    std::vector<Value> weights;
    long long max_id = -1;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream entry(line);
        long long src = 0, dst = 0;
        double weight = 1.0;
        entry >> src >> dst;
        if (entry.fail())
            fatal("edge list: malformed line: " + line);
        entry >> weight; // optional third column
        require(src >= 0 && dst >= 0,
                "edge list: ids must be non-negative");
        sources.push_back(checkedCast<Index>(src));
        targets.push_back(checkedCast<Index>(dst));
        weights.push_back(static_cast<Value>(
            entry.fail() ? 1.0 : weight));
        max_id = std::max({max_id, src, dst});
    }
    const auto n = checkedCast<Index>(max_id + 1);
    Coo coo(n, n);
    coo.reserve(static_cast<Offset>(sources.size()));
    for (std::size_t i = 0; i < sources.size(); ++i)
        coo.add(sources[i], targets[i], weights[i]);
    return coo;
}

Coo
readEdgeListFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.is_open(), "edge list: cannot open " + path);
    return readEdgeList(in);
}

} // namespace slo::io
