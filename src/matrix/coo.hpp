/**
 * @file
 * Coordinate-format (COO) sparse matrix.
 *
 * COO is the interchange format: generators emit COO, file readers parse
 * into COO, and Csr::fromCoo converts it into the kernel-facing format.
 * The cuSPARSE SpMV-COO kernel modelled in Table IV also consumes this
 * layout (three parallel arrays sorted by row).
 */

#pragma once

#include <vector>

#include "matrix/types.hpp"

namespace slo
{

/** A single (row, col, value) entry. */
struct Triplet
{
    Index row = 0;
    Index col = 0;
    Value val = 1.0f;

    bool operator==(const Triplet &other) const = default;
};

/**
 * Coordinate-format sparse matrix: parallel row/col/value arrays.
 *
 * Invariants maintained by the mutating API: rows/cols/vals always have
 * identical length and all coordinates are within [0, numRows) x
 * [0, numCols). Duplicates are allowed; Csr::fromCoo combines them.
 */
class Coo
{
  public:
    Coo() = default;

    /** Create an empty matrix with the given dimensions. */
    Coo(Index num_rows, Index num_cols);

    Index numRows() const { return numRows_; }
    Index numCols() const { return numCols_; }
    Offset numEntries() const { return static_cast<Offset>(rows_.size()); }
    bool empty() const { return rows_.empty(); }

    const std::vector<Index> &rows() const { return rows_; }
    const std::vector<Index> &cols() const { return cols_; }
    const std::vector<Value> &vals() const { return vals_; }

    /** Append one entry; bounds-checked. */
    void add(Index row, Index col, Value val = 1.0f);

    /** Append both (r,c) and (c,r); bounds-checked. */
    void addSymmetric(Index row, Index col, Value val = 1.0f);

    /** Entry at position i. */
    Triplet at(Offset i) const;

    /** Reserve storage for n entries. */
    void reserve(Offset n);

    /**
     * Sort entries by (row, col). Stable with respect to duplicate
     * coordinates so value combination order is deterministic.
     */
    void sortRowMajor();

    /** @return true if entries are sorted by (row, col). */
    bool isRowMajorSorted() const;

    /** Swap row and column arrays (transpose in place). */
    void transposeInPlace();

    bool operator==(const Coo &other) const = default;

  private:
    Index numRows_ = 0;
    Index numCols_ = 0;
    std::vector<Index> rows_;
    std::vector<Index> cols_;
    std::vector<Value> vals_;
};

} // namespace slo
