/**
 * @file
 * Compressed Sparse Row (CSR) matrix — the kernel-facing format.
 *
 * This is the format Algorithm 1 of the paper operates on: rowOffsets
 * (N+1 entries), coords (column index per non-zero) and values. All
 * reordering techniques consume and produce Csr instances; the symmetric
 * permutation (relabelling rows *and* columns with the same bijection) is
 * the operation matrix reordering performs.
 */

#pragma once

#include <span>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/permutation.hpp"
#include "matrix/types.hpp"

namespace slo
{

/** How Csr::fromCoo combines duplicate coordinates. */
enum class DuplicatePolicy
{
    Sum,  ///< values of duplicates are added (MatrixMarket convention)
    Keep, ///< duplicates kept as-is (multigraph semantics)
};

/** Compressed Sparse Row sparse matrix. */
class Csr
{
  public:
    Csr() = default;

    /**
     * Construct from raw arrays.
     *
     * @param num_rows number of rows (>= 0)
     * @param num_cols number of columns (>= 0)
     * @param row_offsets monotone array of num_rows+1 offsets
     * @param col_indices column index per non-zero, in [0, num_cols)
     * @param values one value per non-zero
     * @throws std::invalid_argument on any structural inconsistency
     */
    Csr(Index num_rows, Index num_cols,
        std::vector<Offset> row_offsets,
        std::vector<Index> col_indices,
        std::vector<Value> values);

    /** Build from COO; entries need not be sorted. */
    static Csr fromCoo(const Coo &coo,
                       DuplicatePolicy dup = DuplicatePolicy::Sum);

    Index numRows() const { return numRows_; }
    Index numCols() const { return numCols_; }
    Offset numNonZeros() const
    {
        return static_cast<Offset>(colIndices_.size());
    }
    bool empty() const { return colIndices_.empty(); }
    bool isSquare() const { return numRows_ == numCols_; }

    const std::vector<Offset> &rowOffsets() const { return rowOffsets_; }
    const std::vector<Index> &colIndices() const { return colIndices_; }
    const std::vector<Value> &values() const { return values_; }

    /** Out-degree (row length) of @p row. */
    Index
    degree(Index row) const
    {
        auto r = static_cast<std::size_t>(row);
        return static_cast<Index>(rowOffsets_[r + 1] - rowOffsets_[r]);
    }

    /** Column indices of @p row. */
    std::span<const Index>
    rowIndices(Index row) const
    {
        auto r = static_cast<std::size_t>(row);
        return {colIndices_.data() + rowOffsets_[r],
                static_cast<std::size_t>(rowOffsets_[r + 1] -
                                         rowOffsets_[r])};
    }

    /** Values of @p row. */
    std::span<const Value>
    rowValues(Index row) const
    {
        auto r = static_cast<std::size_t>(row);
        return {values_.data() + rowOffsets_[r],
                static_cast<std::size_t>(rowOffsets_[r + 1] -
                                         rowOffsets_[r])};
    }

    /** Mean non-zeros per row (the paper's "average degree"). */
    double averageDegree() const;

    /** @return true if (row, col) is a stored entry (row must be sorted). */
    bool hasEntry(Index row, Index col) const;

    /** A^T. */
    Csr transposed() const;

    /**
     * Pattern-symmetrized matrix: union of A and A^T entry sets with
     * duplicate coordinates combined (value from A wins, transposed-only
     * entries keep their value). Self loops are preserved once.
     * Reordering techniques operate on this undirected view.
     */
    Csr symmetrized() const;

    /** @return true if the non-zero *pattern* equals that of A^T. */
    bool isSymmetricPattern() const;

    /** Sort the column indices (and values) within every row. */
    void sortRows();

    /** @return true if every row's column indices are ascending. */
    bool rowsSorted() const;

    /**
     * Apply @p perm to rows and columns simultaneously — the matrix
     * reordering operation. B[p(r)][p(c)] = A[r][c]. Rows of the result
     * are sorted.
     */
    Csr permutedSymmetric(const Permutation &perm) const;

    /** Apply independent row and column permutations (rows sorted). */
    Csr permuted(const Permutation &row_perm,
                 const Permutation &col_perm) const;

    /** Convert back to (row-major sorted) COO. */
    Coo toCoo() const;

    /**
     * Keep only non-zeros for which @p keep(row, col) is true; dimensions
     * are unchanged. Used for the insular sub-matrix analysis (Fig. 6).
     */
    template <typename Pred>
    Csr
    filtered(Pred keep) const
    {
        Coo coo(numRows_, numCols_);
        for (Index r = 0; r < numRows_; ++r) {
            auto idx = rowIndices(r);
            auto val = rowValues(r);
            for (std::size_t i = 0; i < idx.size(); ++i) {
                if (keep(r, idx[i]))
                    coo.add(r, idx[i], val[i]);
            }
        }
        return fromCoo(coo, DuplicatePolicy::Keep);
    }

    bool operator==(const Csr &other) const = default;

  private:
    Index numRows_ = 0;
    Index numCols_ = 0;
    std::vector<Offset> rowOffsets_ = {0};
    std::vector<Index> colIndices_;
    std::vector<Value> values_;
};

} // namespace slo
