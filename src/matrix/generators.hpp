/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * These generators substitute for the paper's 50-matrix corpus (SuiteSparse
 * / Konect / Web Data Commons; see DESIGN.md, "Substitutions"). Each family
 * mimics one of the paper's source domains and is parameterized to span the
 * structural properties the paper shows matter: community structure,
 * degree-distribution skew, and average degree.
 *
 * All generators are deterministic in their seed, return square matrices
 * with a symmetric non-zero pattern (the undirected view reordering
 * operates on), exclude self loops, and emit vertices in the family's
 * "natural" order (e.g. communities contiguous, grids row-major). The
 * dataset layer decides what the publisher-visible ORIGINAL order is.
 */

#pragma once

#include <cstdint>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::gen
{

/**
 * Erdos-Renyi random graph: no community structure, no skew.
 * @param n nodes
 * @param avg_degree expected mean degree (undirected edge endpoints)
 */
Csr erdosRenyi(Index n, double avg_degree, std::uint64_t seed);

/**
 * RMAT / Kronecker power-law graph (social networks, web crawls, knowledge
 * graphs). Probabilities (a, b, c) follow the usual convention with
 * d = 1-a-b-c; larger a-vs-d imbalance yields stronger skew.
 *
 * @param scale log2 of the number of nodes
 * @param avg_degree expected mean degree
 */
Csr rmat(int scale, double avg_degree, double a, double b, double c,
         std::uint64_t seed);

/** Graph500 default RMAT parameters (a=.57, b=.19, c=.19). */
Csr rmatSocial(int scale, double avg_degree, std::uint64_t seed);

/**
 * Planted-partition / stochastic block model (strong flat community
 * structure). Nodes [0,n) are split into @p num_communities equal blocks,
 * laid out contiguously in the natural order.
 *
 * @param intra_degree expected within-community degree per node
 * @param inter_degree expected cross-community degree per node
 */
Csr plantedPartition(Index n, Index num_communities, double intra_degree,
                     double inter_degree, std::uint64_t seed);

/**
 * Hierarchical community graph (the structure RABBIT was designed for):
 * a balanced hierarchy of @p levels levels with @p branching children per
 * level; an edge picks a hierarchy level with geometric decay
 * @p level_decay and connects two nodes within the same block at that
 * level. level_decay in (0,1); smaller means edges concentrate in the
 * innermost (smallest) communities.
 */
Csr hierarchicalCommunity(Index n, int branching, int levels,
                          double avg_degree, double level_decay,
                          std::uint64_t seed);

/**
 * Barabasi-Albert preferential attachment (heavy-tailed degree
 * distribution with hubs, weak community structure).
 * @param edges_per_node edges added per arriving node
 */
Csr barabasiAlbert(Index n, Index edges_per_node, std::uint64_t seed);

/**
 * 2-D lattice with optional random shortcut edges (road networks).
 * Natural order is row-major, which already has excellent locality.
 * @param shortcut_prob probability per node of one extra random edge
 */
Csr grid2d(Index width, Index height, double shortcut_prob,
           std::uint64_t seed);

/**
 * 3-D finite-difference stencil (CFD / electromagnetics meshes):
 * 7-point (faces) or 27-point (faces+edges+corners) neighbourhoods.
 */
Csr stencil3d(Index nx, Index ny, Index nz, int points,
              std::uint64_t seed);

/**
 * Banded matrix with random fill inside the band (circuit simulation /
 * optimization KKT systems).
 * @param half_bandwidth entries lie within |r-c| <= half_bandwidth
 * @param fill fraction of in-band entries present
 */
Csr banded(Index n, Index half_bandwidth, double fill, std::uint64_t seed);

/**
 * Long chains with occasional branches (protein k-mer / DNA
 * electrophoresis graphs): average degree ~2, huge diameter.
 * @param branch_prob probability per node of one extra branch edge
 */
Csr chainWithBranches(Index n, double branch_prob, std::uint64_t seed);

/**
 * Hub-dominated star mixture (mawi-like packet traces): @p num_hubs hubs
 * each connect to exactly hub_coverage * n distinct endpoints; the
 * remaining nodes form a sparse random tail. Community detection degenerates on
 * this family (one giant community), reproducing the paper's mawi
 * anomaly (Sec. V-B).
 */
Csr hubStar(Index n, Index num_hubs, double hub_coverage,
            double tail_degree, std::uint64_t seed);

/**
 * Temporal-interaction graph (sx-stackoverflow-like): planted communities
 * overlaid with a power-law "active user" hub layer, yielding a large
 * insular core plus many hubs.
 * @param hub_fraction fraction of nodes in the hub overlay
 */
Csr temporalInteraction(Index n, Index num_communities,
                        double intra_degree, double hub_fraction,
                        double hub_degree, std::uint64_t seed);

/** Union of the non-zero patterns of two equally-sized matrices. */
Csr overlay(const Csr &a, const Csr &b);

/** Replace all values with deterministic pseudo-random values in (0, 1]. */
Csr withRandomValues(const Csr &matrix, std::uint64_t seed);

} // namespace slo::gen
