#include "matrix/csr.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "check/validators.hpp"

namespace slo
{

Csr::Csr(Index num_rows, Index num_cols,
         std::vector<Offset> row_offsets,
         std::vector<Index> col_indices,
         std::vector<Value> values)
    : numRows_(num_rows), numCols_(num_cols),
      rowOffsets_(std::move(row_offsets)),
      colIndices_(std::move(col_indices)),
      values_(std::move(values))
{
    check::checkCsr(num_rows, num_cols, rowOffsets_, colIndices_,
                    values_.size(), "Csr");
}

Csr
Csr::fromCoo(const Coo &coo, DuplicatePolicy dup)
{
    const Index num_rows = coo.numRows();
    const Index num_cols = coo.numCols();
    const auto &rows = coo.rows();
    const auto &cols = coo.cols();
    const auto &vals = coo.vals();

    // Coo::add bounds-checks each entry; re-verify the whole batch only
    // under full validation (a corrupt COO would scatter the counting
    // sort below out of bounds).
    if (check::enabled(check::Level::Full))
        check::checkCoo(num_rows, num_cols, rows, cols, vals.size(),
                        "Csr::fromCoo");

    // Counting sort by row.
    std::vector<Offset> offsets(static_cast<std::size_t>(num_rows) + 1, 0);
    for (Index r : rows)
        ++offsets[static_cast<std::size_t>(r) + 1];
    for (std::size_t r = 1; r < offsets.size(); ++r)
        offsets[r] += offsets[r - 1];

    std::vector<Index> col_indices(rows.size());
    std::vector<Value> values(rows.size());
    {
        std::vector<Offset> cursor(offsets.begin(), offsets.end() - 1);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            auto &pos = cursor[static_cast<std::size_t>(rows[i])];
            col_indices[static_cast<std::size_t>(pos)] = cols[i];
            values[static_cast<std::size_t>(pos)] = vals[i];
            ++pos;
        }
    }

    Csr csr(num_rows, num_cols, std::move(offsets),
            std::move(col_indices), std::move(values));
    csr.sortRows();

    if (dup == DuplicatePolicy::Keep)
        return csr;

    // Combine duplicates (sum values), compacting in place.
    std::vector<Offset> new_offsets(
        static_cast<std::size_t>(num_rows) + 1, 0);
    Offset write = 0;
    for (Index r = 0; r < num_rows; ++r) {
        const Offset begin = csr.rowOffsets_[static_cast<std::size_t>(r)];
        const Offset end = csr.rowOffsets_[static_cast<std::size_t>(r) + 1];
        const Offset row_start = write;
        for (Offset i = begin; i < end; ++i) {
            auto ii = static_cast<std::size_t>(i);
            auto wi = static_cast<std::size_t>(write);
            if (write > row_start &&
                csr.colIndices_[wi - 1] == csr.colIndices_[ii]) {
                csr.values_[wi - 1] += csr.values_[ii];
            } else {
                csr.colIndices_[wi] = csr.colIndices_[ii];
                csr.values_[wi] = csr.values_[ii];
                ++write;
            }
        }
        new_offsets[static_cast<std::size_t>(r) + 1] = write;
    }
    csr.colIndices_.resize(static_cast<std::size_t>(write));
    csr.values_.resize(static_cast<std::size_t>(write));
    csr.rowOffsets_ = std::move(new_offsets);
    return csr;
}

double
Csr::averageDegree() const
{
    if (numRows_ == 0)
        return 0.0;
    return static_cast<double>(numNonZeros()) /
           static_cast<double>(numRows_);
}

bool
Csr::hasEntry(Index row, Index col) const
{
    auto idx = rowIndices(row);
    return std::binary_search(idx.begin(), idx.end(), col);
}

Csr
Csr::transposed() const
{
    std::vector<Offset> offsets(static_cast<std::size_t>(numCols_) + 1, 0);
    for (Index col : colIndices_)
        ++offsets[static_cast<std::size_t>(col) + 1];
    for (std::size_t c = 1; c < offsets.size(); ++c)
        offsets[c] += offsets[c - 1];

    std::vector<Index> col_indices(colIndices_.size());
    std::vector<Value> values(values_.size());
    std::vector<Offset> cursor(offsets.begin(), offsets.end() - 1);
    for (Index r = 0; r < numRows_; ++r) {
        const Offset begin = rowOffsets_[static_cast<std::size_t>(r)];
        const Offset end = rowOffsets_[static_cast<std::size_t>(r) + 1];
        for (Offset i = begin; i < end; ++i) {
            auto ii = static_cast<std::size_t>(i);
            auto &pos = cursor[static_cast<std::size_t>(colIndices_[ii])];
            col_indices[static_cast<std::size_t>(pos)] = r;
            values[static_cast<std::size_t>(pos)] = values_[ii];
            ++pos;
        }
    }
    // Rows of the transpose come out sorted because we scan rows in order.
    return Csr(numCols_, numRows_, std::move(offsets),
               std::move(col_indices), std::move(values));
}

Csr
Csr::symmetrized() const
{
    require(isSquare(), "Csr::symmetrized: matrix must be square");
    const Csr t = transposed();
    Coo coo(numRows_, numCols_);
    coo.reserve(numNonZeros() * 2);
    for (Index r = 0; r < numRows_; ++r) {
        auto idx = rowIndices(r);
        auto val = rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i)
            coo.add(r, idx[i], val[i]);
        auto tidx = t.rowIndices(r);
        auto tval = t.rowValues(r);
        for (std::size_t i = 0; i < tidx.size(); ++i) {
            // Skip entries already present in A to keep A's value.
            if (!hasEntry(r, tidx[i]))
                coo.add(r, tidx[i], tval[i]);
        }
    }
    return fromCoo(coo, DuplicatePolicy::Keep);
}

bool
Csr::isSymmetricPattern() const
{
    if (!isSquare())
        return false;
    const Csr t = transposed();
    return t.colIndices_ == colIndices_ && t.rowOffsets_ == rowOffsets_;
}

void
Csr::sortRows()
{
    // Most rows are short, so the workhorse is an in-place stable
    // insertion sort on the parallel (column, value) arrays — no
    // per-row allocation (std::stable_sort grabs a temporary buffer
    // on every call, which dominated the permutation pipeline). Long
    // rows fall back to stable_sort on a buffer reused across rows.
    constexpr std::size_t kInsertionCutoff = 64;
    std::vector<std::pair<Index, Value>> buffer;
    for (Index r = 0; r < numRows_; ++r) {
        const Offset begin = rowOffsets_[static_cast<std::size_t>(r)];
        const Offset end = rowOffsets_[static_cast<std::size_t>(r) + 1];
        const auto len = static_cast<std::size_t>(end - begin);
        if (len < 2)
            continue;
        bool sorted = true;
        for (Offset i = begin + 1; i < end && sorted; ++i) {
            sorted = colIndices_[static_cast<std::size_t>(i - 1)] <=
                     colIndices_[static_cast<std::size_t>(i)];
        }
        if (sorted)
            continue;
        if (len <= kInsertionCutoff) {
            // Stable: equal columns never swap (strict > shifts).
            const auto b = static_cast<std::size_t>(begin);
            for (std::size_t i = b + 1; i < b + len; ++i) {
                const Index col = colIndices_[i];
                const Value val = values_[i];
                std::size_t j = i;
                while (j > b && colIndices_[j - 1] > col) {
                    colIndices_[j] = colIndices_[j - 1];
                    values_[j] = values_[j - 1];
                    --j;
                }
                colIndices_[j] = col;
                values_[j] = val;
            }
            continue;
        }
        buffer.resize(len);
        for (std::size_t i = 0; i < len; ++i) {
            auto src = static_cast<std::size_t>(begin) + i;
            buffer[i] = {colIndices_[src], values_[src]};
        }
        std::stable_sort(buffer.begin(), buffer.end(),
            [](const auto &a, const auto &b) {
                return a.first < b.first;
            });
        for (std::size_t i = 0; i < len; ++i) {
            auto dst = static_cast<std::size_t>(begin) + i;
            colIndices_[dst] = buffer[i].first;
            values_[dst] = buffer[i].second;
        }
    }
}

bool
Csr::rowsSorted() const
{
    for (Index r = 0; r < numRows_; ++r) {
        auto idx = rowIndices(r);
        for (std::size_t i = 1; i < idx.size(); ++i) {
            if (idx[i - 1] > idx[i])
                return false;
        }
    }
    return true;
}

Csr
Csr::permutedSymmetric(const Permutation &perm) const
{
    require(isSquare(),
            "Csr::permutedSymmetric: matrix must be square");
    require(perm.size() == numRows_,
            "Csr::permutedSymmetric: permutation size mismatch");
    return permuted(perm, perm);
}

Csr
Csr::permuted(const Permutation &row_perm,
              const Permutation &col_perm) const
{
    require(row_perm.size() == numRows_ && col_perm.size() == numCols_,
            "Csr::permuted: permutation size mismatch");

    // new row p(r) has the same length as old row r.
    std::vector<Offset> offsets(static_cast<std::size_t>(numRows_) + 1, 0);
    for (Index r = 0; r < numRows_; ++r) {
        offsets[static_cast<std::size_t>(row_perm.newId(r)) + 1] =
            degree(r);
    }
    for (std::size_t r = 1; r < offsets.size(); ++r)
        offsets[r] += offsets[r - 1];

    std::vector<Index> col_indices(colIndices_.size());
    std::vector<Value> values(values_.size());
    for (Index r = 0; r < numRows_; ++r) {
        const Index nr = row_perm.newId(r);
        Offset pos = offsets[static_cast<std::size_t>(nr)];
        auto idx = rowIndices(r);
        auto val = rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            col_indices[static_cast<std::size_t>(pos)] =
                col_perm.newId(idx[i]);
            values[static_cast<std::size_t>(pos)] = val[i];
            ++pos;
        }
    }

    Csr result(numRows_, numCols_, std::move(offsets),
               std::move(col_indices), std::move(values));
    result.sortRows();
    return result;
}

Coo
Csr::toCoo() const
{
    Coo coo(numRows_, numCols_);
    coo.reserve(numNonZeros());
    for (Index r = 0; r < numRows_; ++r) {
        auto idx = rowIndices(r);
        auto val = rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i)
            coo.add(r, idx[i], val[i]);
    }
    return coo;
}

} // namespace slo
