#include "matrix/permutation.hpp"

#include <numeric>
#include <utility>

#include "check/validators.hpp"
#include "matrix/rng.hpp"

namespace slo
{

Permutation::Permutation(std::vector<Index> new_ids)
    : newIds_(std::move(new_ids))
{
    check::checkPermutation(newIds_, -1, "Permutation");
}

Permutation
Permutation::identity(Index n)
{
    require(n >= 0, "Permutation::identity: negative size");
    Permutation p;
    p.newIds_.resize(static_cast<std::size_t>(n));
    std::iota(p.newIds_.begin(), p.newIds_.end(), Index{0});
    return p;
}

Permutation
Permutation::random(Index n, std::uint64_t seed)
{
    Permutation p = identity(n);
    Rng rng(seed);
    for (Index i = n - 1; i > 0; --i) {
        auto j = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(i) + 1));
        std::swap(p.newIds_[static_cast<std::size_t>(i)], p.newIds_[j]);
    }
    return p;
}

Permutation
Permutation::fromNewToOld(const std::vector<Index> &order)
{
    check::checkPermutation(order, -1, "Permutation::fromNewToOld");
    Permutation p;
    p.newIds_.resize(order.size());
    for (std::size_t new_id = 0; new_id < order.size(); ++new_id)
        p.newIds_[static_cast<std::size_t>(order[new_id])] =
            static_cast<Index>(new_id);
    return p;
}

bool
Permutation::isPermutation(const std::vector<Index> &new_ids)
{
    const auto n = new_ids.size();
    std::vector<bool> seen(n, false);
    for (Index id : new_ids) {
        if (id < 0 || static_cast<std::size_t>(id) >= n)
            return false;
        if (seen[static_cast<std::size_t>(id)])
            return false;
        seen[static_cast<std::size_t>(id)] = true;
    }
    return true;
}

std::vector<Index>
Permutation::newToOld() const
{
    std::vector<Index> order(newIds_.size());
    for (std::size_t old = 0; old < newIds_.size(); ++old)
        order[static_cast<std::size_t>(newIds_[old])] =
            static_cast<Index>(old);
    return order;
}

Permutation
Permutation::inverse() const
{
    Permutation p;
    p.newIds_ = newToOld();
    return p;
}

Permutation
Permutation::then(const Permutation &next) const
{
    require(size() == next.size(),
            "Permutation::then: size mismatch");
    Permutation p;
    p.newIds_.resize(newIds_.size());
    for (std::size_t old = 0; old < newIds_.size(); ++old)
        p.newIds_[old] = next.newId(newIds_[old]);
    return p;
}

bool
Permutation::isIdentity() const
{
    for (std::size_t i = 0; i < newIds_.size(); ++i) {
        if (newIds_[i] != static_cast<Index>(i))
            return false;
    }
    return true;
}

} // namespace slo
