/**
 * @file
 * Fundamental scalar types shared by every module in the library.
 *
 * The paper's traffic formulas (Sec. IV-B) assume 4-byte matrix values and
 * 4-byte CSR coordinates, so vertex/row/column ids are 32-bit and values are
 * single-precision floats. Non-zero *offsets* are 64-bit since the paper's
 * corpus reaches 2B non-zeros.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace slo
{

/** Row/column/vertex identifier (4 bytes, as assumed by traffic formulas). */
using Index = std::int32_t;

/** Offset into the non-zero arrays; 64-bit to allow > 2^31 non-zeros. */
using Offset = std::int64_t;

/** Matrix value type (4 bytes, as assumed by traffic formulas). */
using Value = float;

/** Size of one matrix element / coordinate in bytes. */
inline constexpr Offset kElemBytes = 4;

/**
 * Throw std::invalid_argument with a formatted message. Used for user-level
 * errors (bad arguments, malformed files) as opposed to internal invariant
 * violations, which use assert().
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw std::invalid_argument(msg);
}

/** Require a user-level precondition; throws std::invalid_argument. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

} // namespace slo
