/**
 * @file
 * GORDER (Wei et al., SIGMOD'16).
 *
 * Greedy ordering that maximizes a windowed locality score: a vertex is
 * appended if it shares many in-neighbours (or direct edges) with the w
 * most recently placed vertices. Broadly effective (Fig. 2) but with a
 * pre-processing cost that scales poorly with matrix size — the property
 * Fig. 9 demonstrates and that motivates preferring RABBIT/RABBIT++.
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** GORDER tuning knobs. */
struct GorderOptions
{
    /** Sliding-window size (the paper of record recommends w = 5). */
    int window = 5;

    /**
     * Skip the 2-hop candidate expansion through in-neighbours whose
     * out-degree exceeds this cap (0 = exact algorithm). This is a
     * documented approximation bounding the O(d^2) hub blow-up; it
     * leaves the objective for non-hub structure intact.
     */
    Index hubCap = 4096;
};

/** Compute the GORDER ordering of @p matrix. */
Permutation gorderOrder(const Csr &matrix,
                        const GorderOptions &options = {});

} // namespace slo::reorder
