#include "reorder/rabbit.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "reorder/check_order.hpp"

namespace slo::reorder
{

RabbitResult
rabbitOrder(const Csr &matrix, const community::AggregationOptions &options)
{
    require(matrix.isSquare(), "rabbitOrder: matrix must be square");
    SLO_SPAN("rabbit.order");
    const Csr graph = [&] {
        SLO_SPAN("rabbit.symmetrize");
        return matrix.isSymmetricPattern() ? matrix
                                           : matrix.symmetrized();
    }();
    community::AggregationResult agg = [&] {
        SLO_SPAN("rabbit.aggregate");
        return community::aggregateCommunities(graph, options);
    }();
    obs::counter("rabbit.merges").add(
        static_cast<std::uint64_t>(agg.numMerges));
    obs::gauge("rabbit.communities")
        .set(static_cast<double>(agg.clustering.numCommunities()));
    SLO_LOG_DEBUG("rabbit", "aggregated " << matrix.numRows()
                                          << " nodes into "
                                          << agg.clustering.numCommunities()
                                          << " communities ("
                                          << agg.numMerges << " merges)");
    SLO_SPAN("rabbit.dfs_order");
    RabbitResult result{
        checkedOrder(Permutation::fromNewToOld(agg.dendrogram.dfsOrder()),
                     matrix.numRows(), "rabbitOrder"),
        std::move(agg.clustering),
        std::move(agg.dendrogram),
    };
    return result;
}

} // namespace slo::reorder
