#include "reorder/rabbit.hpp"

#include <utility>

namespace slo::reorder
{

RabbitResult
rabbitOrder(const Csr &matrix, const community::AggregationOptions &options)
{
    require(matrix.isSquare(), "rabbitOrder: matrix must be square");
    const Csr graph = matrix.isSymmetricPattern() ? matrix
                                                  : matrix.symmetrized();
    community::AggregationResult agg =
        community::aggregateCommunities(graph, options);
    RabbitResult result{
        Permutation::fromNewToOld(agg.dendrogram.dfsOrder()),
        std::move(agg.clustering),
        std::move(agg.dendrogram),
    };
    return result;
}

} // namespace slo::reorder
