#include "reorder/degree_orders.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "matrix/properties.hpp"
#include "par/par.hpp"
#include "reorder/check_order.hpp"

namespace slo::reorder
{

namespace
{

std::vector<Index>
identityOrder(Index n)
{
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index{0});
    return order;
}

} // namespace

Permutation
degSortOrder(const Csr &matrix)
{
    const std::vector<Index> degrees = inDegrees(matrix);
    std::vector<Index> order = identityOrder(matrix.numRows());
    par::parallelStableSort(order.begin(), order.end(),
        [&degrees](Index a, Index b) {
            return degrees[static_cast<std::size_t>(a)] >
                   degrees[static_cast<std::size_t>(b)];
        });
    return checkedOrder(Permutation::fromNewToOld(order),
                        matrix.numRows(), "degSortOrder");
}

Permutation
dbgOrder(const Csr &matrix)
{
    const std::vector<Index> degrees = inDegrees(matrix);
    auto bucket_of = [](Index degree) -> int {
        if (degree <= 1)
            return 0;
        return static_cast<int>(
            std::bit_width(static_cast<std::uint32_t>(degree))) - 1;
    };
    std::vector<Index> order = identityOrder(matrix.numRows());
    // Stable sort by descending bucket: preserves relative order within
    // each degree range — DBG's defining property (parallelStableSort
    // keeps the same unique stable order at any thread count).
    par::parallelStableSort(order.begin(), order.end(),
        [&degrees, &bucket_of](Index a, Index b) {
            return bucket_of(degrees[static_cast<std::size_t>(a)]) >
                   bucket_of(degrees[static_cast<std::size_t>(b)]);
        });
    return checkedOrder(Permutation::fromNewToOld(order),
                        matrix.numRows(), "dbgOrder");
}

Permutation
hubSortOrder(const Csr &matrix)
{
    const std::vector<Index> degrees = inDegrees(matrix);
    const double avg = matrix.numRows() > 0
        ? static_cast<double>(matrix.numNonZeros()) /
              static_cast<double>(matrix.numRows())
        : 0.0;
    std::vector<Index> hubs;
    std::vector<Index> rest;
    for (Index v = 0; v < matrix.numRows(); ++v) {
        if (static_cast<double>(degrees[static_cast<std::size_t>(v)]) >
            avg) {
            hubs.push_back(v);
        } else {
            rest.push_back(v);
        }
    }
    par::parallelStableSort(hubs.begin(), hubs.end(),
        [&degrees](Index a, Index b) {
            return degrees[static_cast<std::size_t>(a)] >
                   degrees[static_cast<std::size_t>(b)];
        });
    hubs.insert(hubs.end(), rest.begin(), rest.end());
    return checkedOrder(Permutation::fromNewToOld(hubs),
                        matrix.numRows(), "hubSortOrder");
}

Permutation
hubClusterOrder(const Csr &matrix)
{
    const std::vector<Index> degrees = inDegrees(matrix);
    const double avg = matrix.numRows() > 0
        ? static_cast<double>(matrix.numNonZeros()) /
              static_cast<double>(matrix.numRows())
        : 0.0;
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(matrix.numRows()));
    for (Index v = 0; v < matrix.numRows(); ++v) {
        if (static_cast<double>(degrees[static_cast<std::size_t>(v)]) >
            avg) {
            order.push_back(v);
        }
    }
    for (Index v = 0; v < matrix.numRows(); ++v) {
        if (!(static_cast<double>(degrees[static_cast<std::size_t>(v)]) >
              avg)) {
            order.push_back(v);
        }
    }
    return checkedOrder(Permutation::fromNewToOld(order),
                        matrix.numRows(), "hubClusterOrder");
}

} // namespace slo::reorder
