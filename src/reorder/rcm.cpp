#include "reorder/rcm.hpp"

#include <algorithm>
#include <vector>

#include "reorder/check_order.hpp"

namespace slo::reorder
{

namespace
{

/**
 * One BFS from @p start over unvisited vertices; returns the traversal
 * order (ascending-degree neighbour visits) and the last-level vertices.
 */
struct BfsResult
{
    std::vector<Index> order;
    std::vector<Index> lastLevel;
};

BfsResult
bfsAscendingDegree(const Csr &graph, Index start,
                   std::vector<bool> *visited_out)
{
    BfsResult result;
    std::vector<bool> &visited = *visited_out;

    std::vector<Index> frontier = {start};
    visited[static_cast<std::size_t>(start)] = true;
    std::vector<Index> next;
    while (!frontier.empty()) {
        result.lastLevel = frontier;
        for (Index u : frontier) {
            result.order.push_back(u);
            // Collect unvisited neighbours in ascending-degree order.
            std::vector<Index> neighbours;
            for (Index v : graph.rowIndices(u)) {
                if (!visited[static_cast<std::size_t>(v)]) {
                    visited[static_cast<std::size_t>(v)] = true;
                    neighbours.push_back(v);
                }
            }
            std::stable_sort(neighbours.begin(), neighbours.end(),
                [&graph](Index a, Index b) {
                    return graph.degree(a) < graph.degree(b);
                });
            next.insert(next.end(), neighbours.begin(),
                        neighbours.end());
        }
        frontier = std::move(next);
        next.clear();
    }
    return result;
}

/** George-Liu pseudo-peripheral vertex heuristic. */
Index
pseudoPeripheral(const Csr &graph, Index start)
{
    Index current = start;
    std::size_t current_depth = 0;
    for (int iteration = 0; iteration < 8; ++iteration) {
        std::vector<bool> visited(
            static_cast<std::size_t>(graph.numRows()), false);
        // Count BFS depth from `current`.
        std::vector<Index> frontier = {current};
        visited[static_cast<std::size_t>(current)] = true;
        std::size_t depth = 0;
        std::vector<Index> last = frontier;
        std::vector<Index> next;
        while (!frontier.empty()) {
            for (Index u : frontier) {
                for (Index v : graph.rowIndices(u)) {
                    if (!visited[static_cast<std::size_t>(v)]) {
                        visited[static_cast<std::size_t>(v)] = true;
                        next.push_back(v);
                    }
                }
            }
            if (next.empty())
                break;
            last = next;
            frontier = std::move(next);
            next.clear();
            ++depth;
        }
        if (depth <= current_depth)
            break;
        current_depth = depth;
        // Lowest-degree vertex of the deepest level.
        Index best = last.front();
        for (Index v : last) {
            if (graph.degree(v) < graph.degree(best))
                best = v;
        }
        current = best;
    }
    return current;
}

} // namespace

Permutation
rcmOrder(const Csr &matrix)
{
    require(matrix.isSquare(), "rcmOrder: matrix must be square");
    const Csr graph = matrix.isSymmetricPattern() ? matrix
                                                  : matrix.symmetrized();
    const Index n = graph.numRows();
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));

    for (Index candidate = 0; candidate < n; ++candidate) {
        if (visited[static_cast<std::size_t>(candidate)])
            continue;
        const Index start = pseudoPeripheral(graph, candidate);
        BfsResult bfs = bfsAscendingDegree(graph, start, &visited);
        order.insert(order.end(), bfs.order.begin(), bfs.order.end());
    }
    std::reverse(order.begin(), order.end());
    return checkedOrder(Permutation::fromNewToOld(order), n,
                        "rcmOrder");
}

} // namespace slo::reorder
