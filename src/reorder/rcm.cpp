#include "reorder/rcm.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "reorder/check_order.hpp"

namespace slo::reorder
{

namespace
{

/** Bi-criteria candidates evaluated per George-Liu iteration. */
constexpr std::size_t kStartCandidates = 4;

/**
 * One BFS from @p start over vertices not yet committed to the order;
 * returns the traversal order (ascending-degree neighbour visits), the
 * last-level vertices, and the level structure's height and width.
 *
 * Visits are marked in @p stamp with @p tag instead of mutating
 * @p done, so trial traversals (start-node evaluation) and the
 * committed traversal share one code path: commit = copy the order and
 * flip @p done afterwards.
 */
struct BfsResult
{
    std::vector<Index> order;
    std::vector<Index> lastLevel;
    std::size_t height = 0;   ///< number of BFS levels
    std::size_t maxWidth = 0; ///< widest level
};

BfsResult
bfsAscendingDegree(const Csr &graph, Index start,
                   const std::vector<bool> &done,
                   std::vector<Index> &stamp, Index tag)
{
    BfsResult result;
    const auto seen = [&](Index v) {
        return done[static_cast<std::size_t>(v)] ||
               stamp[static_cast<std::size_t>(v)] == tag;
    };

    std::vector<Index> frontier = {start};
    stamp[static_cast<std::size_t>(start)] = tag;
    std::vector<Index> next;
    while (!frontier.empty()) {
        result.lastLevel = frontier;
        ++result.height;
        result.maxWidth = std::max(result.maxWidth, frontier.size());
        for (Index u : frontier) {
            result.order.push_back(u);
            // Collect unvisited neighbours in ascending-degree order.
            std::vector<Index> neighbours;
            for (Index v : graph.rowIndices(u)) {
                if (!seen(v)) {
                    stamp[static_cast<std::size_t>(v)] = tag;
                    neighbours.push_back(v);
                }
            }
            std::stable_sort(neighbours.begin(), neighbours.end(),
                [&graph](Index a, Index b) {
                    return graph.degree(a) < graph.degree(b);
                });
            next.insert(next.end(), neighbours.begin(),
                        neighbours.end());
        }
        frontier = std::move(next);
        next.clear();
    }
    return result;
}

/** George-Liu pseudo-peripheral vertex heuristic. */
Index
pseudoPeripheral(const Csr &graph, Index start)
{
    Index current = start;
    std::size_t current_depth = 0;
    for (int iteration = 0; iteration < 8; ++iteration) {
        std::vector<bool> visited(
            static_cast<std::size_t>(graph.numRows()), false);
        // Count BFS depth from `current`.
        std::vector<Index> frontier = {current};
        visited[static_cast<std::size_t>(current)] = true;
        std::size_t depth = 0;
        std::vector<Index> last = frontier;
        std::vector<Index> next;
        while (!frontier.empty()) {
            for (Index u : frontier) {
                for (Index v : graph.rowIndices(u)) {
                    if (!visited[static_cast<std::size_t>(v)]) {
                        visited[static_cast<std::size_t>(v)] = true;
                        next.push_back(v);
                    }
                }
            }
            if (next.empty())
                break;
            last = next;
            frontier = std::move(next);
            next.clear();
            ++depth;
        }
        if (depth <= current_depth)
            break;
        current_depth = depth;
        // Lowest-degree vertex of the deepest level.
        Index best = last.front();
        for (Index v : last) {
            if (graph.degree(v) < graph.degree(best))
                best = v;
        }
        current = best;
    }
    return current;
}

/** True when level structure (hA, wA) beats (hB, wB) bi-criterially. */
bool
betterLevelStructure(std::size_t height_a, std::size_t width_a,
                     std::size_t height_b, std::size_t width_b)
{
    return height_a > height_b ||
           (height_a == height_b && width_a < width_b);
}

/**
 * RCM++ bi-criteria starting node (arXiv 2409.04171): George-Liu style
 * iteration, but instead of jumping to the single lowest-degree vertex
 * of the deepest level, evaluate the level structures of a few
 * lowest-degree candidates and keep the one with the greatest height,
 * ties broken towards the smallest width.
 */
Index
biCriteriaStart(const Csr &graph, Index seed,
                const std::vector<bool> &done,
                std::vector<Index> &stamp, Index &tag)
{
    Index current = seed;
    BfsResult current_bfs =
        bfsAscendingDegree(graph, current, done, stamp, ++tag);
    for (int iteration = 0; iteration < 8; ++iteration) {
        std::vector<Index> candidates = current_bfs.lastLevel;
        std::sort(candidates.begin(), candidates.end(),
            [&graph](Index a, Index b) {
                return graph.degree(a) < graph.degree(b) ||
                       (graph.degree(a) == graph.degree(b) && a < b);
            });
        if (candidates.size() > kStartCandidates)
            candidates.resize(kStartCandidates);
        Index best = -1;
        BfsResult best_bfs;
        for (Index candidate : candidates) {
            if (candidate == current)
                continue;
            BfsResult bfs = bfsAscendingDegree(graph, candidate, done,
                                               stamp, ++tag);
            const bool improves =
                best < 0 ? betterLevelStructure(
                               bfs.height, bfs.maxWidth,
                               current_bfs.height, current_bfs.maxWidth)
                         : betterLevelStructure(bfs.height,
                                                bfs.maxWidth,
                                                best_bfs.height,
                                                best_bfs.maxWidth);
            if (improves) {
                best = candidate;
                best_bfs = std::move(bfs);
            }
        }
        if (best < 0)
            break;
        current = best;
        current_bfs = std::move(best_bfs);
    }
    return current;
}

/**
 * Bandwidth of one component's order, using positions local to the
 * component. Components occupy contiguous blocks of the final order
 * and the trailing global reversal preserves position differences, so
 * comparing local bandwidths compares the components' contributions to
 * the full matrix bandwidth.
 */
Index
componentBandwidth(const Csr &graph, const std::vector<Index> &order,
                   std::vector<Index> &pos)
{
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[static_cast<std::size_t>(order[i])] =
            static_cast<Index>(i);
    Index bandwidth = 0;
    for (Index u : order) {
        for (Index v : graph.rowIndices(u)) {
            const Index distance =
                std::abs(pos[static_cast<std::size_t>(u)] -
                         pos[static_cast<std::size_t>(v)]);
            bandwidth = std::max(bandwidth, distance);
        }
    }
    return bandwidth;
}

} // namespace

Permutation
rcmOrder(const Csr &matrix, RcmStart start)
{
    require(matrix.isSquare(), "rcmOrder: matrix must be square");
    const Csr graph = matrix.isSymmetricPattern() ? matrix
                                                  : matrix.symmetrized();
    const Index n = graph.numRows();
    std::vector<bool> done(static_cast<std::size_t>(n), false);
    std::vector<Index> stamp(static_cast<std::size_t>(n), -1);
    std::vector<Index> pos(static_cast<std::size_t>(n), 0);
    Index tag = -1;
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));

    for (Index seed = 0; seed < n; ++seed) {
        if (done[static_cast<std::size_t>(seed)])
            continue;
        const Index peripheral = pseudoPeripheral(graph, seed);
        BfsResult chosen = bfsAscendingDegree(graph, peripheral, done,
                                              stamp, ++tag);
        if (start == RcmStart::BiCriteria) {
            const Index bi_start =
                biCriteriaStart(graph, seed, done, stamp, tag);
            if (bi_start != peripheral) {
                BfsResult alternative = bfsAscendingDegree(
                    graph, bi_start, done, stamp, ++tag);
                // Keep-better-bandwidth fallback: the bi-criteria
                // start must earn its place, so RCM++ is never worse
                // than the classic heuristic (ties keep the classic).
                if (componentBandwidth(graph, alternative.order, pos) <
                    componentBandwidth(graph, chosen.order, pos))
                    chosen = std::move(alternative);
            }
        }
        for (Index v : chosen.order)
            done[static_cast<std::size_t>(v)] = true;
        order.insert(order.end(), chosen.order.begin(),
                     chosen.order.end());
    }
    std::reverse(order.begin(), order.end());
    return checkedOrder(Permutation::fromNewToOld(order), n,
                        "rcmOrder");
}

} // namespace slo::reorder
