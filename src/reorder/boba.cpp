#include "reorder/boba.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "par/par.hpp"
#include "reorder/check_order.hpp"

namespace slo::reorder
{

Permutation
bobaOrder(const Csr &matrix, const BobaOptions &options)
{
    require(matrix.isSquare(), "bobaOrder: matrix must be square");
    const Index n = matrix.numRows();
    const Offset nnz = matrix.numNonZeros();
    if (n == 0)
        return Permutation::identity(0);

    // Phase 1 — first appearance of each vertex as a column in the
    // non-zero stream. Concurrent CAS-min: the minimum is independent
    // of arrival order, so the result is identical at any thread
    // count. `nnz` doubles as the "never seen" sentinel (every real
    // position is smaller).
    std::vector<std::atomic<Offset>> first_atomic(
        static_cast<std::size_t>(n));
    par::parallelFor(Index{0}, n, [&](Index v) {
        first_atomic[static_cast<std::size_t>(v)].store(
            nnz, std::memory_order_relaxed);
    });
    const std::vector<Index> &cols = matrix.colIndices();
    par::parallelForChunks(
        0, static_cast<std::size_t>(nnz),
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                auto &slot =
                    first_atomic[static_cast<std::size_t>(cols[i])];
                const auto pos = static_cast<Offset>(i);
                Offset seen = slot.load(std::memory_order_relaxed);
                while (pos < seen &&
                       !slot.compare_exchange_weak(
                           seen, pos, std::memory_order_relaxed)) {
                }
            }
        });
    std::vector<Offset> first_pos(static_cast<std::size_t>(n));
    par::parallelFor(Index{0}, n, [&](Index v) {
        first_pos[static_cast<std::size_t>(v)] =
            first_atomic[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed);
    });

    // Phase 2 — chunked bucket placement. Vertices land in arrival
    // buckets (first position / grain; unseen vertices in one trailing
    // bucket) via per-(bucket, vertex-chunk) counts, a deterministic
    // exclusive scan for the slot offsets, and a parallel scatter into
    // disjoint slices. Within a bucket the scatter yields ascending
    // vertex id (chunks are scanned in order, ids ascend in a chunk).
    const Offset grain =
        options.bucketGrain > 0
            ? options.bucketGrain
            : std::max<Offset>(4096, (nnz + 4095) / 4096);
    const Offset buckets = nnz > 0 ? (nnz + grain - 1) / grain : 0;
    constexpr std::size_t kChunk = 8192;
    const std::size_t chunks =
        (static_cast<std::size_t>(n) + kChunk - 1) / kChunk;
    const auto bucketOf = [&](Index v) {
        const Offset pos = first_pos[static_cast<std::size_t>(v)];
        return pos < nnz ? pos / grain : buckets;
    };
    std::vector<Offset> slots(
        static_cast<std::size_t>(buckets + 1) * chunks, 0);
    par::parallelFor(
        0, chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * kChunk;
            const std::size_t hi =
                std::min(static_cast<std::size_t>(n), lo + kChunk);
            for (std::size_t v = lo; v < hi; ++v) {
                ++slots[static_cast<std::size_t>(
                            bucketOf(static_cast<Index>(v))) *
                            chunks +
                        c];
            }
        },
        {.grain = 1});
    par::parallelExclusiveScan(slots);
    // Start of the unseen tail, before the scatter advances the slot
    // cursors.
    const Offset seen_count =
        slots[static_cast<std::size_t>(buckets) * chunks];
    std::vector<Index> order(static_cast<std::size_t>(n));
    par::parallelFor(
        0, chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * kChunk;
            const std::size_t hi =
                std::min(static_cast<std::size_t>(n), lo + kChunk);
            for (std::size_t v = lo; v < hi; ++v) {
                // Each (bucket, chunk) cursor is touched by exactly
                // this chunk's task, so the scatter is race-free.
                Offset &cursor =
                    slots[static_cast<std::size_t>(
                              bucketOf(static_cast<Index>(v))) *
                              chunks +
                          c];
                order[static_cast<std::size_t>(cursor)] =
                    static_cast<Index>(v);
                ++cursor;
            }
        },
        {.grain = 1});

    // Phase 3 — refine the bucket-partitioned prefix to the exact
    // arrival order. First positions are unique per vertex, and the
    // bucket pass already left the range nearly sorted, so the stable
    // merge sort is cheap; the unseen tail is already in ascending id
    // order from the scatter.
    par::parallelStableSort(
        order.begin(),
        order.begin() + static_cast<std::ptrdiff_t>(seen_count),
        [&](Index a, Index b) {
            return first_pos[static_cast<std::size_t>(a)] <
                   first_pos[static_cast<std::size_t>(b)];
        });

    return checkedOrder(Permutation::fromNewToOld(order), n,
                        "bobaOrder");
}

} // namespace slo::reorder
