/**
 * @file
 * Common interface over all matrix-reordering techniques.
 *
 * Every technique consumes a square sparse matrix and produces a
 * Permutation that is applied to rows and columns simultaneously
 * (Csr::permutedSymmetric). The set of techniques matches the paper's
 * evaluation (Sec. IV-A): ORIGINAL, RANDOM, DEGSORT, DBG, GORDER, RABBIT,
 * plus the proposed RABBIT++ and the related-work baselines HUBSORT,
 * HUBCLUSTER, RCM, SLASHBURN and BOBA.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** Matrix reordering techniques. */
enum class Technique
{
    Original,   ///< the order the matrix arrived in (identity)
    Random,     ///< uniformly random relabelling
    DegSort,    ///< sort by descending in-degree
    Dbg,        ///< degree-based grouping (Faldu et al.)
    HubSort,    ///< hubs sorted by degree first, rest untouched
    HubCluster, ///< hubs grouped first (relative order kept), rest after
    Rcm,        ///< reverse Cuthill-McKee
    SlashBurn,  ///< iterative hub removal (Lim et al.)
    Gorder,     ///< windowed locality-score maximization (Wei et al.)
    Rabbit,     ///< community aggregation + dendrogram DFS (Arai et al.)
    RabbitPlusPlus, ///< this paper: RABBIT + insular & hub grouping
    Partition,  ///< multilevel k-way partitioning order (METIS-style)
    Boba,       ///< first-appearance arrival order (Drescher et al.)
};

/** How RABBIT++ orders hub nodes (Sec. VI-A, Fig. 5, Table II). */
enum class HubTreatment
{
    None,     ///< leave hubs where RABBIT put them
    HubSort,  ///< group hubs, sorted by descending in-degree
    HubGroup, ///< group hubs, preserving RABBIT's relative order
};

/** Options shared by all techniques (each uses the fields it needs). */
struct ReorderOptions
{
    /** Seed for RANDOM (and any tie-breaking shuffles). */
    std::uint64_t seed = 1;

    /** GORDER sliding-window size (w in Wei et al.; they recommend 5). */
    int gorderWindow = 5;

    /**
     * GORDER: skip enumerating 2-hop candidates through in-neighbours
     * with degree above this cap (documented approximation that bounds
     * the O(d^2) hub blow-up; 0 = no cap).
     */
    Index gorderHubCap = 256;

    /** SLASHBURN: hubs removed per iteration, as a fraction of n. */
    double slashburnK = 0.005;

    /** PARTITION: number of parts for the recursive bisection. */
    Index partitionParts = 64;

    /** RABBIT++: apply the insular-node grouping modification. */
    bool groupInsular = true;

    /** RABBIT++: hub treatment for (non-insular) nodes. */
    HubTreatment hubTreatment = HubTreatment::HubGroup;

    /**
     * RABBIT++: a node is a hub if degree > hubDegreeFactor * average
     * degree (the paper uses factor 1).
     */
    double hubDegreeFactor = 1.0;
};

/**
 * Compute the ordering for @p technique on @p matrix.
 * @param matrix square sparse matrix (directed patterns are symmetrized
 *        internally where the technique requires an undirected view)
 */
Permutation computeOrdering(Technique technique, const Csr &matrix,
                            const ReorderOptions &options = {});

/** Canonical upper-case name (as used in the paper's figures). */
std::string techniqueName(Technique technique);

/** Parse a canonical name; @throws std::invalid_argument if unknown. */
Technique techniqueFromName(const std::string &name);

/** The six techniques of the paper's main characterization (Fig. 2). */
std::vector<Technique> figure2Techniques();

/** All implemented techniques. */
std::vector<Technique> allTechniques();

} // namespace slo::reorder
