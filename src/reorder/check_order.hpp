/**
 * @file
 * Contract gate for permutations produced by reordering algorithms.
 *
 * Every technique returns through checkedOrder(), so a reordering bug
 * that emits a wrong-sized or non-bijective permutation is caught at
 * the boundary — tagged with the algorithm's name — instead of
 * silently reshuffling every downstream traffic number.
 */

#pragma once

#include <string>
#include <string_view>

#include "check/validators.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/**
 * Validate @p perm as the result of @p algorithm over @p expected_size
 * vertices. Size mismatch is checked at cheap level and up; the full
 * bijection is re-verified (beyond what the Permutation constructor
 * already did) only under SLO_CHECK_LEVEL=full.
 */
inline Permutation
checkedOrder(Permutation perm, Index expected_size,
             std::string_view algorithm)
{
    if (check::enabled(check::Level::Cheap)) {
        check::Context ctx;
        ctx.add("where", std::string(algorithm));
        ctx.add("size", perm.size());
        ctx.add("expected_size", expected_size);
        SLO_CHECK_CTX(perm.size() == expected_size, "check.reorder", ctx,
                      algorithm << ": permutation size " << perm.size()
                                << " != vertex count " << expected_size);
    }
    if (check::enabled(check::Level::Full))
        check::checkPermutation(perm.newIds(), expected_size, algorithm);
    return perm;
}

} // namespace slo::reorder
