#include "reorder/locality_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace slo::reorder
{

double
windowLocalityScore(const Csr &matrix, int window)
{
    require(window >= 1, "windowLocalityScore: window must be >= 1");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    double score = 0.0;
    std::deque<Index> recent;
    for (Index v = 0; v < matrix.numRows(); ++v) {
        auto iv = matrix.rowIndices(v);
        for (Index u : recent) {
            auto iu = matrix.rowIndices(u);
            // Shared neighbours via sorted-merge.
            std::size_t a = 0, b = 0;
            while (a < iu.size() && b < iv.size()) {
                if (iu[a] < iv[b]) {
                    ++a;
                } else if (iu[a] > iv[b]) {
                    ++b;
                } else {
                    score += 1.0;
                    ++a;
                    ++b;
                }
            }
            if (matrix.hasEntry(u, v) || matrix.hasEntry(v, u))
                score += 1.0;
        }
        recent.push_back(v);
        if (static_cast<int>(recent.size()) > window)
            recent.pop_front();
    }
    return score / static_cast<double>(matrix.numNonZeros());
}

double
averageGapLines(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "averageGapLines: elems_per_line must be >= 1");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    double total = 0.0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        for (Index c : matrix.rowIndices(r))
            total += std::abs(r - c);
    }
    return total / static_cast<double>(matrix.numNonZeros()) /
           static_cast<double>(elems_per_line);
}

double
sameLineFraction(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "sameLineFraction: elems_per_line must be >= 1");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    Offset same = 0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        auto idx = matrix.rowIndices(r);
        for (std::size_t i = 1; i < idx.size(); ++i) {
            if (idx[i] / elems_per_line == idx[i - 1] / elems_per_line)
                ++same;
        }
    }
    return static_cast<double>(same) / static_cast<double>(nnz);
}

double
distinctLinesPerNonZero(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "distinctLinesPerNonZero: elems_per_line must be >= 1");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    Offset distinct = 0;
    std::unordered_set<Index> lines;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        auto idx = matrix.rowIndices(r);
        if (idx.empty())
            continue;
        lines.clear();
        for (Index c : idx)
            lines.insert(c / elems_per_line);
        distinct += static_cast<Offset>(lines.size());
    }
    return static_cast<double>(distinct) / static_cast<double>(nnz);
}

} // namespace slo::reorder
