#include "reorder/locality_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "par/par.hpp"

namespace slo::reorder
{

double
windowLocalityScore(const Csr &matrix, int window)
{
    require(window >= 1, "windowLocalityScore: window must be >= 1");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    // Each row's contribution only reads rows [v-window, v), so rows
    // parallelize independently; every addend is 1.0, so the reduction
    // is a whole-number sum and exact at any chunking.
    const double score = par::parallelReduce(
        Index{0}, matrix.numRows(), /*grain=*/0, 0.0,
        [&matrix, window](Index begin, Index end) {
            double sum = 0.0;
            for (Index v = begin; v < end; ++v) {
                auto iv = matrix.rowIndices(v);
                const Index first =
                    std::max(Index{0}, v - static_cast<Index>(window));
                for (Index u = first; u < v; ++u) {
                    auto iu = matrix.rowIndices(u);
                    // Shared neighbours via sorted-merge.
                    std::size_t a = 0, b = 0;
                    while (a < iu.size() && b < iv.size()) {
                        if (iu[a] < iv[b]) {
                            ++a;
                        } else if (iu[a] > iv[b]) {
                            ++b;
                        } else {
                            sum += 1.0;
                            ++a;
                            ++b;
                        }
                    }
                    if (matrix.hasEntry(u, v) || matrix.hasEntry(v, u))
                        sum += 1.0;
                }
            }
            return sum;
        },
        [](double a, double b) { return a + b; });
    return score / static_cast<double>(matrix.numNonZeros());
}

double
averageGapLines(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "averageGapLines: elems_per_line must be >= 1");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    const double total = par::parallelReduce(
        Index{0}, matrix.numRows(), /*grain=*/0, 0.0,
        [&matrix](Index begin, Index end) {
            double sum = 0.0;
            for (Index r = begin; r < end; ++r) {
                for (Index c : matrix.rowIndices(r))
                    sum += std::abs(r - c);
            }
            return sum;
        },
        [](double a, double b) { return a + b; });
    return total / static_cast<double>(matrix.numNonZeros()) /
           static_cast<double>(elems_per_line);
}

double
sameLineFraction(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "sameLineFraction: elems_per_line must be >= 1");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    const Offset same = par::parallelReduce(
        Index{0}, matrix.numRows(), /*grain=*/0, Offset{0},
        [&matrix, elems_per_line](Index begin, Index end) {
            Offset sum = 0;
            for (Index r = begin; r < end; ++r) {
                auto idx = matrix.rowIndices(r);
                for (std::size_t i = 1; i < idx.size(); ++i) {
                    if (idx[i] / elems_per_line ==
                        idx[i - 1] / elems_per_line)
                        ++sum;
                }
            }
            return sum;
        },
        [](Offset a, Offset b) { return a + b; });
    return static_cast<double>(same) / static_cast<double>(nnz);
}

double
distinctLinesPerNonZero(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "distinctLinesPerNonZero: elems_per_line must be >= 1");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    const Offset distinct = par::parallelReduce(
        Index{0}, matrix.numRows(), /*grain=*/0, Offset{0},
        [&matrix, elems_per_line](Index begin, Index end) {
            Offset sum = 0;
            std::unordered_set<Index> lines;
            for (Index r = begin; r < end; ++r) {
                auto idx = matrix.rowIndices(r);
                if (idx.empty())
                    continue;
                lines.clear();
                for (Index c : idx)
                    lines.insert(c / elems_per_line);
                sum += static_cast<Offset>(lines.size());
            }
            return sum;
        },
        [](Offset a, Offset b) { return a + b; });
    return static_cast<double>(distinct) / static_cast<double>(nnz);
}

} // namespace slo::reorder
