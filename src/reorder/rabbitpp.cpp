#include "reorder/rabbitpp.hpp"

#include <algorithm>
#include <vector>

#include "community/metrics.hpp"
#include "matrix/properties.hpp"
#include "obs/obs.hpp"
#include "reorder/check_order.hpp"

namespace slo::reorder
{

RabbitPlusResult
rabbitPlusFromRabbit(const Csr &matrix, const RabbitResult &rabbit,
                     const RabbitPlusOptions &options)
{
    require(matrix.isSquare(), "rabbitPlus: matrix must be square");
    SLO_SPAN("rabbitpp.order");
    const Index n = matrix.numRows();
    require(rabbit.perm.size() == n,
            "rabbitPlus: rabbit result size mismatch");

    const Csr graph = matrix.isSymmetricPattern() ? matrix
                                                  : matrix.symmetrized();

    RabbitPlusResult result;
    result.clustering = rabbit.clustering;
    {
        SLO_SPAN("rabbitpp.insular_detect");
        result.insular =
            community::insularNodes(graph, rabbit.clustering);
    }
    if (!options.groupInsular) {
        // Without modification 1 nothing is treated as insular; the hub
        // treatment (if any) then applies to every node (Table II's
        // left half).
        result.insular.assign(static_cast<std::size_t>(n), false);
    }

    // Hubs: degree > factor * average degree of the undirected view.
    SLO_SPAN("rabbitpp.hub_detect_and_group");
    const std::vector<Index> degrees = inDegrees(graph);
    const double threshold = options.hubDegreeFactor *
                             graph.averageDegree();
    result.hub.assign(static_cast<std::size_t>(n), false);
    for (Index v = 0; v < n; ++v) {
        result.hub[static_cast<std::size_t>(v)] =
            static_cast<double>(degrees[static_cast<std::size_t>(v)]) >
            threshold;
    }

    for (Index v = 0; v < n; ++v) {
        if (result.insular[static_cast<std::size_t>(v)])
            ++result.numInsular;
    }

    // Walk vertices in RABBIT order and partition into the three groups,
    // preserving RABBIT's relative order inside each.
    const std::vector<Index> rabbit_order = rabbit.perm.newToOld();
    std::vector<Index> hubs;
    std::vector<Index> middle;
    std::vector<Index> insular_group;
    for (Index old_id : rabbit_order) {
        const auto v = static_cast<std::size_t>(old_id);
        if (result.insular[v]) {
            insular_group.push_back(old_id);
        } else if (options.hubTreatment != HubTreatment::None &&
                   result.hub[v]) {
            hubs.push_back(old_id);
        } else {
            middle.push_back(old_id);
        }
    }
    result.numHubs = static_cast<Index>(hubs.size());

    if (options.hubTreatment == HubTreatment::HubSort) {
        std::stable_sort(hubs.begin(), hubs.end(),
            [&degrees](Index a, Index b) {
                return degrees[static_cast<std::size_t>(a)] >
                       degrees[static_cast<std::size_t>(b)];
            });
    }

    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));
    order.insert(order.end(), hubs.begin(), hubs.end());
    order.insert(order.end(), middle.begin(), middle.end());
    order.insert(order.end(), insular_group.begin(), insular_group.end());
    result.perm = checkedOrder(Permutation::fromNewToOld(order), n,
                               "rabbitPlusOrder");
    obs::gauge("rabbitpp.num_insular")
        .set(static_cast<double>(result.numInsular));
    obs::gauge("rabbitpp.num_hubs")
        .set(static_cast<double>(result.numHubs));
    SLO_LOG_DEBUG("rabbitpp", "grouped " << result.numInsular
                                         << " insular + "
                                         << result.numHubs << " hub of "
                                         << n << " nodes");
    return result;
}

RabbitPlusResult
rabbitPlusOrder(const Csr &matrix, const RabbitPlusOptions &options)
{
    return rabbitPlusFromRabbit(matrix, rabbitOrder(matrix), options);
}

} // namespace slo::reorder
