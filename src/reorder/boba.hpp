/**
 * @file
 * BOBA-style one-pass parallel lightweight reordering.
 *
 * Batched-Order-By-Attachment (Drescher et al., arXiv 2306.10410):
 * relabel vertices by the position of their *first appearance* in the
 * non-zero stream — an arrival order that packs vertices referenced
 * together into nearby ids at near-sort speed, with none of the
 * community machinery of RABBIT. Our implementation is deterministic
 * at any thread count: first-appearance positions are an atomic min
 * (order-independent), bucket placement scatters through a fixed-grain
 * parallel exclusive scan, and ties inside a bucket resolve by
 * (position, vertex id).
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** Tuning knobs for the BOBA ordering. */
struct BobaOptions
{
    /**
     * Non-zero-stream positions per arrival bucket (0 = auto). Only a
     * placement granularity: the final order is the global sort by
     * first appearance whatever the grain.
     */
    Offset bucketGrain = 0;
};

/**
 * Order vertices by first appearance as a column in @p matrix's
 * non-zero stream; vertices never referenced go last, by id.
 */
Permutation bobaOrder(const Csr &matrix, const BobaOptions &options = {});

} // namespace slo::reorder
