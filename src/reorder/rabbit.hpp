/**
 * @file
 * RABBIT ordering (Arai et al., IPDPS'16).
 *
 * Community-based reordering: detect hierarchical communities via
 * incremental modularity-maximizing aggregation, then assign consecutive
 * ids by a depth-first traversal of the merge dendrogram so that every
 * community — at every level of the hierarchy — occupies a contiguous id
 * range. The paper's characterization (Sec. IV) finds this the most
 * broadly effective reordering technique.
 */

#pragma once

#include "community/aggregation.hpp"
#include "community/clustering.hpp"
#include "community/dendrogram.hpp"
#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** RABBIT ordering plus the community structure it discovered. */
struct RabbitResult
{
    Permutation perm;
    /** Top-level communities (over *original* vertex ids). */
    community::Clustering clustering;
    /** Full merge hierarchy (over original vertex ids). */
    community::Dendrogram dendrogram{0};
};

/**
 * Compute the RABBIT ordering of @p matrix (symmetrized internally when
 * the pattern is directed).
 */
RabbitResult rabbitOrder(
    const Csr &matrix,
    const community::AggregationOptions &options = {});

} // namespace slo::reorder
