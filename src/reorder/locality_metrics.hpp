/**
 * @file
 * Static locality metrics for orderings.
 *
 * The paper's related work (Sec. VII, "Analysis of matrix reordering":
 * Barik et al.'s gap measures, Esfahani et al.'s spatial-locality
 * metrics) estimates reordering quality *without* running a simulator.
 * This module implements the common estimators so users can screen
 * orderings cheaply; `ext_locality_metrics` checks how well each
 * estimator predicts the simulated DRAM traffic across the corpus.
 *
 * All metrics are computed over the matrix as ordered (apply the
 * permutation first) and, unless noted, are normalized to [0, 1] or to
 * per-edge units so they compare across matrices.
 */

#pragma once

#include "matrix/csr.hpp"

namespace slo::reorder
{

/**
 * GORDER's objective, normalized per edge: for each vertex in new-id
 * order, the number of neighbours-in-common (plus direct links) with
 * the previous @p window vertices, divided by nnz. Higher is better.
 */
double windowLocalityScore(const Csr &matrix, int window = 5);

/**
 * Average gap |r - c| over non-zeros, in *cache lines* of
 * @p elems_per_line vector elements (Barik et al.'s gap measure,
 * line-normalized). Lower is better.
 */
double averageGapLines(const Csr &matrix, int elems_per_line = 8);

/**
 * Fraction of non-zeros whose column lands in the same cache line as
 * the previous non-zero of the same row (spatial locality of the X
 * gathers within a row). Higher is better.
 */
double sameLineFraction(const Csr &matrix, int elems_per_line = 8);

/**
 * Estimated number of *distinct* X cache lines touched per row,
 * averaged over non-empty rows and divided by the row length (1/this
 * is the per-row line reuse). Lower is better.
 */
double distinctLinesPerNonZero(const Csr &matrix,
                               int elems_per_line = 8);

} // namespace slo::reorder
