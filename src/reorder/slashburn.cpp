#include "reorder/slashburn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "reorder/check_order.hpp"

namespace slo::reorder
{

Permutation
slashBurnOrder(const Csr &matrix, const SlashBurnOptions &options)
{
    require(matrix.isSquare(), "slashBurnOrder: matrix must be square");
    require(options.hubFraction > 0.0 && options.hubFraction <= 1.0,
            "slashBurnOrder: hubFraction must be in (0,1]");
    const Csr graph = matrix.isSymmetricPattern() ? matrix
                                                  : matrix.symmetrized();
    const Index n = graph.numRows();
    const auto k = std::max<Index>(
        1, static_cast<Index>(std::ceil(
               static_cast<double>(n) * options.hubFraction)));

    std::vector<bool> active(static_cast<std::size_t>(n), true);
    std::vector<Index> front;                 // hubs, iteration order
    std::vector<std::vector<Index>> spokes;   // per-iteration spokes
    std::vector<Index> degree(static_cast<std::size_t>(n), 0);
    Index active_count = n;

    while (active_count > k) {
        // Degrees within the active subgraph.
        for (Index v = 0; v < n; ++v) {
            if (!active[static_cast<std::size_t>(v)])
                continue;
            Index d = 0;
            for (Index u : graph.rowIndices(v)) {
                if (active[static_cast<std::size_t>(u)])
                    ++d;
            }
            degree[static_cast<std::size_t>(v)] = d;
        }

        // Slash: remove the k highest-degree active vertices.
        std::vector<Index> candidates;
        candidates.reserve(static_cast<std::size_t>(active_count));
        for (Index v = 0; v < n; ++v) {
            if (active[static_cast<std::size_t>(v)])
                candidates.push_back(v);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
            [&degree](Index a, Index b) {
                return degree[static_cast<std::size_t>(a)] >
                       degree[static_cast<std::size_t>(b)];
            });
        const auto num_hubs = std::min<std::size_t>(
            static_cast<std::size_t>(k), candidates.size());
        for (std::size_t i = 0; i < num_hubs; ++i) {
            front.push_back(candidates[i]);
            active[static_cast<std::size_t>(candidates[i])] = false;
            --active_count;
        }

        // Burn: connected components of the remainder; everything
        // outside the giant component moves to the tail.
        std::vector<Index> component(static_cast<std::size_t>(n), -1);
        std::vector<std::vector<Index>> comps;
        std::vector<Index> stack;
        for (Index v = 0; v < n; ++v) {
            if (!active[static_cast<std::size_t>(v)] ||
                component[static_cast<std::size_t>(v)] >= 0) {
                continue;
            }
            const auto id = static_cast<Index>(comps.size());
            comps.emplace_back();
            stack.push_back(v);
            component[static_cast<std::size_t>(v)] = id;
            while (!stack.empty()) {
                const Index u = stack.back();
                stack.pop_back();
                comps[static_cast<std::size_t>(id)].push_back(u);
                for (Index w : graph.rowIndices(u)) {
                    if (active[static_cast<std::size_t>(w)] &&
                        component[static_cast<std::size_t>(w)] < 0) {
                        component[static_cast<std::size_t>(w)] = id;
                        stack.push_back(w);
                    }
                }
            }
        }
        if (comps.empty())
            break;
        std::size_t giant = 0;
        for (std::size_t c = 1; c < comps.size(); ++c) {
            if (comps[c].size() > comps[giant].size())
                giant = c;
        }
        std::vector<Index> burned;
        for (std::size_t c = 0; c < comps.size(); ++c) {
            if (c == giant)
                continue;
            for (Index v : comps[c]) {
                burned.push_back(v);
                active[static_cast<std::size_t>(v)] = false;
                --active_count;
            }
        }
        spokes.push_back(std::move(burned));
        if (comps[giant].size() <= static_cast<std::size_t>(k))
            break;
    }

    // Final order: hubs, then the residual giant component, then spokes
    // in reverse iteration order (earliest spokes take the highest ids).
    std::vector<Index> order = std::move(front);
    for (Index v = 0; v < n; ++v) {
        if (active[static_cast<std::size_t>(v)])
            order.push_back(v);
    }
    for (auto it = spokes.rbegin(); it != spokes.rend(); ++it)
        order.insert(order.end(), it->begin(), it->end());
    return checkedOrder(Permutation::fromNewToOld(order), n,
                        "slashBurnOrder");
}

} // namespace slo::reorder
