#include "reorder/reorder.hpp"

#include <unordered_map>

#include "reorder/boba.hpp"
#include "reorder/check_order.hpp"
#include "reorder/degree_orders.hpp"
#include "reorder/gorder.hpp"
#include "reorder/rabbit.hpp"
#include "reorder/rabbitpp.hpp"
#include "reorder/rcm.hpp"
#include "reorder/slashburn.hpp"

#include "partition/partition.hpp"

namespace slo::reorder
{

Permutation
computeOrdering(Technique technique, const Csr &matrix,
                const ReorderOptions &options)
{
    require(matrix.isSquare(), "computeOrdering: matrix must be square");
    // Each case below returns through checkedOrder() inside its
    // implementation (or is trusted by construction: identity/random);
    // the dispatch itself re-tags the contract with the technique name
    // so a violation names what the experiment actually asked for.
    const auto checked = [&](Permutation perm) {
        return checkedOrder(std::move(perm), matrix.numRows(),
                            techniqueName(technique));
    };
    switch (technique) {
      case Technique::Original:
        return Permutation::identity(matrix.numRows());
      case Technique::Random:
        return Permutation::random(matrix.numRows(), options.seed);
      case Technique::DegSort:
        return checked(degSortOrder(matrix));
      case Technique::Dbg:
        return checked(dbgOrder(matrix));
      case Technique::HubSort:
        return checked(hubSortOrder(matrix));
      case Technique::HubCluster:
        return checked(hubClusterOrder(matrix));
      case Technique::Rcm:
        return checked(rcmOrder(matrix));
      case Technique::SlashBurn:
        return checked(slashBurnOrder(matrix, {options.slashburnK}));
      case Technique::Gorder:
        return checked(gorderOrder(
            matrix, {options.gorderWindow, options.gorderHubCap}));
      case Technique::Rabbit:
        return checked(rabbitOrder(matrix).perm);
      case Technique::RabbitPlusPlus:
        return checked(rabbitPlusOrder(matrix,
                                       {options.groupInsular,
                                        options.hubTreatment,
                                        options.hubDegreeFactor})
                           .perm);
      case Technique::Partition: {
        partition::PartitionOptions popts;
        popts.numParts = options.partitionParts;
        popts.seed = options.seed;
        return checked(partition::partitionOrder(matrix, popts));
      }
      case Technique::Boba:
        return checked(bobaOrder(matrix));
    }
    fatal("computeOrdering: unknown technique");
}

std::string
techniqueName(Technique technique)
{
    switch (technique) {
      case Technique::Original: return "ORIGINAL";
      case Technique::Random: return "RANDOM";
      case Technique::DegSort: return "DEGSORT";
      case Technique::Dbg: return "DBG";
      case Technique::HubSort: return "HUBSORT";
      case Technique::HubCluster: return "HUBCLUSTER";
      case Technique::Rcm: return "RCM";
      case Technique::SlashBurn: return "SLASHBURN";
      case Technique::Gorder: return "GORDER";
      case Technique::Rabbit: return "RABBIT";
      case Technique::RabbitPlusPlus: return "RABBIT++";
      case Technique::Partition: return "PARTITION";
      case Technique::Boba: return "BOBA";
    }
    fatal("techniqueName: unknown technique");
}

Technique
techniqueFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Technique> map = {
        {"ORIGINAL", Technique::Original},
        {"RANDOM", Technique::Random},
        {"DEGSORT", Technique::DegSort},
        {"DBG", Technique::Dbg},
        {"HUBSORT", Technique::HubSort},
        {"HUBCLUSTER", Technique::HubCluster},
        {"RCM", Technique::Rcm},
        {"SLASHBURN", Technique::SlashBurn},
        {"GORDER", Technique::Gorder},
        {"RABBIT", Technique::Rabbit},
        {"RABBIT++", Technique::RabbitPlusPlus},
        {"PARTITION", Technique::Partition},
        {"BOBA", Technique::Boba},
    };
    const auto it = map.find(name);
    require(it != map.end(),
            "techniqueFromName: unknown technique: " + name);
    return it->second;
}

std::vector<Technique>
figure2Techniques()
{
    return {Technique::Random,  Technique::Original,
            Technique::DegSort, Technique::Dbg,
            Technique::Gorder,  Technique::Rabbit};
}

std::vector<Technique>
allTechniques()
{
    return {Technique::Original,   Technique::Random,
            Technique::DegSort,    Technique::Dbg,
            Technique::HubSort,    Technique::HubCluster,
            Technique::Rcm,        Technique::SlashBurn,
            Technique::Gorder,     Technique::Rabbit,
            Technique::RabbitPlusPlus, Technique::Partition,
            Technique::Boba};
}

} // namespace slo::reorder
