/**
 * @file
 * SlashBurn ordering (Lim, Kang, Faloutsos, TKDE'14).
 *
 * Iterative hub removal: per iteration the k highest-degree vertices of
 * the remaining graph take the lowest available ids ("slash"), the
 * non-giant connected components take the highest available ids
 * ("burn"), and the process recurses on the giant component. One of the
 * community-based baselines RABBIT was shown to outperform; included for
 * completeness of the related-work comparison.
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** SlashBurn tuning knobs. */
struct SlashBurnOptions
{
    /** Hubs removed per iteration as a fraction of n (k = ceil(f*n)). */
    double hubFraction = 0.005;
};

/** Compute the SlashBurn ordering of @p matrix. */
Permutation slashBurnOrder(const Csr &matrix,
                           const SlashBurnOptions &options = {});

} // namespace slo::reorder
