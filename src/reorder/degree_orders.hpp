/**
 * @file
 * Degree-based reordering techniques (Sec. IV-A's lightweight baselines).
 *
 * These exploit the power-law degree distribution: packing the most
 * highly-referenced columns into the fewest cache lines. All of them sort
 * or group by *in*-degree, following the paper ("We use in-degrees for
 * both DEGSORT and DBG based on the observations of prior work for
 * push-style workloads").
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** DEGSORT: stable sort of all vertices by descending in-degree. */
Permutation degSortOrder(const Csr &matrix);

/**
 * DBG (degree-based grouping, Faldu et al. IISWC'19): vertices are
 * bucketed by power-of-two in-degree ranges; buckets are laid out from
 * the highest degree range down, and the original relative order is
 * preserved inside each bucket.
 */
Permutation dbgOrder(const Csr &matrix);

/**
 * HUBSORT: vertices with in-degree > average are placed first, sorted by
 * descending in-degree; the rest keep their relative order after them.
 */
Permutation hubSortOrder(const Csr &matrix);

/**
 * HUBCLUSTER: like HUBSORT but hubs keep their original relative order
 * (grouping without sorting; Balaji & Lucia IISWC'18).
 */
Permutation hubClusterOrder(const Csr &matrix);

} // namespace slo::reorder
