#include "reorder/gorder.hpp"

#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "reorder/check_order.hpp"

namespace slo::reorder
{

namespace
{

/** Max-heap entry: (key, vertex), lazily validated against `keys`. */
using HeapEntry = std::pair<std::int64_t, Index>;

} // namespace

Permutation
gorderOrder(const Csr &matrix, const GorderOptions &options)
{
    require(matrix.isSquare(), "gorderOrder: matrix must be square");
    require(options.window >= 1, "gorderOrder: window must be >= 1");
    const Index n = matrix.numRows();
    if (n == 0)
        return Permutation::identity(0);

    // Out-neighbours come from the matrix rows; in-neighbours from the
    // transpose. For symmetric patterns the two coincide, but we keep
    // the general directed formulation of the original algorithm.
    const Csr &out = matrix;
    const Csr in = matrix.isSymmetricPattern() ? matrix
                                               : matrix.transposed();

    std::vector<std::int64_t> keys(static_cast<std::size_t>(n), 0);
    std::vector<bool> placed(static_cast<std::size_t>(n), false);
    std::priority_queue<HeapEntry> heap;

    // Adjust the locality-score contribution of window vertex `v` to all
    // unplaced candidates by `delta` (+1 on window entry, -1 on exit).
    auto adjust = [&](Index v, std::int64_t delta) {
        const auto touch = [&](Index u) {
            if (placed[static_cast<std::size_t>(u)])
                return;
            keys[static_cast<std::size_t>(u)] += delta;
            if (delta > 0)
                heap.emplace(keys[static_cast<std::size_t>(u)], u);
        };
        // Direct edges: v -> u and u -> v both contribute.
        for (Index u : out.rowIndices(v))
            touch(u);
        for (Index u : in.rowIndices(v))
            touch(u);
        // Shared in-neighbours: w -> v and w -> u.
        for (Index w : in.rowIndices(v)) {
            if (options.hubCap > 0 && out.degree(w) > options.hubCap)
                continue;
            for (Index u : out.rowIndices(w))
                touch(u);
        }
    };

    // Start from the vertex with the highest in-degree.
    Index start = 0;
    for (Index v = 1; v < n; ++v) {
        if (in.degree(v) > in.degree(start))
            start = v;
    }

    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));
    std::deque<Index> window;
    Index next_fallback = 0; // scan cursor for untouched vertices

    auto place = [&](Index v) {
        placed[static_cast<std::size_t>(v)] = true;
        order.push_back(v);
        window.push_back(v);
        adjust(v, +1);
        if (static_cast<int>(window.size()) > options.window) {
            const Index expired = window.front();
            window.pop_front();
            adjust(expired, -1);
        }
    };

    place(start);
    while (order.size() < static_cast<std::size_t>(n)) {
        Index chosen = -1;
        while (!heap.empty()) {
            const auto [key, v] = heap.top();
            heap.pop();
            if (placed[static_cast<std::size_t>(v)])
                continue;
            if (key != keys[static_cast<std::size_t>(v)]) {
                // Stale: reinsert with the current key and retry.
                heap.emplace(keys[static_cast<std::size_t>(v)], v);
                continue;
            }
            chosen = v;
            break;
        }
        if (chosen < 0) {
            // No scored candidate (disconnected region): next unplaced.
            while (placed[static_cast<std::size_t>(next_fallback)])
                ++next_fallback;
            chosen = next_fallback;
        }
        place(chosen);
    }
    return checkedOrder(Permutation::fromNewToOld(order), n,
                        "gorderOrder");
}

} // namespace slo::reorder
