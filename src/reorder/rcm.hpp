/**
 * @file
 * Reverse Cuthill-McKee ordering.
 *
 * The classic bandwidth-reduction ordering (Karantasis et al. SC'14 is the
 * parallel treatment the paper cites). Included as the traditional
 * baseline RABBIT was originally shown to match or exceed.
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/** How rcmOrder picks each component's BFS starting node. */
enum class RcmStart
{
    /** The classic George-Liu pseudo-peripheral heuristic. */
    PseudoPeripheral,
    /**
     * The RCM++ bi-criteria finder (arXiv 2409.04171): iterate like
     * George-Liu but evaluate a small candidate set from the deepest
     * BFS level, preferring greater level-structure height and, on
     * ties, smaller maximum level width. The component order built
     * from the bi-criteria start is kept only when its bandwidth is no
     * worse than the pseudo-peripheral one's, so the result never
     * regresses the classic heuristic.
     */
    BiCriteria,
};

/**
 * RCM on the symmetrized pattern of @p matrix. Each connected component
 * is seeded per @p start (default: the RCM++ bi-criteria finder with
 * the keep-better-bandwidth fallback); BFS levels are visited with
 * neighbours in ascending-degree order, and the final order is
 * reversed.
 */
Permutation rcmOrder(const Csr &matrix,
                     RcmStart start = RcmStart::BiCriteria);

} // namespace slo::reorder
