/**
 * @file
 * Reverse Cuthill-McKee ordering.
 *
 * The classic bandwidth-reduction ordering (Karantasis et al. SC'14 is the
 * parallel treatment the paper cites). Included as the traditional
 * baseline RABBIT was originally shown to match or exceed.
 */

#pragma once

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::reorder
{

/**
 * RCM on the symmetrized pattern of @p matrix. Each connected component
 * is seeded from a pseudo-peripheral vertex (George-Liu heuristic); BFS
 * levels are visited with neighbours in ascending-degree order, and the
 * final order is reversed.
 */
Permutation rcmOrder(const Csr &matrix);

} // namespace slo::reorder
