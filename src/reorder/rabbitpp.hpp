/**
 * @file
 * RABBIT++ — the paper's proposed enhancement of RABBIT (Sec. VI).
 *
 * Two modifications applied on top of the RABBIT ordering (Fig. 5):
 *
 *  1. *Group insular nodes*: nodes whose every neighbour shares their
 *     community contribute no inter-community traffic; packing them
 *     together gives the insular sub-matrix near-compulsory traffic
 *     (Fig. 6) and shrinks the effective community sizes.
 *  2. *Group hub nodes*: among the remaining (non-insular) nodes, nodes
 *     with degree above the average are packed contiguously — either
 *     sorted by descending in-degree (HUBSORT) or preserving RABBIT's
 *     relative order (HUBGROUP). The paper finds HUBGROUP superior
 *     because community structure exists even among hubs.
 *
 * RABBIT++ = group insular nodes, then HUBGROUP the non-insular hubs.
 * The full 2x3 design space of Table II is exposed through the options.
 *
 * Layout (new id ranges, low to high):
 *   [ hubs (treated) | other non-insular | insular ]
 * with RABBIT's relative order preserved inside every group, matching
 * the worked example in Sec. VI-A where the two hubs receive ids 0 and 1
 * once both modifications are applied.
 */

#pragma once

#include <vector>

#include "community/clustering.hpp"
#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"
#include "reorder/rabbit.hpp"
#include "reorder/reorder.hpp"

namespace slo::reorder
{

/** RABBIT++ output, including the analysis artifacts the benches plot. */
struct RabbitPlusResult
{
    Permutation perm;
    /** Communities discovered by the underlying RABBIT pass. */
    community::Clustering clustering;
    /** Per-original-vertex insular flags. */
    std::vector<bool> insular;
    /** Per-original-vertex hub flags (degree > factor * avg). */
    std::vector<bool> hub;
    Index numInsular = 0;
    Index numHubs = 0; ///< hubs among non-insular nodes when grouping
};

/** Design-space knobs (subset of ReorderOptions, see Table II). */
struct RabbitPlusOptions
{
    bool groupInsular = true;
    HubTreatment hubTreatment = HubTreatment::HubGroup;
    double hubDegreeFactor = 1.0;
};

/**
 * Apply the RABBIT++ modifications on top of a pre-computed RABBIT
 * result for @p matrix. Exposed separately so the benches can reuse one
 * RABBIT pass across all six design-space combinations.
 */
RabbitPlusResult rabbitPlusFromRabbit(
    const Csr &matrix, const RabbitResult &rabbit,
    const RabbitPlusOptions &options = {});

/** RABBIT pass + modifications in one call. */
RabbitPlusResult rabbitPlusOrder(const Csr &matrix,
                                 const RabbitPlusOptions &options = {});

} // namespace slo::reorder
