#include "community/clustering.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace slo::community
{

Clustering::Clustering(std::vector<Index> labels)
    : labels_(std::move(labels))
{
    Index max_label = -1;
    for (Index label : labels_) {
        require(label >= 0, "Clustering: labels must be non-negative");
        max_label = std::max(max_label, label);
    }
    numCommunities_ = max_label + 1;
}

Clustering
Clustering::singletons(Index n)
{
    std::vector<Index> labels(static_cast<std::size_t>(n));
    std::iota(labels.begin(), labels.end(), Index{0});
    return Clustering(std::move(labels));
}

Clustering
Clustering::whole(Index n)
{
    return Clustering(std::vector<Index>(static_cast<std::size_t>(n), 0));
}

Clustering
Clustering::contiguousBlocks(Index n, Index block_size)
{
    require(block_size > 0, "Clustering: block size must be positive");
    std::vector<Index> labels(static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v)
        labels[static_cast<std::size_t>(v)] = v / block_size;
    return Clustering(std::move(labels));
}

std::vector<Index>
Clustering::communitySizes() const
{
    std::vector<Index> sizes(
        static_cast<std::size_t>(numCommunities_), 0);
    for (Index label : labels_)
        ++sizes[static_cast<std::size_t>(label)];
    return sizes;
}

Clustering
Clustering::compacted() const
{
    std::vector<Index> remap(
        static_cast<std::size_t>(numCommunities_), -1);
    std::vector<Index> labels(labels_.size());
    Index next = 0;
    for (std::size_t v = 0; v < labels_.size(); ++v) {
        auto &dense = remap[static_cast<std::size_t>(labels_[v])];
        if (dense < 0)
            dense = next++;
        labels[v] = dense;
    }
    return Clustering(std::move(labels));
}

std::vector<std::vector<Index>>
Clustering::members() const
{
    std::vector<std::vector<Index>> result(
        static_cast<std::size_t>(numCommunities_));
    for (std::size_t v = 0; v < labels_.size(); ++v) {
        result[static_cast<std::size_t>(labels_[v])].push_back(
            static_cast<Index>(v));
    }
    return result;
}

CommunitySizeStats
communitySizeStats(const Clustering &clustering)
{
    CommunitySizeStats stats;
    const auto sizes = clustering.communitySizes();
    Index non_empty = 0;
    Offset total = 0;
    for (Index size : sizes) {
        if (size == 0)
            continue;
        ++non_empty;
        total += size;
        stats.maxSize = std::max(stats.maxSize, size);
    }
    stats.numCommunities = non_empty;
    if (non_empty > 0) {
        stats.avgSize = static_cast<double>(total) /
                        static_cast<double>(non_empty);
    }
    if (clustering.numNodes() > 0) {
        stats.avgSizeFraction =
            stats.avgSize / static_cast<double>(clustering.numNodes());
        stats.maxSizeFraction =
            static_cast<double>(stats.maxSize) /
            static_cast<double>(clustering.numNodes());
    }
    return stats;
}

} // namespace slo::community
