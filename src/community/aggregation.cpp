#include "community/aggregation.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/validators.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"

namespace slo::community
{

namespace
{

/** Union-find with path compression and union-by-explicit-winner. */
class DisjointSets
{
  public:
    explicit DisjointSets(Index n)
        : parent_(static_cast<std::size_t>(n))
    {
        std::iota(parent_.begin(), parent_.end(), Index{0});
    }

    Index
    find(Index v)
    {
        Index root = v;
        while (parent_[static_cast<std::size_t>(root)] != root)
            root = parent_[static_cast<std::size_t>(root)];
        while (parent_[static_cast<std::size_t>(v)] != root) {
            const Index next = parent_[static_cast<std::size_t>(v)];
            parent_[static_cast<std::size_t>(v)] = root;
            v = next;
        }
        return root;
    }

    /** Attach @p loser's set under @p winner (winner stays the rep). */
    void
    uniteInto(Index loser, Index winner)
    {
        parent_[static_cast<std::size_t>(find(loser))] = find(winner);
    }

    /**
     * Root of @p v without path compression. Safe to call from many
     * threads concurrently once merging is finished (pure reads),
     * unlike find(), whose compression writes would race.
     */
    Index
    findRoot(Index v) const
    {
        while (parent_[static_cast<std::size_t>(v)] != v)
            v = parent_[static_cast<std::size_t>(v)];
        return v;
    }

  private:
    std::vector<Index> parent_;
};

} // namespace

AggregationResult
aggregateCommunities(const Csr &graph, const AggregationOptions &options)
{
    require(graph.isSquare(),
            "aggregateCommunities: graph must be square");
    SLO_SPAN("community.aggregate");
    const Index n = graph.numRows();
    const auto m2 = static_cast<double>(graph.numNonZeros());

    AggregationResult result{Dendrogram(n), Clustering::singletons(n), 0};
    if (n == 0 || m2 == 0.0)
        return result;

    DisjointSets sets(n);
    // Per live community: total degree (sum of member degrees) and the
    // weights to neighbouring communities. Maps are merged small-into-
    // large on each merge; `adjacency[rep]` is authoritative only for
    // live reps.
    std::vector<double> strength(static_cast<std::size_t>(n), 0.0);
    std::vector<Index> size(static_cast<std::size_t>(n), 1);
    std::vector<std::unordered_map<Index, double>> adjacency(
        static_cast<std::size_t>(n));
    // Each vertex builds only its own adjacency map and strength slot.
    par::parallelFor(Index{0}, n, [&](Index v) {
        strength[static_cast<std::size_t>(v)] =
            static_cast<double>(graph.degree(v));
        auto &adj = adjacency[static_cast<std::size_t>(v)];
        adj.reserve(static_cast<std::size_t>(graph.degree(v)));
        for (Index u : graph.rowIndices(v)) {
            if (u != v)
                adj[u] += 1.0;
        }
    });

    // Ascending-degree visit order (stable: ties by vertex id; the
    // parallel sort produces the same unique stable order as
    // std::stable_sort at any thread count).
    std::vector<Index> visit(static_cast<std::size_t>(n));
    std::iota(visit.begin(), visit.end(), Index{0});
    par::parallelStableSort(visit.begin(), visit.end(),
        [&graph](Index a, Index b) {
            return graph.degree(a) < graph.degree(b);
        });

    // Scratch map: community rep -> accumulated edge weight from the
    // community being placed.
    std::unordered_map<Index, double> neighbour_weight;

    for (Index v : visit) {
        const Index rep = sets.find(v);
        if (rep != v)
            continue; // already absorbed by an earlier merge

        // Accumulate weights from v's community to neighbouring
        // communities (entries in the map may be stale vertex ids that
        // need resolving through the union-find).
        neighbour_weight.clear();
        for (const auto &[u, w] : adjacency[static_cast<std::size_t>(v)]) {
            const Index u_rep = sets.find(u);
            if (u_rep != v)
                neighbour_weight[u_rep] += w;
        }

        // Best modularity gain:
        // dQ = 2 * (e_vb/m2 - (d_v * d_b) / m2^2), e_vb counted once per
        // stored entry (our symmetric CSR stores each edge twice, so the
        // per-direction weight is exactly e_vb).
        const double dv = strength[static_cast<std::size_t>(v)];
        Index best = -1;
        double best_gain = options.minGain;
        for (const auto &[b, w] : neighbour_weight) {
            if (options.maxCommunitySize > 0 &&
                size[static_cast<std::size_t>(v)] +
                        size[static_cast<std::size_t>(b)] >
                    options.maxCommunitySize) {
                continue;
            }
            const double db = strength[static_cast<std::size_t>(b)];
            const double gain = 2.0 * (w / m2 - (dv * db) / (m2 * m2));
            if (gain > best_gain ||
                (gain == best_gain && best >= 0 && b < best)) {
                best_gain = gain;
                best = b;
            }
        }
        if (best < 0)
            continue;

        // Merge v's community into best's community; best stays the rep.
        result.dendrogram.merge(v, best);
        sets.uniteInto(v, best);
        ++result.numMerges;
        strength[static_cast<std::size_t>(best)] += dv;
        size[static_cast<std::size_t>(best)] +=
            size[static_cast<std::size_t>(v)];

        // Merge adjacency maps small-into-large, but keep the result
        // stored under `best` (the live rep).
        auto &from = adjacency[static_cast<std::size_t>(v)];
        auto &into = adjacency[static_cast<std::size_t>(best)];
        if (from.size() > into.size())
            std::swap(from, into);
        for (const auto &[u, w] : from)
            into[u] += w;
        from.clear();
        // Note: `into` may now contain stale ids (including v itself or
        // ids pointing into best's own community); they are resolved
        // lazily through the union-find when the map is next read.
    }

    // Top-level communities from the union-find. findRoot (no path
    // compression) keeps the structure read-only here, so the label
    // resolution is safely parallel.
    std::vector<Index> labels(static_cast<std::size_t>(n));
    par::parallelFor(Index{0}, n, [&](Index v) {
        labels[static_cast<std::size_t>(v)] = sets.findRoot(v);
    });
    result.clustering = Clustering(std::move(labels)).compacted();
    check::checkClustering(result.clustering.labels(),
                           result.clustering.numCommunities(),
                           "aggregateCommunities",
                           /*require_dense=*/true);
    check::checkDendrogram(result.dendrogram.parents(),
                           "aggregateCommunities");
    return result;
}

} // namespace slo::community
