#include "community/aggregation.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/validators.hpp"
#include "community/concurrent_union_find.hpp"
#include "community/speculation.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"

namespace slo::community
{

namespace
{

/**
 * One speculative merge decision (see speculation.hpp). `skip` marks a
 * vertex already absorbed at block start — permanent, since a vertex
 * never becomes a representative again, so it needs no validation.
 */
struct MergeProposal
{
    Index best = -1;
    bool skip = false;
    std::vector<std::pair<Index, std::uint64_t>> reads;
};

} // namespace

AggregationResult
aggregateCommunities(const Csr &graph, const AggregationOptions &options)
{
    require(graph.isSquare(),
            "aggregateCommunities: graph must be square");
    SLO_SPAN("community.aggregate");
    const Index n = graph.numRows();
    const auto m2 = static_cast<double>(graph.numNonZeros());

    AggregationResult result{Dendrogram(n), Clustering::singletons(n), 0};
    if (n == 0 || m2 == 0.0)
        return result;

    ConcurrentDisjointSets sets(n);
    // Per live community: total degree (sum of member degrees) and the
    // community's adjacency as a *fragment chain* — the linked list of
    // its members, each contributing its immutable per-vertex map.
    // Chains splice in O(1) at merge time (next/last pointers), so the
    // sequential commit phase stays constant-time per merge and all
    // map scanning happens in the parallel speculation phase.
    std::vector<double> strength(static_cast<std::size_t>(n), 0.0);
    std::vector<Index> size(static_cast<std::size_t>(n), 1);
    std::vector<std::unordered_map<Index, double>> adjacency(
        static_cast<std::size_t>(n));
    std::vector<Index> next_fragment(static_cast<std::size_t>(n), -1);
    std::vector<Index> last_fragment(static_cast<std::size_t>(n));
    std::iota(last_fragment.begin(), last_fragment.end(), Index{0});
    // Each vertex builds only its own adjacency map and strength slot.
    par::parallelFor(Index{0}, n, [&](Index v) {
        strength[static_cast<std::size_t>(v)] =
            static_cast<double>(graph.degree(v));
        auto &adj = adjacency[static_cast<std::size_t>(v)];
        adj.reserve(static_cast<std::size_t>(graph.degree(v)));
        for (Index u : graph.rowIndices(v)) {
            if (u != v)
                adj[u] += 1.0;
        }
    });

    // Ascending-degree visit order (stable: ties by vertex id; the
    // parallel sort produces the same unique stable order as
    // std::stable_sort at any thread count).
    std::vector<Index> visit(static_cast<std::size_t>(n));
    std::iota(visit.begin(), visit.end(), Index{0});
    par::parallelStableSort(visit.begin(), visit.end(),
        [&graph](Index a, Index b) {
            return graph.degree(a) < graph.degree(b);
        });

    Epochs epochs(n);

    // Resolve v's community-to-community weights into @p nw (scratch
    // map: community rep -> accumulated edge weight) by walking the
    // community's fragment chain. Entries are original vertex ids that
    // need resolving through the union-find; the per-rep sums are sums
    // of integer counts, so they are exact whatever the chain order.
    const auto accumulate = [&](Index v,
                                std::unordered_map<Index, double> &nw) {
        nw.clear();
        for (Index frag = v; frag >= 0;
             frag = next_fragment[static_cast<std::size_t>(frag)]) {
            for (const auto &[u, w] :
                 adjacency[static_cast<std::size_t>(frag)]) {
                const Index u_rep = sets.findRoot(u);
                if (u_rep != v)
                    nw[u_rep] += w;
            }
        }
    };

    // Best modularity gain:
    // dQ = 2 * (e_vb/m2 - (d_v * d_b) / m2^2), e_vb counted once per
    // stored entry (our symmetric CSR stores each edge twice, so the
    // per-direction weight is exactly e_vb). The winner — highest gain,
    // ties to the lowest community id — does not depend on the map's
    // iteration order, and every sum involved is a sum of integer
    // counts (exact in double), so speculation and recompute agree
    // bit-for-bit.
    const auto bestFor =
        [&](Index v, const std::unordered_map<Index, double> &nw) {
            const double dv = strength[static_cast<std::size_t>(v)];
            Index best = -1;
            double best_gain = options.minGain;
            for (const auto &[b, w] : nw) {
                if (options.maxCommunitySize > 0 &&
                    size[static_cast<std::size_t>(v)] +
                            size[static_cast<std::size_t>(b)] >
                        options.maxCommunitySize) {
                    continue;
                }
                const double db = strength[static_cast<std::size_t>(b)];
                const double gain =
                    2.0 * (w / m2 - (dv * db) / (m2 * m2));
                if (gain > best_gain ||
                    (gain == best_gain && best >= 0 && b < best)) {
                    best_gain = gain;
                    best = b;
                }
            }
            return best;
        };

    // Merge v's community into best's community; best stays the rep.
    // O(1): splice v's fragment chain onto best's. The per-vertex maps
    // themselves never change, which is what keeps the speculation
    // phase's reads pure.
    const auto applyMerge = [&](Index v, Index best) {
        result.dendrogram.merge(v, best);
        sets.uniteInto(v, best);
        ++result.numMerges;
        strength[static_cast<std::size_t>(best)] +=
            strength[static_cast<std::size_t>(v)];
        size[static_cast<std::size_t>(best)] +=
            size[static_cast<std::size_t>(v)];
        next_fragment[static_cast<std::size_t>(
            last_fragment[static_cast<std::size_t>(best)])] = v;
        last_fragment[static_cast<std::size_t>(best)] =
            last_fragment[static_cast<std::size_t>(v)];
        epochs.bump(v);
        epochs.bump(best);
    };

    // The serial iteration for one vertex — the semantics every other
    // path must reproduce exactly.
    const auto serialStep =
        [&](Index v, std::unordered_map<Index, double> &nw) {
            if (sets.findRoot(v) != v)
                return; // already absorbed by an earlier merge
            accumulate(v, nw);
            const Index best = bestFor(v, nw);
            if (best >= 0)
                applyMerge(v, best);
        };

    par::ThreadPool &pool = par::ThreadPool::global();
    if (pool.serial()) {
        std::unordered_map<Index, double> neighbour_weight;
        for (Index v : visit)
            serialStep(v, neighbour_weight);
    } else {
        // Speculate in parallel against block-start state, recording
        // the epoch of every community a decision read; commit in
        // visit order, recomputing any proposal whose reads went
        // stale. See speculation.hpp for why this is bit-identical to
        // the serial loop at any thread count.
        const auto speculate = [&](Index v) {
            MergeProposal proposal;
            if (sets.findRoot(v) != v) {
                proposal.skip = true;
                return proposal;
            }
            thread_local std::unordered_map<Index, double> scratch;
            accumulate(v, scratch);
            proposal.reads.reserve(scratch.size() + 1);
            proposal.reads.emplace_back(v, epochs.of(v));
            for (const auto &[b, w] : scratch)
                proposal.reads.emplace_back(b, epochs.of(b));
            proposal.best = bestFor(v, scratch);
            return proposal;
        };
        std::unordered_map<Index, double> commit_scratch;
        const auto commit = [&](Index v, MergeProposal &proposal) {
            if (proposal.skip)
                return; // vertices never become reps again
            if (epochs.stillValid(proposal.reads)) {
                if (proposal.best >= 0)
                    applyMerge(v, proposal.best);
                return;
            }
            serialStep(v, commit_scratch);
        };
        speculativeSweep<MergeProposal>(visit, reorderBlockSize(), pool,
                                        speculate, commit);
    }

    // Top-level communities from the union-find; findRoot is safely
    // concurrent (CAS path-halving), so the label resolution is
    // parallel.
    std::vector<Index> labels(static_cast<std::size_t>(n));
    par::parallelFor(Index{0}, n, [&](Index v) {
        labels[static_cast<std::size_t>(v)] = sets.findRoot(v);
    });
    result.clustering = Clustering(std::move(labels)).compacted();
    check::checkClustering(result.clustering.labels(),
                           result.clustering.numCommunities(),
                           "aggregateCommunities",
                           /*require_dense=*/true);
    check::checkDendrogram(result.dendrogram.parents(),
                           "aggregateCommunities");
    return result;
}

} // namespace slo::community
