#include "community/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/validators.hpp"
#include "community/metrics.hpp"
#include "community/speculation.hpp"
#include "matrix/rng.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"

namespace slo::community
{

namespace
{

/** Internal weighted undirected graph (CSR-shaped). */
struct WeightedGraph
{
    Index n = 0;
    std::vector<Offset> offsets;
    std::vector<Index> neighbours;
    std::vector<double> weights;
    std::vector<double> selfLoops; ///< per-node self-loop weight
    double totalWeight2 = 0.0;     ///< sum of strengths (2m)

    double
    strengthOf(Index v) const
    {
        double s = selfLoops[static_cast<std::size_t>(v)];
        for (Offset i = offsets[static_cast<std::size_t>(v)];
             i < offsets[static_cast<std::size_t>(v) + 1]; ++i) {
            s += weights[static_cast<std::size_t>(i)];
        }
        return s;
    }
};

WeightedGraph
fromCsr(const Csr &graph)
{
    WeightedGraph wg;
    wg.n = graph.numRows();
    wg.offsets.assign(graph.rowOffsets().begin(),
                      graph.rowOffsets().end());
    wg.neighbours.assign(graph.colIndices().begin(),
                         graph.colIndices().end());
    wg.weights.assign(wg.neighbours.size(), 1.0);
    wg.selfLoops.assign(static_cast<std::size_t>(wg.n), 0.0);
    // Pull self loops out of the adjacency (they contribute to strength
    // differently). Rows are independent: each iteration only touches
    // row v's weight range and selfLoops[v].
    par::parallelFor(Index{0}, wg.n, [&wg](Index v) {
        for (Offset i = wg.offsets[static_cast<std::size_t>(v)];
             i < wg.offsets[static_cast<std::size_t>(v) + 1]; ++i) {
            if (wg.neighbours[static_cast<std::size_t>(i)] == v) {
                wg.weights[static_cast<std::size_t>(i)] = 0.0;
                wg.selfLoops[static_cast<std::size_t>(v)] += 1.0;
            }
        }
    });
    // Chunk boundaries are fixed by the grain (not the thread count)
    // and partials fold in chunk order, so the sum is reproducible; the
    // addends are all whole numbers anyway, making it exact.
    wg.totalWeight2 = par::parallelReduce(
        Index{0}, wg.n, /*grain=*/0, 0.0,
        [&wg](Index begin, Index end) {
            double sum = 0.0;
            for (Index v = begin; v < end; ++v)
                sum += wg.strengthOf(v);
            return sum;
        },
        [](double a, double b) { return a + b; });
    return wg;
}

/**
 * One speculative move decision (see speculation.hpp): the proposed
 * target community plus the epochs of every community the score read.
 */
struct MoveProposal
{
    Index best = -1;
    std::vector<std::pair<Index, std::uint64_t>> reads;
};

/**
 * One level of local moving. Returns the (possibly improved) labels and
 * whether any node moved.
 *
 * The move sweeps run block-speculatively on the global pool: each
 * block of the shuffled visit order is scored in parallel against
 * block-start state, then committed sequentially in visit order with
 * stale proposals recomputed inline (speculation.hpp). Candidate
 * communities are always scanned in ascending community id — a fixed
 * order the near-tie comparisons below depend on — so the committed
 * decision sequence, and therefore the clustering, is identical to the
 * serial sweep at any SLO_THREADS.
 */
bool
localMoving(const WeightedGraph &wg, std::vector<Index> &labels,
            const LouvainOptions &options, std::uint64_t seed)
{
    const double m2 = wg.totalWeight2;
    if (m2 == 0.0)
        return false;

    // Per-vertex strength scans are the bulk of a pass's setup cost;
    // they are pure reads of the graph and independent per vertex.
    std::vector<double> strength(static_cast<std::size_t>(wg.n));
    par::parallelFor(Index{0}, wg.n, [&](Index v) {
        strength[static_cast<std::size_t>(v)] = wg.strengthOf(v);
    });

    std::vector<double> community_strength(
        static_cast<std::size_t>(wg.n), 0.0);
    for (Index v = 0; v < wg.n; ++v) {
        community_strength[static_cast<std::size_t>(labels[
            static_cast<std::size_t>(v)])] +=
            strength[static_cast<std::size_t>(v)];
    }

    // Shuffled visit order decorrelates moves from vertex ids.
    std::vector<Index> visit(static_cast<std::size_t>(wg.n));
    std::iota(visit.begin(), visit.end(), Index{0});
    Rng rng(seed);
    for (std::size_t i = visit.size(); i > 1; --i) {
        auto j = static_cast<std::size_t>(rng.below(i));
        std::swap(visit[i - 1], visit[j]);
    }

    Epochs epochs(wg.n);
    bool any_move = false;
    bool moved_this_sweep = false;

    // v's weight to each adjacent community, as (community, weight)
    // entries sorted by community id (the deterministic scan order).
    const auto gather =
        [&](Index v, std::unordered_map<Index, double> &scratch,
            std::vector<std::pair<Index, double>> &entries) {
            const auto sv = static_cast<std::size_t>(v);
            scratch.clear();
            scratch[labels[sv]] += 0.0;
            for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1];
                 ++i) {
                const auto si = static_cast<std::size_t>(i);
                const Index u = wg.neighbours[si];
                if (u == v)
                    continue;
                scratch[labels[static_cast<std::size_t>(u)]] +=
                    wg.weights[si];
            }
            entries.assign(scratch.begin(), scratch.end());
            std::sort(entries.begin(), entries.end());
        };

    // Score of community c (v removed from its own community):
    // w_vc - strength_c\v * d_v / m2. Pure read of current state; the
    // weights are integer-valued, so every sum is exact and the
    // decision reproduces bit-for-bit on recompute.
    const auto bestFor =
        [&](Index v,
            const std::vector<std::pair<Index, double>> &entries) {
            const auto sv = static_cast<std::size_t>(v);
            const Index current = labels[sv];
            const double dv = strength[sv];
            double w_current = 0.0;
            for (const auto &[c, w] : entries) {
                if (c == current)
                    w_current = w;
            }
            const double removed =
                community_strength[static_cast<std::size_t>(current)] -
                dv;
            Index best = current;
            double best_score = w_current - removed * dv / m2;
            for (const auto &[c, w] : entries) {
                if (c == current)
                    continue;
                const double score =
                    w - community_strength[static_cast<std::size_t>(c)] *
                            dv / m2;
                if (score > best_score + 1e-15 ||
                    (score > best_score - 1e-15 && c < best)) {
                    best_score = score;
                    best = c;
                }
            }
            return best;
        };

    const auto applyMove = [&](Index v, Index best) {
        const auto sv = static_cast<std::size_t>(v);
        const Index current = labels[sv];
        if (best == current)
            return;
        const double dv = strength[sv];
        community_strength[static_cast<std::size_t>(current)] -= dv;
        community_strength[static_cast<std::size_t>(best)] += dv;
        labels[sv] = best;
        epochs.bump(current);
        epochs.bump(best);
        moved_this_sweep = true;
        any_move = true;
    };

    const auto speculate = [&](Index v) {
        thread_local std::unordered_map<Index, double> scratch;
        thread_local std::vector<std::pair<Index, double>> entries;
        MoveProposal proposal;
        gather(v, scratch, entries);
        proposal.reads.reserve(entries.size());
        for (const auto &[c, w] : entries)
            proposal.reads.emplace_back(c, epochs.of(c));
        proposal.best = bestFor(v, entries);
        return proposal;
    };

    std::unordered_map<Index, double> commit_scratch;
    std::vector<std::pair<Index, double>> commit_entries;
    const auto commit = [&](Index v, MoveProposal &proposal) {
        // A neighbour's label change bumps the epoch of the community
        // it left — always one of our recorded entries — so any stale
        // input is caught and the decision recomputed serially.
        if (epochs.stillValid(proposal.reads)) {
            applyMove(v, proposal.best);
            return;
        }
        gather(v, commit_scratch, commit_entries);
        applyMove(v, bestFor(v, commit_entries));
    };

    par::ThreadPool &pool = par::ThreadPool::global();
    const std::size_t block = reorderBlockSize();
    for (int sweep = 0; sweep < options.maxSweepsPerLevel; ++sweep) {
        moved_this_sweep = false;
        if (pool.serial()) {
            for (Index v : visit) {
                gather(v, commit_scratch, commit_entries);
                applyMove(v, bestFor(v, commit_entries));
            }
        } else {
            speculativeSweep<MoveProposal>(visit, block, pool,
                                           speculate, commit);
        }
        if (!moved_this_sweep)
            break;
    }
    return any_move;
}

/** Aggregate communities into a smaller weighted graph. */
WeightedGraph
aggregate(const WeightedGraph &wg, const std::vector<Index> &dense_labels,
          Index num_communities)
{
    // Accumulate community-to-community weights.
    std::vector<std::unordered_map<Index, double>> adj(
        static_cast<std::size_t>(num_communities));
    std::vector<double> self(static_cast<std::size_t>(num_communities),
                             0.0);
    for (Index v = 0; v < wg.n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        const Index cv = dense_labels[sv];
        self[static_cast<std::size_t>(cv)] += wg.selfLoops[sv];
        for (Offset i = wg.offsets[sv]; i < wg.offsets[sv + 1]; ++i) {
            const auto si = static_cast<std::size_t>(i);
            const Index cu =
                dense_labels[static_cast<std::size_t>(wg.neighbours[si])];
            if (cu == cv) {
                // Each intra edge appears twice in the symmetric CSR
                // (u->v and v->u), so accumulating the full weight per
                // stored entry makes the community's self-loop count
                // intra weight twice — exactly what keeps community
                // strength equal to the sum of member strengths.
                self[static_cast<std::size_t>(cv)] += wg.weights[si];
            } else {
                adj[static_cast<std::size_t>(cv)][cu] += wg.weights[si];
            }
        }
    }

    WeightedGraph out;
    out.n = num_communities;
    out.offsets.assign(static_cast<std::size_t>(num_communities) + 1, 0);
    for (Index c = 0; c < num_communities; ++c) {
        out.offsets[static_cast<std::size_t>(c) + 1] =
            out.offsets[static_cast<std::size_t>(c)] +
            static_cast<Offset>(adj[static_cast<std::size_t>(c)].size());
    }
    out.neighbours.resize(
        static_cast<std::size_t>(out.offsets.back()));
    out.weights.resize(out.neighbours.size());
    // Each community fills its own disjoint [offsets[c], offsets[c+1])
    // slice, so the sort+fill parallelizes without coordination.
    par::parallelFor(Index{0}, num_communities, [&](Index c) {
        auto pos = static_cast<std::size_t>(
            out.offsets[static_cast<std::size_t>(c)]);
        // Deterministic order: sort neighbours by id.
        std::vector<std::pair<Index, double>> entries(
            adj[static_cast<std::size_t>(c)].begin(),
            adj[static_cast<std::size_t>(c)].end());
        std::sort(entries.begin(), entries.end());
        for (const auto &[u, w] : entries) {
            out.neighbours[pos] = u;
            out.weights[pos] = w;
            ++pos;
        }
    });
    out.selfLoops = std::move(self);
    out.totalWeight2 = par::parallelReduce(
        Index{0}, num_communities, /*grain=*/0, 0.0,
        [&out](Index begin, Index end) {
            double sum = 0.0;
            for (Index c = begin; c < end; ++c)
                sum += out.strengthOf(c);
            return sum;
        },
        [](double a, double b) { return a + b; });
    return out;
}

} // namespace

LouvainResult
louvain(const Csr &graph, const LouvainOptions &options)
{
    require(graph.isSquare(), "louvain: graph must be square");
    SLO_SPAN("louvain.run");
    LouvainResult result;

    WeightedGraph wg = fromCsr(graph);
    // mapping[v] = current community of original vertex v.
    std::vector<Index> mapping(static_cast<std::size_t>(graph.numRows()));
    std::iota(mapping.begin(), mapping.end(), Index{0});

    for (int level = 0; level < options.maxLevels; ++level) {
        const obs::Span level_span("louvain.level:" +
                                   std::to_string(level));
        std::vector<Index> labels(static_cast<std::size_t>(wg.n));
        std::iota(labels.begin(), labels.end(), Index{0});
        const bool moved = localMoving(wg, labels, options,
                                       options.seed + level);
        if (!moved)
            break;
        ++result.levels;

        // Densify labels.
        Clustering dense = Clustering(labels).compacted();
        const Index k = dense.numCommunities();

        // Push the mapping down to original vertices.
        for (auto &label : mapping)
            label = dense.label(label);

        if (k == wg.n)
            break;
        wg = aggregate(wg, dense.labels(), k);
        if (k <= 1)
            break;
    }

    result.clustering = Clustering(std::move(mapping)).compacted();
    check::checkClustering(result.clustering.labels(),
                           result.clustering.numCommunities(), "louvain",
                           /*require_dense=*/true);
    result.modularity = modularity(graph, result.clustering);
    obs::counter("louvain.levels").add(
        static_cast<std::uint64_t>(result.levels));
    obs::gauge("louvain.communities")
        .set(static_cast<double>(result.clustering.numCommunities()));
    return result;
}

} // namespace slo::community
