#include "community/metrics.hpp"

#include <algorithm>
#include <vector>

namespace slo::community
{

double
modularity(const Csr &graph, const Clustering &clustering)
{
    require(graph.numRows() == clustering.numNodes(),
            "modularity: clustering size mismatch");
    const auto m2 = static_cast<double>(graph.numNonZeros());
    if (m2 == 0.0)
        return 0.0;

    const auto k = static_cast<std::size_t>(clustering.numCommunities());
    std::vector<double> intra(k, 0.0);  // stored entries inside community
    std::vector<double> degree(k, 0.0); // total degree per community
    for (Index r = 0; r < graph.numRows(); ++r) {
        const auto cr = static_cast<std::size_t>(clustering.label(r));
        degree[cr] += static_cast<double>(graph.degree(r));
        for (Index c : graph.rowIndices(r)) {
            if (clustering.label(c) == clustering.label(r))
                intra[cr] += 1.0;
        }
    }

    double q = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        const double deg_frac = degree[c] / m2;
        q += intra[c] / m2 - deg_frac * deg_frac;
    }
    return q;
}

double
insularity(const Csr &graph, const Clustering &clustering)
{
    require(graph.numRows() == clustering.numNodes(),
            "insularity: clustering size mismatch");
    const Offset total = graph.numNonZeros();
    if (total == 0)
        return 1.0;
    Offset intra = 0;
    for (Index r = 0; r < graph.numRows(); ++r) {
        const Index label = clustering.label(r);
        for (Index c : graph.rowIndices(r)) {
            if (clustering.label(c) == label)
                ++intra;
        }
    }
    return static_cast<double>(intra) / static_cast<double>(total);
}

std::vector<bool>
insularNodes(const Csr &graph, const Clustering &clustering)
{
    require(graph.numRows() == clustering.numNodes(),
            "insularNodes: clustering size mismatch");
    std::vector<bool> insular(
        static_cast<std::size_t>(graph.numRows()), true);
    for (Index r = 0; r < graph.numRows(); ++r) {
        const Index label = clustering.label(r);
        for (Index c : graph.rowIndices(r)) {
            if (clustering.label(c) != label) {
                insular[static_cast<std::size_t>(r)] = false;
                // The neighbour on the other side of a cross edge is
                // not insular either (covers asymmetric patterns).
                insular[static_cast<std::size_t>(c)] = false;
            }
        }
    }
    return insular;
}

double
insularNodeFraction(const Csr &graph, const Clustering &clustering)
{
    if (graph.numRows() == 0)
        return 1.0;
    const auto insular = insularNodes(graph, clustering);
    Offset count = 0;
    for (bool flag : insular)
        count += flag ? 1 : 0;
    return static_cast<double>(count) /
           static_cast<double>(graph.numRows());
}

double
meanConductance(const Csr &graph, const Clustering &clustering)
{
    require(graph.numRows() == clustering.numNodes(),
            "meanConductance: clustering size mismatch");
    const auto k = static_cast<std::size_t>(clustering.numCommunities());
    std::vector<double> cut(k, 0.0);
    std::vector<double> volume(k, 0.0);
    double total_volume = 0.0;
    for (Index r = 0; r < graph.numRows(); ++r) {
        const auto cr = static_cast<std::size_t>(clustering.label(r));
        volume[cr] += static_cast<double>(graph.degree(r));
        total_volume += static_cast<double>(graph.degree(r));
        for (Index c : graph.rowIndices(r)) {
            if (clustering.label(c) != clustering.label(r))
                cut[cr] += 1.0;
        }
    }
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t c = 0; c < k; ++c) {
        if (volume[c] == 0.0)
            continue;
        const double denominator =
            std::min(volume[c], total_volume - volume[c]);
        if (denominator == 0.0)
            continue; // single community holding all volume
        total += cut[c] / denominator;
        ++counted;
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

} // namespace slo::community
