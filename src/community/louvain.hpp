/**
 * @file
 * Louvain community detection (Blondel et al. 2008).
 *
 * Included as the classical modularity-maximization baseline: the library
 * uses it (a) to cross-check the RABBIT aggregation pass (both maximize
 * the same objective, so their modularities should be comparable) and
 * (b) as an alternative community source for the community-detector
 * ablation bench.
 */

#pragma once

#include <cstdint>

#include "community/clustering.hpp"
#include "matrix/csr.hpp"

namespace slo::community
{

/** Tuning knobs for Louvain. */
struct LouvainOptions
{
    int maxLevels = 10;          ///< max aggregation levels
    int maxSweepsPerLevel = 10;  ///< local-moving sweeps per level
    double minGainPerSweep = 1e-7; ///< stop when a sweep gains less
    std::uint64_t seed = 42;     ///< vertex visit order shuffle seed
};

/** Output of a Louvain run. */
struct LouvainResult
{
    Clustering clustering; ///< final communities on original vertices
    double modularity = 0.0;
    int levels = 0;
};

/**
 * Run Louvain on @p graph (undirected view; symmetric pattern expected).
 */
LouvainResult louvain(const Csr &graph, const LouvainOptions &options = {});

} // namespace slo::community
