#include "community/dendrogram.hpp"

#include <algorithm>
#include <numeric>

#include "check/validators.hpp"

namespace slo::community
{

Dendrogram::Dendrogram(Index n)
    : parent_(static_cast<std::size_t>(n), -1),
      children_(static_cast<std::size_t>(n))
{
    require(n >= 0, "Dendrogram: negative size");
}

void
Dendrogram::merge(Index child, Index parent)
{
    check::Context ctx;
    ctx.add("child", child);
    ctx.add("parent", parent);
    ctx.add("num_nodes", numNodes());
    SLO_CHECK_CTX(child >= 0 && child < numNodes() && parent >= 0 &&
                      parent < numNodes(),
                  "check.dendrogram", ctx,
                  "Dendrogram::merge: vertex out of range");
    SLO_CHECK_CTX(child != parent, "check.dendrogram", ctx,
                  "Dendrogram::merge: self merge");
    SLO_CHECK_CTX(isRoot(child), "check.dendrogram", ctx,
                  "Dendrogram::merge: child is not a root");
    parent_[static_cast<std::size_t>(child)] = parent;
    children_[static_cast<std::size_t>(parent)].push_back(child);
}

std::vector<Index>
Dendrogram::roots() const
{
    std::vector<Index> result;
    for (Index v = 0; v < numNodes(); ++v) {
        if (isRoot(v))
            result.push_back(v);
    }
    return result;
}

Index
Dendrogram::subtreeSize(Index v) const
{
    Index size = 0;
    std::vector<Index> stack = {v};
    while (!stack.empty()) {
        const Index u = stack.back();
        stack.pop_back();
        ++size;
        const auto &kids = children_[static_cast<std::size_t>(u)];
        stack.insert(stack.end(), kids.begin(), kids.end());
    }
    return size;
}

std::vector<Index>
Dendrogram::dfsOrder(RootOrder root_order) const
{
    std::vector<Index> roots_list = roots();
    if (root_order == RootOrder::BySubtreeSizeDesc) {
        std::vector<Index> sizes(parent_.size(), 0);
        // Compute all subtree sizes in one bottom-up pass instead of
        // calling subtreeSize() per root.
        // Post-order via explicit stack over the whole forest.
        for (Index root : roots_list) {
            std::vector<std::pair<Index, std::size_t>> stack;
            stack.emplace_back(root, 0);
            while (!stack.empty()) {
                auto &[v, child_pos] = stack.back();
                const auto &kids =
                    children_[static_cast<std::size_t>(v)];
                if (child_pos < kids.size()) {
                    const Index next = kids[child_pos++];
                    stack.emplace_back(next, 0);
                } else {
                    Index size = 1;
                    for (Index kid : kids)
                        size += sizes[static_cast<std::size_t>(kid)];
                    sizes[static_cast<std::size_t>(v)] = size;
                    stack.pop_back();
                }
            }
        }
        std::stable_sort(roots_list.begin(), roots_list.end(),
            [&sizes](Index a, Index b) {
                return sizes[static_cast<std::size_t>(a)] >
                       sizes[static_cast<std::size_t>(b)];
            });
    }

    std::vector<Index> order;
    order.reserve(parent_.size());
    for (Index root : roots_list) {
        // Pre-order DFS, children in merge order.
        std::vector<std::pair<Index, std::size_t>> stack;
        stack.emplace_back(root, 0);
        order.push_back(root);
        while (!stack.empty()) {
            auto &[v, child_pos] = stack.back();
            const auto &kids = children_[static_cast<std::size_t>(v)];
            if (child_pos < kids.size()) {
                const Index next = kids[child_pos++];
                order.push_back(next);
                stack.emplace_back(next, 0);
            } else {
                stack.pop_back();
            }
        }
    }
    // The traversal must emit every vertex exactly once — a corrupt
    // forest (shared child, cycle) would duplicate or drop vertices.
    if (check::enabled(check::Level::Full))
        check::checkPermutation(order, numNodes(),
                                "Dendrogram::dfsOrder");
    else
        SLO_CHECK(order.size() == parent_.size(), "check.dendrogram",
                  "Dendrogram::dfsOrder: traversal emitted "
                      << order.size() << " of " << parent_.size()
                      << " vertices");
    return order;
}

Clustering
Dendrogram::toClustering() const
{
    std::vector<Index> labels(parent_.size(), -1);
    for (Index v = 0; v < numNodes(); ++v) {
        // Walk up to the root with path compression through `labels`.
        Index u = v;
        std::vector<Index> path;
        while (parent_[static_cast<std::size_t>(u)] >= 0 &&
               labels[static_cast<std::size_t>(u)] < 0) {
            path.push_back(u);
            u = parent_[static_cast<std::size_t>(u)];
        }
        const Index root = labels[static_cast<std::size_t>(u)] >= 0
                               ? labels[static_cast<std::size_t>(u)]
                               : u;
        labels[static_cast<std::size_t>(u)] = root;
        for (Index w : path)
            labels[static_cast<std::size_t>(w)] = root;
    }
    return Clustering(std::move(labels)).compacted();
}

Clustering
Dendrogram::clusteringAtDepth(Index depth) const
{
    require(depth >= 0, "clusteringAtDepth: negative depth");
    const Index n = numNodes();
    std::vector<Index> labels(static_cast<std::size_t>(n), -1);
    // BFS down from each root carrying the depth-capped ancestor.
    std::vector<std::pair<Index, Index>> stack; // (vertex, anchor)
    std::vector<Index> depth_of(static_cast<std::size_t>(n), 0);
    for (Index root = 0; root < n; ++root) {
        if (!isRoot(root))
            continue;
        stack.emplace_back(root, root);
        depth_of[static_cast<std::size_t>(root)] = 0;
        while (!stack.empty()) {
            const auto [v, anchor] = stack.back();
            stack.pop_back();
            labels[static_cast<std::size_t>(v)] = anchor;
            for (Index child : children(v)) {
                const Index child_depth =
                    depth_of[static_cast<std::size_t>(v)] + 1;
                depth_of[static_cast<std::size_t>(child)] =
                    child_depth;
                // Children at or below the cut keep the anchor;
                // children above it become their own anchor.
                stack.emplace_back(child, child_depth <= depth
                                              ? child
                                              : anchor);
            }
        }
    }
    return Clustering(std::move(labels)).compacted();
}

} // namespace slo::community
