/**
 * @file
 * Community assignments (clusterings) over graph vertices.
 *
 * A Clustering maps every vertex to a community label. It is the common
 * currency between community detection (Louvain, RABBIT aggregation), the
 * quality metrics the paper defines (modularity, insularity), and the
 * RABBIT++ transformations that consume community structure.
 */

#pragma once

#include <vector>

#include "matrix/types.hpp"

namespace slo::community
{

/** A partition of vertices [0, n) into communities [0, k). */
class Clustering
{
  public:
    Clustering() = default;

    /**
     * Construct from a label array; labels must be non-negative.
     * numCommunities() is max(label)+1 (labels need not be dense —
     * use compacted() to densify).
     */
    explicit Clustering(std::vector<Index> labels);

    /** Every vertex in its own community. */
    static Clustering singletons(Index n);

    /** One community for all vertices. */
    static Clustering whole(Index n);

    /**
     * Contiguous equally-sized blocks of @p block_size vertices — the
     * ground truth of the planted-partition generator.
     */
    static Clustering contiguousBlocks(Index n, Index block_size);

    Index numNodes() const { return static_cast<Index>(labels_.size()); }
    Index numCommunities() const { return numCommunities_; }

    Index
    label(Index v) const
    {
        return labels_[static_cast<std::size_t>(v)];
    }

    Index operator[](Index v) const { return label(v); }

    const std::vector<Index> &labels() const { return labels_; }

    /** Size of each community (indexed by label). */
    std::vector<Index> communitySizes() const;

    /**
     * Relabel communities to a dense range [0, k) in order of first
     * appearance, dropping unused labels.
     */
    Clustering compacted() const;

    /**
     * Vertices of each community, in ascending vertex order
     * (indexed by label).
     */
    std::vector<std::vector<Index>> members() const;

    bool operator==(const Clustering &other) const = default;

  private:
    std::vector<Index> labels_;
    Index numCommunities_ = 0;
};

/** Summary statistics of community sizes (Sec. V-A / V-B analysis). */
struct CommunitySizeStats
{
    Index numCommunities = 0;
    double avgSize = 0.0;
    Index maxSize = 0;
    /** Average community size normalized to the number of nodes. */
    double avgSizeFraction = 0.0;
    /** Largest community as a fraction of all nodes (mawi: ~0.98). */
    double maxSizeFraction = 0.0;
};

/** Compute size statistics for @p clustering. */
CommunitySizeStats communitySizeStats(const Clustering &clustering);

} // namespace slo::community
