/**
 * @file
 * Merge dendrogram produced by hierarchical community aggregation.
 *
 * RABBIT (Arai et al., IPDPS'16) merges vertices incrementally; every
 * merge "u into v" makes u's subtree a child of v. The resulting forest
 * encodes the hierarchical community structure: each tree is a top-level
 * community, and nested subtrees are sub-communities. The RABBIT ordering
 * is a depth-first traversal of this forest, which lays sub-communities
 * out contiguously at every level — exactly the property that maps
 * communities onto cache capacities.
 */

#pragma once

#include <vector>

#include "community/clustering.hpp"
#include "matrix/types.hpp"

namespace slo::community
{

/** How dfsOrder() orders the forest's roots. */
enum class RootOrder
{
    BySubtreeSizeDesc, ///< biggest community first (default)
    ByVertexId,        ///< deterministic id order
};

/** A forest over vertices [0, n) built from "merge u into v" events. */
class Dendrogram
{
  public:
    /** n singleton roots. */
    explicit Dendrogram(Index n);

    Index numNodes() const { return static_cast<Index>(parent_.size()); }

    /**
     * Record that @p child's tree becomes a subtree of @p parent.
     * @p child must currently be a root; @p parent must not be inside
     * child's subtree (checked cheaply: parent must be a root or already
     * merged elsewhere, and child != parent).
     */
    void merge(Index child, Index parent);

    bool
    isRoot(Index v) const
    {
        return parent_[static_cast<std::size_t>(v)] < 0;
    }

    /** Parent vertex, or -1 for roots. */
    Index
    parent(Index v) const
    {
        return parent_[static_cast<std::size_t>(v)];
    }

    /** Full parent array (parents()[v] == parent(v)); -1 for roots. */
    const std::vector<Index> &parents() const { return parent_; }

    /** Children in merge order. */
    const std::vector<Index> &
    children(Index v) const
    {
        return children_[static_cast<std::size_t>(v)];
    }

    /** All roots in ascending vertex order. */
    std::vector<Index> roots() const;

    /** Number of vertices in v's subtree (including v). */
    Index subtreeSize(Index v) const;

    /**
     * Depth-first vertex order over the forest: result[new_id] == old_id.
     * Children are visited in merge order, after their parent.
     */
    std::vector<Index> dfsOrder(
        RootOrder root_order = RootOrder::BySubtreeSizeDesc) const;

    /** Top-level communities: label(v) = index of v's root. */
    Clustering toClustering() const;

    /**
     * Sub-communities at hierarchy depth @p depth: each vertex is
     * labelled by its ancestor at that depth (or by itself when its
     * own depth is shallower). depth 0 reproduces toClustering();
     * larger depths expose progressively finer nested communities —
     * the structure RABBIT maps onto multi-level caches.
     */
    Clustering clusteringAtDepth(Index depth) const;

  private:
    std::vector<Index> parent_;
    std::vector<std::vector<Index>> children_;
};

} // namespace slo::community
