#include "community/speculation.hpp"

#include <cstdlib>

namespace slo::community
{

std::size_t
reorderBlockSize()
{
    static const std::size_t value = [] {
        std::size_t block = 4096;
        if (const char *env = std::getenv("SLO_REORDER_BLOCK")) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                block = static_cast<std::size_t>(parsed);
        }
        return block < 64 ? std::size_t{64} : block;
    }();
    return value;
}

} // namespace slo::community
