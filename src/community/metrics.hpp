/**
 * @file
 * Community-quality metrics from the paper.
 *
 * - modularity (Newman-Girvan): the objective RABBIT's community detection
 *   maximizes (Sec. V-A).
 * - insularity: the paper's simpler quality measure — the fraction of
 *   edges that connect members of the same community (Sec. V-A; Fig. 1's
 *   example evaluates to 20/24 = 0.83).
 * - insular nodes: nodes connected only to members of their own community
 *   (Sec. VI-A, Fig. 4); the nodes RABBIT++ groups first.
 *
 * All metrics treat the matrix as an undirected graph; pass a matrix with
 * a symmetric pattern (Csr::symmetrized() for directed inputs). Functions
 * check this requirement only by size (full symmetry checks are O(nnz)).
 */

#pragma once

#include <vector>

#include "community/clustering.hpp"
#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::community
{

/**
 * Newman-Girvan modularity Q of @p clustering on @p graph:
 * Q = sum_c [ intra_c/(2m) - (deg_c/(2m))^2 ], in [-0.5, 1).
 */
double modularity(const Csr &graph, const Clustering &clustering);

/**
 * Insularity: intra-community edges / total edges, in [0, 1].
 * Returns 1 for an edgeless graph (everything trivially insular).
 */
double insularity(const Csr &graph, const Clustering &clustering);

/**
 * Per-node insularity flags: node v is insular iff every neighbour of v
 * shares v's community. Zero-degree nodes are insular (they contribute no
 * inter-community traffic).
 */
std::vector<bool> insularNodes(const Csr &graph,
                               const Clustering &clustering);

/** Fraction of nodes that are insular (the y-axis of Fig. 4). */
double insularNodeFraction(const Csr &graph,
                           const Clustering &clustering);

/**
 * Mean conductance over non-empty communities: for community C,
 * phi(C) = cut(C, V\C) / min(vol(C), vol(V\C)). Lower is better;
 * complements insularity (which is a single global edge fraction)
 * with a per-community view.
 */
double meanConductance(const Csr &graph, const Clustering &clustering);

/**
 * The insularity threshold the paper uses to split the corpus into
 * "high-insularity" (RABBIT near-ideal) and "low-insularity" matrices.
 */
inline constexpr double kInsularityThreshold = 0.95;

} // namespace slo::community
