/**
 * @file
 * Union-find with lock-free concurrent root queries.
 *
 * The speculative parallel aggregation sweep (aggregation.cpp) needs
 * many threads resolving representatives while the structure is
 * *between* merges. Parent links are atomics: `findRoot` performs CAS
 * path-halving — replacing a vertex's parent with its grandparent —
 * which is a semantic no-op on the partition (both point into the same
 * set), so any number of threads may call it concurrently and each
 * still returns the unique root. Merging (`uniteInto`) is reserved for
 * the single-threaded commit phase; the invariant the whole design
 * rests on is:
 *
 *   parent links only change meaning during the sequential commit
 *   phase — concurrent mutation is limited to path-halving, which
 *   never changes which set a vertex belongs to.
 *
 * Phases are separated by the thread pool's fork/join barrier, whose
 * mutexes provide the happens-before edge; the atomics themselves can
 * therefore be relaxed (a stale parent read only costs extra hops, the
 * root answer is unchanged).
 */

#pragma once

#include <atomic>
#include <vector>

#include "matrix/types.hpp"

namespace slo::community
{

class ConcurrentDisjointSets
{
  public:
    explicit ConcurrentDisjointSets(Index n)
        : parent_(static_cast<std::size_t>(n))
    {
        for (Index v = 0; v < n; ++v)
            parent_[static_cast<std::size_t>(v)].store(
                v, std::memory_order_relaxed);
    }

    /**
     * Root of @p v's set, with CAS path-halving. Safe to call from any
     * number of threads concurrently (see the file comment); also the
     * find used by the sequential commit phase.
     */
    Index
    findRoot(Index v)
    {
        for (;;) {
            const Index parent =
                parent_[static_cast<std::size_t>(v)].load(
                    std::memory_order_relaxed);
            if (parent == v)
                return v;
            const Index grandparent =
                parent_[static_cast<std::size_t>(parent)].load(
                    std::memory_order_relaxed);
            if (grandparent == parent)
                return parent;
            // Halve the path: parent -> grandparent. Failure means a
            // sibling thread already halved through v; retrying from
            // the same vertex re-reads the fresher link.
            Index expected = parent;
            parent_[static_cast<std::size_t>(v)]
                .compare_exchange_weak(expected, grandparent,
                                       std::memory_order_relaxed);
            v = parent;
        }
    }

    /**
     * Attach @p loser's set under @p winner's root (winner's root stays
     * the representative). Commit-phase only: must not run concurrently
     * with other uniteInto calls (findRoot calls are fine).
     */
    void
    uniteInto(Index loser, Index winner)
    {
        const Index loser_root = findRoot(loser);
        const Index winner_root = findRoot(winner);
        parent_[static_cast<std::size_t>(loser_root)].store(
            winner_root, std::memory_order_relaxed);
    }

  private:
    std::vector<std::atomic<Index>> parent_;
};

} // namespace slo::community
