/**
 * @file
 * Block-speculative parallel sweep: the shared execution shape behind
 * the parallel Rabbit aggregation and Louvain local-moving passes.
 *
 * Both algorithms are sequential greedy loops whose iterations *mostly*
 * don't interact: vertex v's decision depends on a handful of
 * communities, and consecutive vertices rarely touch the same ones.
 * The sweep exploits that while keeping the *sequential* semantics:
 *
 *   1. Speculate — a block of visit-order iterations is evaluated in
 *      parallel against the block-start state. Each proposal records
 *      the epochs of every community it read.
 *   2. Commit — proposals are applied one by one in visit order. A
 *      proposal whose recorded epochs still match is applied as-is; a
 *      stale one (an earlier commit touched a community it read) is
 *      recomputed inline against the current state, which reproduces
 *      the serial decision exactly. Every applied mutation bumps the
 *      epochs of the communities it touches.
 *
 * The committed sequence of decisions is therefore identical to the
 * serial loop at any thread count and block size — parallelism only
 * changes how much speculative work is wasted, never the output.
 * Shared state is read in the speculation phase and written in the
 * commit phase, and the pool's fork/join barrier orders the two, so
 * the sweep is race-free without per-element atomics.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/types.hpp"
#include "par/par.hpp"

namespace slo::community
{

/**
 * Speculation block size for the parallel reorder sweeps: how many
 * visit-order iterations are proposed in parallel between sequential
 * commit passes. Reads SLO_REORDER_BLOCK (default 4096, minimum 64).
 * Affects speculation efficiency only — the committed output is
 * bit-identical at every value.
 */
std::size_t reorderBlockSize();

/** Epoch counters per community, for speculation read validation. */
class Epochs
{
  public:
    explicit Epochs(Index n)
        : epoch_(static_cast<std::size_t>(n), 0)
    {
    }

    std::uint64_t
    of(Index community) const
    {
        return epoch_[static_cast<std::size_t>(community)];
    }

    /** Commit phase: mark @p community as mutated. */
    void
    bump(Index community)
    {
        ++epoch_[static_cast<std::size_t>(community)];
    }

    /** True when every recorded (community, epoch) pair still holds. */
    bool
    stillValid(
        const std::vector<std::pair<Index, std::uint64_t>> &reads) const
    {
        for (const auto &[community, epoch] : reads) {
            if (epoch_[static_cast<std::size_t>(community)] != epoch)
                return false;
        }
        return true;
    }

  private:
    std::vector<std::uint64_t> epoch_;
};

/**
 * Run the speculate/commit sweep over @p visit on @p pool.
 *
 * @p speculate maps a vertex to a Proposal (parallel, pure reads of
 * block-start state); @p commit applies one vertex's decision
 * (sequential, in visit order; does its own validation/recompute).
 * On a serial pool the caller should prefer its plain serial loop —
 * this function still produces the identical result, just with
 * speculation overhead.
 */
template <typename Proposal, typename SpeculateFn, typename CommitFn>
void
speculativeSweep(const std::vector<Index> &visit, std::size_t block,
                 par::ThreadPool &pool, const SpeculateFn &speculate,
                 const CommitFn &commit)
{
    std::vector<Proposal> proposals(std::min(block, visit.size()));
    for (std::size_t lo = 0; lo < visit.size(); lo += block) {
        const std::size_t hi = std::min(visit.size(), lo + block);
        par::parallelFor(
            lo, hi,
            [&](std::size_t i) {
                proposals[i - lo] = speculate(visit[i]);
            },
            {.grain = 0, .pool = &pool});
        for (std::size_t i = lo; i < hi; ++i)
            commit(visit[i], proposals[i - lo]);
    }
}

} // namespace slo::community
