/**
 * @file
 * RABBIT-style incremental community aggregation.
 *
 * The core of RABBIT (Arai et al., IPDPS'16): visit vertices in ascending
 * degree order; merge each vertex's community into the neighbouring
 * community with the largest positive modularity gain. Merges are recorded
 * in a Dendrogram whose DFS traversal yields the RABBIT ordering and whose
 * forest roots define the top-level communities that insularity is
 * computed over.
 */

#pragma once

#include <cstdint>

#include "community/clustering.hpp"
#include "community/dendrogram.hpp"
#include "matrix/csr.hpp"

namespace slo::community
{

/** Tuning knobs for the aggregation pass. */
struct AggregationOptions
{
    /**
     * Stop merging a community once it reaches this many vertices
     * (0 = unlimited, the faithful RABBIT behaviour). Exposed for
     * ablation studies on the mawi-style degenerate case.
     */
    Index maxCommunitySize = 0;

    /** Minimum modularity gain required to merge. */
    double minGain = 0.0;
};

/** Output of one aggregation pass. */
struct AggregationResult
{
    Dendrogram dendrogram;
    Clustering clustering; ///< top-level communities (compacted labels)
    Index numMerges = 0;
};

/**
 * Run incremental modularity-maximizing aggregation on @p graph.
 * @param graph undirected view (symmetric non-zero pattern expected)
 */
AggregationResult aggregateCommunities(
    const Csr &graph, const AggregationOptions &options = {});

} // namespace slo::community
