#include "gpu/simulate.hpp"

#include <algorithm>

#include "cache/belady.hpp"
#include "check/checked_cast.hpp"
#include "gpu/sim_stream.hpp"
#include "obs/obs.hpp"

namespace slo::gpu
{

SimReport
simulateKernel(const Csr &matrix, const GpuSpec &spec,
               const SimOptions &options)
{
    require(matrix.isSquare(), "simulateKernel: matrix must be square");
    SLO_SPAN("gpu.simulate");
    const Index n = matrix.numRows();
    const Offset nnz = matrix.numNonZeros();
    const std::uint32_t line_bytes = spec.l2.lineBytes;
    const bool is_spgemm = kernels::isSpgemm(options.kernel);

    SimReport report;

    // SpGEMM needs its B operand and a symbolic pass (nnz(C) sizes the
    // output region of the layout) before the stream can be replayed.
    // B is built once and held across both Belady passes.
    Csr spgemm_b;
    Offset nnz_c = 0;
    if (is_spgemm) {
        SLO_SPAN("gpu.spgemm:symbolic");
        spgemm_b = kernels::spgemmOperandB(
            matrix, kernels::spgemmVariant(options.kernel));
        report.spgemm =
            kernels::spgemmStreamStats(matrix, spgemm_b);
        report.hasSpgemm = true;
        nnz_c = checkedCast<Offset>(report.spgemm.nnzC);
    }

    const kernels::AddressLayout layout =
        kernels::makeLayout(options.kernel, n, nnz, options.denseCols,
                            line_bytes, nnz_c);
    const kernels::StreamOptions stream_options{options.rowWindow,
                                                options.denseCols};
    report.compulsoryBytes = compulsoryTrafficBytes(
        options.kernel, n, nnz, options.denseCols, nnz_c);

    if (options.useBelady) {
        SLO_SPAN("gpu.replay:belady");
        // The two-pass OPT driver regenerates the stream, so hold the
        // COO across both passes instead of converting twice.
        Coo coo;
        if (options.kernel == kernels::KernelKind::SpmvCoo)
            coo = matrix.toCoo(); // row-major sorted
        // Access-count hint: SpMV-CSR touches ~3 addresses per nnz + 3
        // per row; SpGEMM touches 3 per row + 4 per A non-zero + 2 per
        // merged element + 2 per C non-zero (exact, by stream shape).
        const std::uint64_t hint =
            is_spgemm
                ? static_cast<std::uint64_t>(n) * 3 +
                      static_cast<std::uint64_t>(nnz) * 4 +
                      report.spgemm.flops * 2 + report.spgemm.nnzC * 2
                : static_cast<std::uint64_t>(nnz) * 3 +
                      static_cast<std::uint64_t>(n) * 3;
        report.cacheStats = cache::simulateBeladyStreamed(
            spec.l2, layout.xBase, layout.xEnd, hint,
            [&](auto &&sink) {
                if (is_spgemm)
                    kernels::forEachAccess(options.kernel, matrix,
                                           spgemm_b, layout,
                                           stream_options, line_bytes,
                                           sink);
                else
                    kernels::forEachAccess(options.kernel, matrix, coo,
                                           layout, stream_options,
                                           line_bytes, sink);
            });
    } else {
        SLO_SPAN("gpu.replay:lru");
        report.cacheStats = runLruSim(
            spec.l2, layout.xBase, layout.xEnd, [&](auto &sink) {
                if (is_spgemm)
                    kernels::forEachAccess(options.kernel, matrix,
                                           spgemm_b, layout,
                                           stream_options, line_bytes,
                                           sink);
                else
                    kernels::forEachAccess(options.kernel, matrix,
                                           layout, stream_options,
                                           line_bytes, sink);
            });
    }

    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        report.compulsoryBytes == 0
            ? 0.0
            : static_cast<double>(report.trafficBytes) /
                  static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    if (is_spgemm) {
        // Longest *output* row: the serialized merge a single
        // accumulator must complete.
        report.maxRowNnz = report.spgemm.maxRowNnz;
    } else {
        for (Index r = 0; r < n; ++r)
            report.maxRowNnz =
                std::max(report.maxRowNnz, matrix.degree(r));
    }
    // A row's serialized work: coords + values + X per non-zero.
    const auto max_row_bytes =
        static_cast<std::uint64_t>(report.maxRowNnz) * 3 * kElemBytes;
    report.modeledSeconds =
        modeledRuntimeSeconds(spec, report.streamMissBytes,
                              report.randomMissBytes, max_row_bytes);
    report.normalizedRuntime =
        report.idealSeconds == 0.0
            ? 0.0
            : report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    // Per-region DRAM traffic split, accumulated process-wide so a
    // run's streamed-vs-irregular byte mix is visible in the metrics
    // dump without re-simulating.
    obs::counter("gpu.simulations").add();
    obs::counter("gpu.traffic_bytes").add(report.trafficBytes);
    obs::counter("gpu.stream_miss_bytes").add(report.streamMissBytes);
    obs::counter("gpu.random_miss_bytes").add(report.randomMissBytes);
    obs::counter("gpu.compulsory_bytes").add(report.compulsoryBytes);
    if (report.hasSpgemm) {
        // Merge-shape metrics: what the ordering changed about the
        // Gustavson merge itself, independent of cache geometry.
        obs::counter("spgemm.simulations").add();
        obs::counter("spgemm.flops").add(report.spgemm.flops);
        obs::counter("spgemm.nnz_c").add(report.spgemm.nnzC);
        obs::counter("spgemm.b_row_fetches")
            .add(report.spgemm.bRowFetches);
        obs::counter("spgemm.b_row_reuses")
            .add(report.spgemm.bRowReuses);
        obs::histogram("spgemm.mean_fan_in")
            .observe(report.spgemm.meanFanIn(n));
        obs::histogram("spgemm.mean_reuse_distance")
            .observe(report.spgemm.meanReuseDistance());
    }
    return report;
}

obs::Json
simReportJson(const SimReport &report)
{
    obs::Json j = obs::Json::object();
    j["compulsory_bytes"] = report.compulsoryBytes;
    j["traffic_bytes"] = report.trafficBytes;
    j["stream_miss_bytes"] = report.streamMissBytes;
    j["random_miss_bytes"] = report.randomMissBytes;
    j["normalized_traffic"] = report.normalizedTraffic;
    j["ideal_seconds"] = report.idealSeconds;
    j["modeled_seconds"] = report.modeledSeconds;
    j["normalized_runtime"] = report.normalizedRuntime;
    j["l2_hit_rate"] = report.l2HitRate;
    j["dead_line_fraction"] = report.deadLineFraction;
    j["max_row_nnz"] = report.maxRowNnz;
    obs::Json cache = obs::Json::object();
    cache["accesses"] = report.cacheStats.accesses;
    cache["hits"] = report.cacheStats.hits;
    cache["misses"] = report.cacheStats.misses;
    cache["evictions"] = report.cacheStats.evictions;
    cache["lines_filled"] = report.cacheStats.linesFilled;
    cache["dead_lines"] = report.cacheStats.deadLines;
    cache["irregular_misses"] = report.cacheStats.irregularMisses;
    cache["fill_bytes"] = report.cacheStats.fillBytes;
    cache["irregular_fill_bytes"] =
        report.cacheStats.irregularFillBytes;
    j["cache"] = std::move(cache);
    if (report.hasSpgemm) {
        // Emitted only for SpGEMM runs so pre-existing manifest and
        // golden-snapshot shapes stay byte-identical.
        obs::Json sp = obs::Json::object();
        sp["flops"] = report.spgemm.flops;
        sp["nnz_c"] = report.spgemm.nnzC;
        sp["fan_in_total"] = report.spgemm.fanInTotal;
        sp["max_fan_in"] = report.spgemm.maxFanIn;
        sp["max_row_nnz"] = report.spgemm.maxRowNnz;
        sp["b_row_fetches"] = report.spgemm.bRowFetches;
        sp["b_row_reuses"] = report.spgemm.bRowReuses;
        sp["reuse_distance_total"] = report.spgemm.reuseDistanceTotal;
        sp["max_reuse_distance"] = report.spgemm.maxReuseDistance;
        j["spgemm"] = std::move(sp);
    }
    return j;
}

} // namespace slo::gpu
