#include "gpu/simulate.hpp"

#include <algorithm>
#include <vector>

#include "cache/belady.hpp"

namespace slo::gpu
{

namespace
{

/** Dispatch the right access-stream generator into @p sink. */
template <typename Sink>
void
replayKernel(const Csr &matrix, const kernels::AddressLayout &layout,
             const SimOptions &options, std::uint32_t line_bytes,
             Sink &&sink)
{
    const kernels::StreamOptions stream_options{options.rowWindow,
                                                options.denseCols};
    switch (options.kernel) {
      case kernels::KernelKind::SpmvCsr:
        kernels::spmvCsrStream(matrix, layout, stream_options, sink);
        break;
      case kernels::KernelKind::SpmvCoo: {
        const Coo coo = matrix.toCoo(); // row-major sorted
        kernels::spmvCooStream(coo, layout, sink);
        break;
      }
      case kernels::KernelKind::SpmmCsr:
        kernels::spmmCsrStream(matrix, layout, stream_options,
                               line_bytes, sink);
        break;
    }
}

} // namespace

SimReport
simulateKernel(const Csr &matrix, const GpuSpec &spec,
               const SimOptions &options)
{
    require(matrix.isSquare(), "simulateKernel: matrix must be square");
    const Index n = matrix.numRows();
    const Offset nnz = matrix.numNonZeros();
    const std::uint32_t line_bytes = spec.l2.lineBytes;
    const kernels::AddressLayout layout = kernels::makeLayout(
        options.kernel, n, nnz, options.denseCols, line_bytes);

    SimReport report;
    report.compulsoryBytes = compulsoryTrafficBytes(
        options.kernel, n, nnz, options.denseCols);

    if (options.useBelady) {
        std::vector<std::uint64_t> trace;
        // SpMV-CSR touches ~3 addresses per nnz + 3 per row.
        trace.reserve(static_cast<std::size_t>(nnz) * 3 +
                      static_cast<std::size_t>(n) * 3);
        replayKernel(matrix, layout, options, line_bytes,
                     [&trace](std::uint64_t addr) {
                         trace.push_back(addr);
                     });
        report.cacheStats = cache::simulateBelady(
            trace, spec.l2, layout.xBase, layout.xEnd);
    } else {
        cache::CacheSim sim(spec.l2);
        sim.setIrregularRegion(layout.xBase, layout.xEnd);
        replayKernel(matrix, layout, options, line_bytes,
                     [&sim](std::uint64_t addr) { sim.access(addr); });
        sim.finish();
        report.cacheStats = sim.stats();
    }

    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        report.compulsoryBytes == 0
            ? 0.0
            : static_cast<double>(report.trafficBytes) /
                  static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    for (Index r = 0; r < n; ++r)
        report.maxRowNnz = std::max(report.maxRowNnz, matrix.degree(r));
    // A row's serialized work: coords + values + X per non-zero.
    const auto max_row_bytes =
        static_cast<std::uint64_t>(report.maxRowNnz) * 3 * kElemBytes;
    report.modeledSeconds =
        modeledRuntimeSeconds(spec, report.streamMissBytes,
                              report.randomMissBytes, max_row_bytes);
    report.normalizedRuntime =
        report.idealSeconds == 0.0
            ? 0.0
            : report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    return report;
}

} // namespace slo::gpu
