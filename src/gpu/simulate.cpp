#include "gpu/simulate.hpp"

#include <algorithm>
#include <vector>

#include "cache/belady.hpp"
#include "obs/obs.hpp"

namespace slo::gpu
{

namespace
{

/** Dispatch the right access-stream generator into @p sink. */
template <typename Sink>
void
replayKernel(const Csr &matrix, const kernels::AddressLayout &layout,
             const SimOptions &options, std::uint32_t line_bytes,
             Sink &&sink)
{
    const kernels::StreamOptions stream_options{options.rowWindow,
                                                options.denseCols};
    switch (options.kernel) {
      case kernels::KernelKind::SpmvCsr:
        kernels::spmvCsrStream(matrix, layout, stream_options, sink);
        break;
      case kernels::KernelKind::SpmvCoo: {
        const Coo coo = matrix.toCoo(); // row-major sorted
        kernels::spmvCooStream(coo, layout, sink);
        break;
      }
      case kernels::KernelKind::SpmmCsr:
        kernels::spmmCsrStream(matrix, layout, stream_options,
                               line_bytes, sink);
        break;
    }
}

} // namespace

SimReport
simulateKernel(const Csr &matrix, const GpuSpec &spec,
               const SimOptions &options)
{
    require(matrix.isSquare(), "simulateKernel: matrix must be square");
    SLO_SPAN("gpu.simulate");
    const Index n = matrix.numRows();
    const Offset nnz = matrix.numNonZeros();
    const std::uint32_t line_bytes = spec.l2.lineBytes;
    const kernels::AddressLayout layout = kernels::makeLayout(
        options.kernel, n, nnz, options.denseCols, line_bytes);

    SimReport report;
    report.compulsoryBytes = compulsoryTrafficBytes(
        options.kernel, n, nnz, options.denseCols);

    if (options.useBelady) {
        SLO_SPAN("gpu.replay:belady");
        std::vector<std::uint64_t> trace;
        // SpMV-CSR touches ~3 addresses per nnz + 3 per row.
        trace.reserve(static_cast<std::size_t>(nnz) * 3 +
                      static_cast<std::size_t>(n) * 3);
        replayKernel(matrix, layout, options, line_bytes,
                     [&trace](std::uint64_t addr) {
                         trace.push_back(addr);
                     });
        report.cacheStats = cache::simulateBelady(
            trace, spec.l2, layout.xBase, layout.xEnd);
    } else {
        SLO_SPAN("gpu.replay:lru");
        cache::CacheSim sim(spec.l2);
        sim.setIrregularRegion(layout.xBase, layout.xEnd);
        replayKernel(matrix, layout, options, line_bytes,
                     [&sim](std::uint64_t addr) { sim.access(addr); });
        sim.finish();
        report.cacheStats = sim.stats();
    }

    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        report.compulsoryBytes == 0
            ? 0.0
            : static_cast<double>(report.trafficBytes) /
                  static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    for (Index r = 0; r < n; ++r)
        report.maxRowNnz = std::max(report.maxRowNnz, matrix.degree(r));
    // A row's serialized work: coords + values + X per non-zero.
    const auto max_row_bytes =
        static_cast<std::uint64_t>(report.maxRowNnz) * 3 * kElemBytes;
    report.modeledSeconds =
        modeledRuntimeSeconds(spec, report.streamMissBytes,
                              report.randomMissBytes, max_row_bytes);
    report.normalizedRuntime =
        report.idealSeconds == 0.0
            ? 0.0
            : report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    // Per-region DRAM traffic split, accumulated process-wide so a
    // run's streamed-vs-irregular byte mix is visible in the metrics
    // dump without re-simulating.
    obs::counter("gpu.simulations").add();
    obs::counter("gpu.traffic_bytes").add(report.trafficBytes);
    obs::counter("gpu.stream_miss_bytes").add(report.streamMissBytes);
    obs::counter("gpu.random_miss_bytes").add(report.randomMissBytes);
    obs::counter("gpu.compulsory_bytes").add(report.compulsoryBytes);
    return report;
}

obs::Json
simReportJson(const SimReport &report)
{
    obs::Json j = obs::Json::object();
    j["compulsory_bytes"] = report.compulsoryBytes;
    j["traffic_bytes"] = report.trafficBytes;
    j["stream_miss_bytes"] = report.streamMissBytes;
    j["random_miss_bytes"] = report.randomMissBytes;
    j["normalized_traffic"] = report.normalizedTraffic;
    j["ideal_seconds"] = report.idealSeconds;
    j["modeled_seconds"] = report.modeledSeconds;
    j["normalized_runtime"] = report.normalizedRuntime;
    j["l2_hit_rate"] = report.l2HitRate;
    j["dead_line_fraction"] = report.deadLineFraction;
    j["max_row_nnz"] = report.maxRowNnz;
    obs::Json cache = obs::Json::object();
    cache["accesses"] = report.cacheStats.accesses;
    cache["hits"] = report.cacheStats.hits;
    cache["misses"] = report.cacheStats.misses;
    cache["evictions"] = report.cacheStats.evictions;
    cache["lines_filled"] = report.cacheStats.linesFilled;
    cache["dead_lines"] = report.cacheStats.deadLines;
    cache["irregular_misses"] = report.cacheStats.irregularMisses;
    cache["fill_bytes"] = report.cacheStats.fillBytes;
    cache["irregular_fill_bytes"] =
        report.cacheStats.irregularFillBytes;
    j["cache"] = std::move(cache);
    return j;
}

} // namespace slo::gpu
