/**
 * @file
 * GPU simulation of the cache-blocked SpMV (Sec. VII extension).
 *
 * Traffic is normalized to the *untiled* SpMV-CSR compulsory traffic so
 * tiled and untiled runs are directly comparable: tiling pays extra
 * streamed bytes (per-strip row bookkeeping and Y read-modify-write)
 * to bound the X working set.
 */

#pragma once

#include "gpu/simulate.hpp"
#include "kernels/tiled_spmv.hpp"

namespace slo::gpu
{

/** Simulate the strip-by-strip SpMV of @p tiled on @p spec. */
SimReport simulateTiledSpmv(const kernels::TiledCsr &tiled,
                            const GpuSpec &spec);

} // namespace slo::gpu
