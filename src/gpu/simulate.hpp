/**
 * @file
 * End-to-end kernel simulation on the modelled GPU.
 *
 * Combines everything below it: the kernel's access stream is replayed
 * through the L2 model (LRU, or Belady OPT for the Fig. 8 headroom
 * analysis), DRAM traffic is split into streaming and irregular parts,
 * and the run-time model converts traffic into the normalized run times
 * the paper's tables report.
 */

#pragma once

#include <cstdint>

#include "cache/cache.hpp"
#include "gpu/gpu_spec.hpp"
#include "gpu/traffic_model.hpp"
#include "kernels/access_stream.hpp"
#include "matrix/csr.hpp"
#include "obs/json.hpp"

namespace slo::gpu
{

/** What to simulate. */
struct SimOptions
{
    kernels::KernelKind kernel = kernels::KernelKind::SpmvCsr;
    Index denseCols = 4;        ///< K for SpMM
    int rowWindow = 1;          ///< concurrent-row interleaving
    bool useBelady = false;     ///< OPT replacement instead of LRU
};

/** Everything the paper's figures/tables need about one simulation. */
struct SimReport
{
    std::uint64_t compulsoryBytes = 0;
    std::uint64_t trafficBytes = 0;
    std::uint64_t streamMissBytes = 0;
    std::uint64_t randomMissBytes = 0; ///< misses in the X/B region

    /** DRAM traffic normalized to compulsory (Fig. 2's y-axis). */
    double normalizedTraffic = 0.0;

    double idealSeconds = 0.0;
    double modeledSeconds = 0.0;
    /** Run time normalized to ideal (Fig. 3 / Tables II & IV). */
    double normalizedRuntime = 0.0;

    double l2HitRate = 0.0;
    double deadLineFraction = 0.0; ///< Table III's metric
    Index maxRowNnz = 0; ///< longest row (drives the serialization floor)

    cache::CacheStats cacheStats;

    /** Merge statistics — populated for SpGEMM kernels only. */
    kernels::SpgemmStats spgemm;
    bool hasSpgemm = false;
};

/** Simulate @p options.kernel on @p matrix against @p spec. */
SimReport simulateKernel(const Csr &matrix, const GpuSpec &spec,
                         const SimOptions &options = {});

/** The full report as JSON (run manifests, tooling). */
obs::Json simReportJson(const SimReport &report);

} // namespace slo::gpu
