/**
 * @file
 * Fused access-stream -> cache-simulation driver.
 *
 * The simulators never materialize an address trace: the kernel's
 * access generator emits byte addresses into a fixed-size batch
 * buffer, and every full batch is replayed through the set-sharded LRU
 * simulator (cache/sharded.hpp) on the slo::par pool. Peak transient
 * memory is one batch (256 KiB) regardless of matrix size, and the
 * batched replay loop inlines the per-access core instead of paying a
 * cross-TU call per address.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/sharded.hpp"

namespace slo::gpu
{

/**
 * Addresses buffered per flush. Large enough to amortize the routing
 * pass and the per-batch parallelFor, small enough to stay resident in
 * L2 while the shards scan it. Fixed (never derived from the thread
 * count): simulated results are bit-identical at any batch size, but a
 * constant keeps replay byte-for-byte reproducible by inspection.
 */
constexpr std::size_t kSimBatchAccesses = std::size_t{1} << 15;

/**
 * Sink adapter turning a per-address generator into fixed-size
 * batches: buffers each address and hands every full batch to
 * @p Flush (signature `void(const std::uint64_t *, std::size_t)`).
 * Call drain() after the generator returns to flush the tail.
 */
template <typename Flush>
class BatchSink
{
  public:
    BatchSink(std::size_t capacity, Flush flush)
        : capacity_(capacity), flush_(std::move(flush))
    {
        buffer_.reserve(capacity_);
    }

    void
    operator()(std::uint64_t addr)
    {
        buffer_.push_back(addr);
        if (buffer_.size() == capacity_)
            drain();
    }

    void
    drain()
    {
        if (buffer_.empty())
            return;
        flush_(buffer_.data(), buffer_.size());
        buffer_.clear();
    }

  private:
    std::size_t capacity_;
    Flush flush_;
    std::vector<std::uint64_t> buffer_;
};

/**
 * Run one LRU cache simulation over the stream @p replay emits.
 * @p replay is called once with a `void(std::uint64_t)` sink and must
 * emit the kernel's full access stream into it. Stats are
 * bit-identical to a serial per-access CacheSim replay at any shard /
 * thread / batch configuration (see sharded.hpp).
 */
template <typename Replay>
cache::CacheStats
runLruSim(const cache::CacheConfig &config, std::uint64_t irregular_lo,
          std::uint64_t irregular_hi, Replay &&replay)
{
    cache::ShardedCacheSim sim(config);
    sim.setIrregularRegion(irregular_lo, irregular_hi);
    BatchSink sink(kSimBatchAccesses,
                   [&sim](const std::uint64_t *addrs, std::size_t n) {
                       sim.accessBatch(addrs, n);
                   });
    replay(sink);
    sink.drain();
    sim.finish();
    return sim.stats();
}

} // namespace slo::gpu
