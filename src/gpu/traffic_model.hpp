/**
 * @file
 * Compulsory-traffic and ideal-run-time formulas (paper Sec. IV-B).
 *
 * Compulsory DRAM traffic is reached when the last-level cache incurs
 * only compulsory misses — each array is moved once:
 *
 *   SpMV-CSR : (2N + (N+1) + 2*NZ) * 4B   (X, Y, rowOffsets, coords, vals)
 *   SpMV-COO : (2N + 3*NZ) * 4B           (X, Y, rowIdx, colIdx, vals)
 *   SpMM-K   : (2*N*K + (N+1) + 2*NZ) * 4B
 *
 * Ideal run time = compulsory traffic / achievable streaming bandwidth
 * (672 GB/s on the A6000, per BabelStream).
 */

#pragma once

#include <cstdint>

#include "gpu/gpu_spec.hpp"
#include "kernels/access_stream.hpp"
#include "matrix/types.hpp"

namespace slo::gpu
{

/**
 * Compulsory DRAM traffic in bytes for @p kind on an n x n matrix with
 * @p nnz non-zeros (@p dense_cols = K for SpMM; @p nnz_c = nnz of the
 * C product for the SpGEMM kinds, whose compulsory traffic moves A, B,
 * and C each exactly once — both in-tree variants have
 * nnz(B) == nnz(A)).
 */
std::uint64_t compulsoryTrafficBytes(kernels::KernelKind kind, Index n,
                                     Offset nnz, Index dense_cols = 1,
                                     Offset nnz_c = 0);

/** Ideal (minimum) kernel run time on @p spec, in seconds. */
double idealRuntimeSeconds(const GpuSpec &spec,
                           std::uint64_t compulsory_bytes);

/**
 * Modelled kernel run time: streaming bytes at streaming bandwidth plus
 * irregular (random-line) bytes at de-rated bandwidth, floored by the
 * single-row serialization bound (@p max_row_bytes of work that cannot
 * spread across the GPU; pass 0 to disable).
 */
double modeledRuntimeSeconds(const GpuSpec &spec,
                             std::uint64_t stream_bytes,
                             std::uint64_t random_bytes,
                             std::uint64_t max_row_bytes = 0);

} // namespace slo::gpu
