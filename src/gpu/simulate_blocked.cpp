#include "gpu/simulate_blocked.hpp"

#include <algorithm>
#include <vector>

#include "gpu/sim_stream.hpp"

namespace slo::gpu
{

SimReport
simulateBlockedSpmv(const kernels::PropagationBlockedSpmv &blocked,
                    const GpuSpec &spec)
{
    const Csr &csc = blocked.csc();
    const Index n = blocked.numRows();
    const Offset nnz = csc.numNonZeros();
    const std::uint32_t line_bytes = spec.l2.lineBytes;
    const auto record_bytes =
        static_cast<std::uint64_t>(sizeof(Index) + sizeof(Value));

    auto align_up = [line_bytes](std::uint64_t bytes) {
        const std::uint64_t mask = line_bytes - 1;
        return (bytes + mask) & ~mask;
    };

    // Regions: x, y, CSC arrays, then one record buffer per bin.
    std::uint64_t cursor = 0;
    auto place = [&](std::uint64_t size) {
        const std::uint64_t base = cursor;
        cursor += align_up(size);
        return base;
    };
    const std::uint64_t x_base =
        place(static_cast<std::uint64_t>(n) * kElemBytes);
    const std::uint64_t y_base =
        place(static_cast<std::uint64_t>(n) * kElemBytes);
    const std::uint64_t y_end = cursor;
    const std::uint64_t offsets_base =
        place(static_cast<std::uint64_t>(n + 1) * kElemBytes);
    const std::uint64_t coords_base =
        place(static_cast<std::uint64_t>(nnz) * kElemBytes);
    const std::uint64_t values_base =
        place(static_cast<std::uint64_t>(nnz) * kElemBytes);
    const Index bins = blocked.numBins();
    // The address space is virtual, so every bin gets worst-case
    // capacity (all records landing in one bin) to keep regions
    // disjoint no matter how skewed the destinations are.
    std::vector<std::uint64_t> bin_base(
        static_cast<std::size_t>(bins));
    for (Index b = 0; b < bins; ++b) {
        bin_base[static_cast<std::size_t>(b)] =
            place(static_cast<std::uint64_t>(nnz) * record_bytes +
                  line_bytes);
    }

    const Index bin_rows = blocked.binRows();
    // The irregular operand of the blocked kernel is the per-bin y
    // slice in phase 2 (bounded by construction).
    const cache::CacheStats stats = runLruSim(
        spec.l2, y_base, y_end, [&](auto &sink) {
            // Phase 1: stream CSC + x, append records round the bins.
            std::vector<std::uint64_t> bin_cursor(
                static_cast<std::size_t>(bins), 0);
            for (Index c = 0; c < n; ++c) {
                sink(offsets_base +
                     static_cast<std::uint64_t>(c) * kElemBytes);
                sink(offsets_base +
                     static_cast<std::uint64_t>(c + 1) * kElemBytes);
                sink(x_base +
                     static_cast<std::uint64_t>(c) * kElemBytes);
                const Offset begin =
                    csc.rowOffsets()[static_cast<std::size_t>(c)];
                const Offset end =
                    csc.rowOffsets()[static_cast<std::size_t>(c) + 1];
                for (Offset i = begin; i < end; ++i) {
                    const auto si = static_cast<std::size_t>(i);
                    sink(coords_base +
                         static_cast<std::uint64_t>(i) * kElemBytes);
                    sink(values_base +
                         static_cast<std::uint64_t>(i) * kElemBytes);
                    const auto b = static_cast<std::size_t>(
                        csc.colIndices()[si] / bin_rows);
                    sink(bin_base[b] + bin_cursor[b]);
                    bin_cursor[b] += record_bytes;
                }
            }

            // Phase 2: drain bins sequentially, update the y slice.
            for (Index b = 0; b < bins; ++b) {
                const auto sb = static_cast<std::size_t>(b);
                // Re-walk this bin's records in order; destinations
                // repeat the phase-1 assignment, which we reproduce by
                // a second pass over the CSC restricted to this bin.
                std::uint64_t read_cursor = 0;
                for (Index c = 0; c < n; ++c) {
                    const Offset begin =
                        csc.rowOffsets()[static_cast<std::size_t>(c)];
                    const Offset end =
                        csc.rowOffsets()[static_cast<std::size_t>(c) +
                                         1];
                    for (Offset i = begin; i < end; ++i) {
                        const auto si = static_cast<std::size_t>(i);
                        const Index dst = csc.colIndices()[si];
                        if (dst / bin_rows != b)
                            continue;
                        sink(bin_base[sb] + read_cursor);
                        read_cursor += record_bytes;
                        sink(y_base + static_cast<std::uint64_t>(dst) *
                                          kElemBytes);
                    }
                }
            }
        });

    SimReport report;
    report.cacheStats = stats;
    report.compulsoryBytes = compulsoryTrafficBytes(
        kernels::KernelKind::SpmvCsr, n, nnz);
    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        static_cast<double>(report.trafficBytes) /
        static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    report.modeledSeconds = modeledRuntimeSeconds(
        spec, report.streamMissBytes, report.randomMissBytes, 0);
    report.normalizedRuntime =
        report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    return report;
}

} // namespace slo::gpu
