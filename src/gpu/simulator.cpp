#include "gpu/simulator.hpp"

#include <algorithm>
#include <list>
#include <string>
#include <unordered_map>

#include "check/checked_cast.hpp"
#include "obs/obs.hpp"

namespace slo::gpu
{

namespace
{

std::uint64_t
alignUp(std::uint64_t bytes, std::uint32_t line_bytes)
{
    const std::uint64_t mask = line_bytes - 1;
    return (bytes + mask) & ~mask;
}

/**
 * Shared tail of every backend: derive the normalized columns from the
 * raw byte counters, apply the run-time model, and mirror the same
 * obs counters simulateKernel emits so metrics dumps are
 * backend-uniform.
 */
void
finalizeReport(SimReport &report, const GpuSpec &spec, Index n)
{
    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        report.compulsoryBytes == 0
            ? 0.0
            : static_cast<double>(report.trafficBytes) /
                  static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    const auto max_row_bytes =
        static_cast<std::uint64_t>(report.maxRowNnz) * 3 * kElemBytes;
    report.modeledSeconds =
        modeledRuntimeSeconds(spec, report.streamMissBytes,
                              report.randomMissBytes, max_row_bytes);
    report.normalizedRuntime =
        report.idealSeconds == 0.0
            ? 0.0
            : report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    obs::counter("gpu.simulations").add();
    obs::counter("gpu.traffic_bytes").add(report.trafficBytes);
    obs::counter("gpu.stream_miss_bytes").add(report.streamMissBytes);
    obs::counter("gpu.random_miss_bytes").add(report.randomMissBytes);
    obs::counter("gpu.compulsory_bytes").add(report.compulsoryBytes);
    if (report.hasSpgemm) {
        obs::counter("spgemm.simulations").add();
        obs::counter("spgemm.flops").add(report.spgemm.flops);
        obs::counter("spgemm.nnz_c").add(report.spgemm.nnzC);
        obs::counter("spgemm.b_row_fetches")
            .add(report.spgemm.bRowFetches);
        obs::counter("spgemm.b_row_reuses")
            .add(report.spgemm.bRowReuses);
        obs::histogram("spgemm.mean_fan_in")
            .observe(report.spgemm.meanFanIn(n));
        obs::histogram("spgemm.mean_reuse_distance")
            .observe(report.spgemm.meanReuseDistance());
    }
}

/** Fill maxRowNnz + SpGEMM merge stats; returns nnz(C) (0 non-SpGEMM). */
Offset
prepareWorkloadStats(SimReport &report, const Csr &matrix,
                     const SimOptions &options, Csr *spgemm_b)
{
    const Index n = matrix.numRows();
    if (kernels::isSpgemm(options.kernel)) {
        Csr b = kernels::spgemmOperandB(
            matrix, kernels::spgemmVariant(options.kernel));
        report.spgemm = kernels::spgemmStreamStats(matrix, b);
        report.hasSpgemm = true;
        report.maxRowNnz = report.spgemm.maxRowNnz;
        if (spgemm_b != nullptr)
            *spgemm_b = std::move(b);
        return checkedCast<Offset>(report.spgemm.nnzC);
    }
    for (Index r = 0; r < n; ++r)
        report.maxRowNnz = std::max(report.maxRowNnz, matrix.degree(r));
    return 0;
}

// ---------------------------------------------------------------------
// Analytic: the compulsory-only roofline. Every line moves exactly
// once at streaming bandwidth, so traffic == compulsory and the
// normalized columns are 1.0 by construction — the lower bound every
// cache-model column is compared against.
// ---------------------------------------------------------------------

class AnalyticSimulator final : public Simulator
{
  public:
    explicit AnalyticSimulator(GpuSpec spec) : spec_(std::move(spec)) {}

    SimBackend backend() const override { return SimBackend::Analytic; }

    SimReport
    simulate(const Csr &matrix, const SimOptions &options) const override
    {
        require(matrix.isSquare(),
                "AnalyticSimulator: matrix must be square");
        SLO_SPAN("gpu.simulate:analytic");
        const Index n = matrix.numRows();
        SimReport report;
        const Offset nnz_c =
            prepareWorkloadStats(report, matrix, options, nullptr);
        report.compulsoryBytes = compulsoryTrafficBytes(
            options.kernel, n, matrix.numNonZeros(), options.denseCols,
            nnz_c);
        // Model every compulsory line as one accessed-once miss.
        const std::uint32_t line = spec_.l2.lineBytes;
        const std::uint64_t lines =
            (report.compulsoryBytes + line - 1) / line;
        report.cacheStats.accesses = lines;
        report.cacheStats.misses = lines;
        report.cacheStats.linesFilled = lines;
        report.cacheStats.fillBytes = report.compulsoryBytes;
        finalizeReport(report, spec_, n);
        return report;
    }

  private:
    GpuSpec spec_;
};

// ---------------------------------------------------------------------
// CacheLru / CacheBelady: the existing streamed L2 simulation,
// parameterized by replacement policy.
// ---------------------------------------------------------------------

class CacheSimSimulator final : public Simulator
{
  public:
    CacheSimSimulator(GpuSpec spec, bool belady)
        : spec_(std::move(spec)), belady_(belady)
    {
    }

    SimBackend
    backend() const override
    {
        return belady_ ? SimBackend::CacheBelady : SimBackend::CacheLru;
    }

    SimReport
    simulate(const Csr &matrix, const SimOptions &options) const override
    {
        SimOptions opts = options;
        opts.useBelady = belady_;
        return simulateKernel(matrix, spec_, opts);
    }

  private:
    GpuSpec spec_;
    bool belady_;
};

// ---------------------------------------------------------------------
// FiberCache: Gamma-style accelerator model. The irregular operand is
// cached whole-object ("fibers": B rows for SpGEMM, X lines for
// SpMV/SpMM) in a fully-associative LRU structure sized like the L2,
// while the regular arrays stream past it once. Sequential by design —
// one global LRU order exists, so results are trivially deterministic
// at any thread count.
// ---------------------------------------------------------------------

/** Fully-associative LRU over variable-size objects. */
class FiberLru
{
  public:
    explicit FiberLru(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    void
    access(std::uint64_t id, std::uint64_t bytes)
    {
        ++stats.accesses;
        if (auto it = entries_.find(id); it != entries_.end()) {
            ++stats.hits;
            it->second.rehit = true;
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            return;
        }
        ++stats.misses;
        ++stats.irregularMisses;
        ++stats.linesFilled;
        stats.fillBytes += bytes;
        stats.irregularFillBytes += bytes;
        lru_.push_front(id);
        entries_.emplace(id, Entry{lru_.begin(), bytes, false});
        used_ += bytes;
        // Evict from the cold end; a fiber larger than the whole cache
        // stays resident alone until the next distinct fetch displaces
        // it (the size-1 guard keeps the loop from evicting what it
        // just inserted).
        while (used_ > capacity_ && lru_.size() > 1) {
            const std::uint64_t victim = lru_.back();
            lru_.pop_back();
            auto vit = entries_.find(victim);
            used_ -= vit->second.bytes;
            if (!vit->second.rehit)
                ++stats.deadLines;
            entries_.erase(vit);
            ++stats.evictions;
        }
    }

    /** Account resident-but-never-rehit fibers as dead. */
    void
    finish()
    {
        for (const std::uint64_t id : lru_) {
            if (!entries_.find(id)->second.rehit)
                ++stats.deadLines;
        }
    }

    cache::CacheStats stats;

  private:
    struct Entry
    {
        std::list<std::uint64_t>::iterator pos;
        std::uint64_t bytes = 0;
        bool rehit = false;
    };

    std::list<std::uint64_t> lru_; ///< front = most recently used
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::uint64_t used_ = 0;
    std::uint64_t capacity_ = 0;
};

class FiberCacheSimulator final : public Simulator
{
  public:
    explicit FiberCacheSimulator(GpuSpec spec) : spec_(std::move(spec))
    {
    }

    SimBackend
    backend() const override
    {
        return SimBackend::FiberCache;
    }

    SimReport
    simulate(const Csr &matrix, const SimOptions &options) const override
    {
        require(matrix.isSquare(),
                "FiberCacheSimulator: matrix must be square");
        SLO_SPAN("gpu.simulate:fiber");
        const Index n = matrix.numRows();
        const Offset nnz = matrix.numNonZeros();
        const std::uint32_t line = spec_.l2.lineBytes;
        const auto elem = static_cast<std::uint64_t>(kElemBytes);

        SimReport report;
        Csr b;
        const Offset nnz_c =
            prepareWorkloadStats(report, matrix, options, &b);
        report.compulsoryBytes = compulsoryTrafficBytes(
            options.kernel, n, nnz, options.denseCols, nnz_c);

        FiberLru fiber(spec_.l2.capacityBytes);

        // Streaming arrays move once; within a line, the first element
        // misses and the rest hit (what any cache does to a contiguous
        // scan). Fills are line-granular like the L2 simulation's.
        auto stream_array = [&](std::uint64_t bytes) {
            if (bytes == 0)
                return;
            const std::uint64_t elems = bytes / elem;
            const std::uint64_t lines = (bytes + line - 1) / line;
            report.cacheStats.accesses += elems;
            report.cacheStats.hits += elems - lines;
            report.cacheStats.misses += lines;
            report.cacheStats.linesFilled += lines;
            report.cacheStats.fillBytes += lines * line;
        };

        const auto nn = static_cast<std::uint64_t>(n);
        const auto zz = static_cast<std::uint64_t>(nnz);
        switch (options.kernel) {
          case kernels::KernelKind::SpmvCsr:
            stream_array((nn + 1) * elem); // rowOffsets
            stream_array(zz * elem);       // coords
            stream_array(zz * elem);       // values
            stream_array(nn * elem);       // Y
            replaySpmvFibers(matrix, line, fiber);
            break;
          case kernels::KernelKind::SpmvCoo:
            stream_array(zz * elem * 3); // rowIdx, colIdx, values
            stream_array(nn * elem);     // Y
            replaySpmvFibers(matrix, line, fiber);
            break;
          case kernels::KernelKind::SpmmCsr:
            stream_array((nn + 1) * elem);
            stream_array(zz * elem * 2);
            stream_array(nn *
                         static_cast<std::uint64_t>(options.denseCols) *
                         elem); // C
            replaySpmmFibers(matrix, options.denseCols, line, fiber);
            break;
          case kernels::KernelKind::SpgemmAA:
          case kernels::KernelKind::SpgemmAAT:
            stream_array((nn + 1) * elem); // A rowOffsets
            stream_array(zz * elem * 2);   // A coords + values
            stream_array((nn + 1) * elem); // C row descriptors
            stream_array(static_cast<std::uint64_t>(nnz_c) * elem *
                         2); // C coords + values
            replaySpgemmFibers(matrix, b, line, fiber);
            break;
        }
        fiber.finish();
        report.cacheStats.accumulate(fiber.stats);
        finalizeReport(report, spec_, n);
        return report;
    }

  private:
    /** X element fetches at line granularity, in non-zero order. */
    static void
    replaySpmvFibers(const Csr &matrix, std::uint32_t line,
                     FiberLru &fiber)
    {
        const auto elem = static_cast<std::uint64_t>(kElemBytes);
        for (const Index col : matrix.colIndices()) {
            fiber.access(static_cast<std::uint64_t>(col) * elem / line,
                         line);
        }
    }

    /** B row segments (K elements) as per-line fibers. */
    static void
    replaySpmmFibers(const Csr &matrix, Index dense_cols,
                     std::uint32_t line, FiberLru &fiber)
    {
        const auto k_bytes =
            static_cast<std::uint64_t>(dense_cols) *
            static_cast<std::uint64_t>(kElemBytes);
        for (const Index col : matrix.colIndices()) {
            const std::uint64_t first =
                static_cast<std::uint64_t>(col) * k_bytes;
            const std::uint64_t last = first + k_bytes - 1;
            for (std::uint64_t l = first / line; l <= last / line; ++l)
                fiber.access(l, line);
        }
    }

    /**
     * Whole B rows as fibers (the Gamma model's defining trait): row j
     * occupies its bounds pair plus coords + values, rounded up to the
     * fill granularity.
     */
    static void
    replaySpgemmFibers(const Csr &a, const Csr &b, std::uint32_t line,
                       FiberLru &fiber)
    {
        const auto elem = static_cast<std::uint64_t>(kElemBytes);
        for (const Index j : a.colIndices()) {
            const auto deg = static_cast<std::uint64_t>(b.degree(j));
            const std::uint64_t bytes = std::max<std::uint64_t>(
                line, alignUp((2 + 2 * deg) * elem, line));
            fiber.access(static_cast<std::uint64_t>(j), bytes);
        }
    }

    GpuSpec spec_;
};

} // namespace

const char *
backendName(SimBackend backend)
{
    switch (backend) {
      case SimBackend::Analytic: return "analytic";
      case SimBackend::CacheLru: return "lru";
      case SimBackend::CacheBelady: return "belady";
      case SimBackend::FiberCache: return "fiber";
    }
    fatal("backendName: unknown backend");
}

SimBackend
backendFromName(std::string_view name)
{
    for (const SimBackend backend : allBackends()) {
        if (name == backendName(backend))
            return backend;
    }
    fatal("backendFromName: unknown backend '" + std::string(name) +
          "' (expected analytic|lru|belady|fiber)");
}

std::span<const SimBackend>
allBackends()
{
    static constexpr SimBackend kAll[] = {
        SimBackend::Analytic,
        SimBackend::CacheLru,
        SimBackend::CacheBelady,
        SimBackend::FiberCache,
    };
    return kAll;
}

std::unique_ptr<Simulator>
makeSimulator(SimBackend backend, const GpuSpec &spec)
{
    switch (backend) {
      case SimBackend::Analytic:
        return std::make_unique<AnalyticSimulator>(spec);
      case SimBackend::CacheLru:
        return std::make_unique<CacheSimSimulator>(spec, false);
      case SimBackend::CacheBelady:
        return std::make_unique<CacheSimSimulator>(spec, true);
      case SimBackend::FiberCache:
        return std::make_unique<FiberCacheSimulator>(spec);
    }
    fatal("makeSimulator: unknown backend");
}

} // namespace slo::gpu
