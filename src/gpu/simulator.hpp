/**
 * @file
 * Multi-backend simulator facade (ROADMAP item 1's mergeforest-sim
 * shape).
 *
 * One experiment-facing interface over the library's locality models,
 * selectable per run:
 *
 *   Analytic     compulsory-only roofline — every line moves exactly
 *                once, so the report is the ordering-independent lower
 *                bound the normalized columns divide by
 *   CacheLru     the streamed set-sharded LRU L2 simulation
 *                (gpu/simulate.cpp) — the paper's main methodology
 *   CacheBelady  two-pass streamed Belady OPT replacement — the
 *                Fig. 8 headroom analysis
 *   FiberCache   Gamma-style accelerator model (PAPERS.md): a
 *                fully-associative LRU cache dedicated to the
 *                irregularly-accessed operand, managed at *object*
 *                granularity — whole B rows ("fibers") for SpGEMM,
 *                cache lines of X for the SpMV/SpMM kernels — while
 *                the regular arrays stream past it once
 *
 * Every backend fills the same SimReport, with coherent cache counters
 * (hits + misses == accesses) and, for SpGEMM kernels, the same
 * merge-fan-in / B-row-reuse statistics, so benches iterate backends
 * generically and tables stay column-compatible.
 */

#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "gpu/simulate.hpp"

namespace slo::gpu
{

/** The locality models a Simulator can run. */
enum class SimBackend
{
    Analytic,
    CacheLru,
    CacheBelady,
    FiberCache,
};

/** Stable lower-case name ("analytic", "lru", "belady", "fiber"). */
const char *backendName(SimBackend backend);

/** Parse a backend name; throws std::invalid_argument on unknown. */
SimBackend backendFromName(std::string_view name);

/** All backends, in declaration (table-column) order. */
std::span<const SimBackend> allBackends();

/**
 * One locality model bound to one GPU spec. Implementations are
 * stateless between simulate() calls: the same (matrix, options) pair
 * always yields the identical report, at any SLO_THREADS setting.
 */
class Simulator
{
  public:
    virtual ~Simulator() = default;

    /** Which model this is. */
    virtual SimBackend backend() const = 0;

    /** Run the model. @p options.useBelady is overridden per backend. */
    virtual SimReport simulate(const Csr &matrix,
                               const SimOptions &options) const = 0;
};

/** Build the @p backend model over @p spec. */
std::unique_ptr<Simulator> makeSimulator(SimBackend backend,
                                         const GpuSpec &spec);

} // namespace slo::gpu
