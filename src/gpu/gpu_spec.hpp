/**
 * @file
 * Evaluation-platform model: the NVIDIA A6000 of the paper's Table I,
 * plus scaled variants for the synthetic corpus.
 *
 * The paper selects matrices so that the input vector's worst-case cache
 * footprint exceeds the GPU's 6 MB L2 (>= 1.5M rows x 4B). Our synthetic
 * corpus is smaller, so we scale the modelled L2 capacity down with the
 * corpus scale, keeping the footprint/L2 ratio in the paper's regime
 * (DESIGN.md, "Substitutions").
 */

#pragma once

#include <cstdint>
#include <string>

#include "cache/cache.hpp"

namespace slo::gpu
{

/** Bandwidth/cache model of the evaluation platform. */
struct GpuSpec
{
    std::string name = "NVIDIA A6000";

    /** L2 geometry (Table I: 6 MB; 32 B = GPU sector granularity). */
    cache::CacheConfig l2{6ULL * 1024 * 1024, 32, 16};

    /** Theoretical peak DRAM bandwidth (Table I): 768 GB/s. */
    double peakBandwidthGBs = 768.0;

    /**
     * Achievable streaming bandwidth as measured with BabelStream
     * (Sec. IV-B): 672 GB/s. Ideal run time = compulsory / this.
     */
    double streamBandwidthGBs = 672.0;

    /**
     * Efficiency of fine-grained (random) line fetches relative to
     * streaming fetches. Calibrated at 0.45 so the paper's mean pairs
     * (RANDOM: traffic 3.36x -> run time 6.21x; RABBIT: 1.27x -> 1.54x)
     * both fall out of the model (see DESIGN.md).
     */
    double randomAccessEfficiency = 0.45;

    /**
     * Fraction of the streaming bandwidth a single CSR row's worth of
     * work can engage. SpMV parallelizes across rows, so one monster
     * row (mawi's hub row spans ~95% of the matrix) serializes on a
     * small slice of the machine; run time is then bounded below by
     * maxRowBytes / (streamBW * fraction). Calibrated at 1/12 so the
     * mawi-like corpus entry lands near the paper's 4.18x anomaly
     * while matrices with ordinary row lengths are unaffected.
     */
    double singleRowBandwidthFraction = 1.0 / 12.0;

    /** Main memory capacity in bytes (Table I: 48 GB). */
    std::uint64_t dramCapacityBytes = 48ULL * 1024 * 1024 * 1024;

    /** The full-size A6000 of Table I. */
    static GpuSpec a6000();

    /**
     * An A6000 with its L2 scaled by 1/factor — used so synthetic
     * matrices of ~n rows sit in the same footprint/L2 regime as the
     * paper's >= 1.5M-row matrices against 6 MB.
     */
    static GpuSpec a6000ScaledL2(std::uint64_t l2_bytes);
};

} // namespace slo::gpu
