#include "gpu/traffic_model.hpp"

#include <algorithm>

namespace slo::gpu
{

std::uint64_t
compulsoryTrafficBytes(kernels::KernelKind kind, Index n, Offset nnz,
                       Index dense_cols, Offset nnz_c)
{
    require(n >= 0 && nnz >= 0 && nnz_c >= 0,
            "compulsoryTrafficBytes: negative sizes");
    const auto nn = static_cast<std::uint64_t>(n);
    const auto zz = static_cast<std::uint64_t>(nnz);
    const auto zc = static_cast<std::uint64_t>(nnz_c);
    const auto elem = static_cast<std::uint64_t>(kElemBytes);
    switch (kind) {
      case kernels::KernelKind::SpmvCsr:
        return (2 * nn + (nn + 1) + 2 * zz) * elem;
      case kernels::KernelKind::SpmvCoo:
        return (2 * nn + 3 * zz) * elem;
      case kernels::KernelKind::SpmmCsr:
        require(dense_cols > 0,
                "compulsoryTrafficBytes: dense_cols must be > 0");
        return (2 * nn * static_cast<std::uint64_t>(dense_cols) +
                (nn + 1) + 2 * zz) * elem;
      case kernels::KernelKind::SpgemmAA:
      case kernels::KernelKind::SpgemmAAT:
        // A, B, and C each moved exactly once: (offsets + coords +
        // values) per operand, with nnz(B) == nnz(A) for both in-tree
        // variants.
        return (2 * ((nn + 1) + 2 * zz) + (nn + 1) + 2 * zc) * elem;
    }
    fatal("compulsoryTrafficBytes: unknown kernel");
}

double
idealRuntimeSeconds(const GpuSpec &spec, std::uint64_t compulsory_bytes)
{
    return static_cast<double>(compulsory_bytes) /
           (spec.streamBandwidthGBs * 1e9);
}

double
modeledRuntimeSeconds(const GpuSpec &spec, std::uint64_t stream_bytes,
                      std::uint64_t random_bytes,
                      std::uint64_t max_row_bytes)
{
    const double stream_bw = spec.streamBandwidthGBs * 1e9;
    const double random_bw = stream_bw * spec.randomAccessEfficiency;
    const double bandwidth_time =
        static_cast<double>(stream_bytes) / stream_bw +
        static_cast<double>(random_bytes) / random_bw;
    const double serial_time =
        static_cast<double>(max_row_bytes) /
        (stream_bw * spec.singleRowBandwidthFraction);
    return std::max(bandwidth_time, serial_time);
}

} // namespace slo::gpu
