#include "gpu/gpu_spec.hpp"

namespace slo::gpu
{

GpuSpec
GpuSpec::a6000()
{
    return GpuSpec{};
}

GpuSpec
GpuSpec::a6000ScaledL2(std::uint64_t l2_bytes)
{
    GpuSpec spec;
    spec.l2.capacityBytes = l2_bytes;
    spec.l2.validate();
    spec.name = "NVIDIA A6000 (scaled L2)";
    return spec;
}

} // namespace slo::gpu
