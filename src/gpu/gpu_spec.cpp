#include "gpu/gpu_spec.hpp"

#include <cstdlib>

#include "obs/log.hpp"

namespace slo::gpu
{

namespace
{

/**
 * Test hook: SLO_SIM_RANDOM_EFFICIENCY overrides the calibrated
 * random-access efficiency (0.45). The golden regression harness uses
 * it to prove the goldens actually bite — a perturbed constant must
 * make `ctest -L golden` fail. Never set it in real runs.
 */
void
applyEnvOverrides(GpuSpec &spec)
{
    const char *raw = std::getenv("SLO_SIM_RANDOM_EFFICIENCY");
    if (raw == nullptr || *raw == '\0')
        return;
    char *end = nullptr;
    const double value = std::strtod(raw, &end);
    if (end == raw || value <= 0.0 || value > 1.0) {
        SLO_LOG_WARN("gpu", "ignoring bad SLO_SIM_RANDOM_EFFICIENCY="
                                << raw);
        return;
    }
    SLO_LOG_WARN("gpu", "SLO_SIM_RANDOM_EFFICIENCY="
                            << value
                            << " overrides the calibrated model "
                               "(test hook; results are not "
                               "comparable to the paper)");
    spec.randomAccessEfficiency = value;
}

} // namespace

GpuSpec
GpuSpec::a6000()
{
    GpuSpec spec;
    applyEnvOverrides(spec);
    return spec;
}

GpuSpec
GpuSpec::a6000ScaledL2(std::uint64_t l2_bytes)
{
    GpuSpec spec;
    spec.l2.capacityBytes = l2_bytes;
    spec.l2.validate();
    spec.name = "NVIDIA A6000 (scaled L2)";
    applyEnvOverrides(spec);
    return spec;
}

} // namespace slo::gpu
