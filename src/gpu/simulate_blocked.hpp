/**
 * @file
 * GPU simulation of propagation-blocked SpMV (Sec. VII extension).
 *
 * Like simulate_tiled.hpp, traffic is normalized to the *untiled*
 * SpMV-CSR compulsory traffic: blocking converts the irregular y/x
 * accesses into streaming bin records at a fixed ~16B/nnz overhead,
 * making its traffic ordering-insensitive.
 */

#pragma once

#include "gpu/simulate.hpp"
#include "kernels/propagation_blocking.hpp"

namespace slo::gpu
{

/** Simulate the two-phase blocked SpMV of @p blocked on @p spec. */
SimReport simulateBlockedSpmv(
    const kernels::PropagationBlockedSpmv &blocked,
    const GpuSpec &spec);

} // namespace slo::gpu
