#include "gpu/simulate_tiled.hpp"

#include <algorithm>

#include "gpu/sim_stream.hpp"

namespace slo::gpu
{

SimReport
simulateTiledSpmv(const kernels::TiledCsr &tiled, const GpuSpec &spec)
{
    const Index n = tiled.numRows();
    const Offset nnz = tiled.numNonZeros();
    const std::uint32_t line_bytes = spec.l2.lineBytes;

    // Address space: X, Y, then each strip's CSR arrays.
    auto align_up = [line_bytes](std::uint64_t bytes) {
        const std::uint64_t mask = line_bytes - 1;
        return (bytes + mask) & ~mask;
    };
    const std::uint64_t x_base = 0;
    const std::uint64_t x_end =
        align_up(static_cast<std::uint64_t>(n) * kElemBytes);
    const std::uint64_t y_base = x_end;
    std::uint64_t cursor =
        y_base + align_up(static_cast<std::uint64_t>(n) * kElemBytes);
    struct TileLayout
    {
        std::uint64_t rowOffsets;
        std::uint64_t coords;
        std::uint64_t values;
    };
    std::vector<TileLayout> layouts;
    for (Index t = 0; t < tiled.numTiles(); ++t) {
        const Csr &strip = tiled.tile(t);
        TileLayout layout{};
        layout.rowOffsets = cursor;
        cursor += align_up(static_cast<std::uint64_t>(n + 1) *
                           kElemBytes);
        layout.coords = cursor;
        cursor += align_up(static_cast<std::uint64_t>(
                               strip.numNonZeros()) *
                           kElemBytes);
        layout.values = cursor;
        cursor += align_up(static_cast<std::uint64_t>(
                               strip.numNonZeros()) *
                           kElemBytes);
        layouts.push_back(layout);
    }

    Index max_row_nnz = 0;
    for (Index t = 0; t < tiled.numTiles(); ++t) {
        const Csr &strip = tiled.tile(t);
        for (Index r = 0; r < n; ++r) {
            const Offset begin =
                strip.rowOffsets()[static_cast<std::size_t>(r)];
            const Offset end =
                strip.rowOffsets()[static_cast<std::size_t>(r) + 1];
            max_row_nnz =
                std::max(max_row_nnz, static_cast<Index>(end - begin));
        }
    }

    const cache::CacheStats stats = runLruSim(
        spec.l2, x_base, x_end, [&](auto &sink) {
            for (Index t = 0; t < tiled.numTiles(); ++t) {
                const Csr &strip = tiled.tile(t);
                const TileLayout &layout =
                    layouts[static_cast<std::size_t>(t)];
                const auto x_window =
                    x_base +
                    static_cast<std::uint64_t>(t) *
                        static_cast<std::uint64_t>(tiled.tileCols()) *
                        kElemBytes;
                const Offset *row_offsets = strip.rowOffsets().data();
                const Index *cols = strip.colIndices().data();
                for (Index r = 0; r < n; ++r) {
                    sink(layout.rowOffsets +
                         static_cast<std::uint64_t>(r) * kElemBytes);
                    sink(layout.rowOffsets +
                         static_cast<std::uint64_t>(r + 1) *
                             kElemBytes);
                    const Offset begin =
                        row_offsets[static_cast<std::size_t>(r)];
                    const Offset end =
                        row_offsets[static_cast<std::size_t>(r) + 1];
                    for (Offset i = begin; i < end; ++i) {
                        sink(layout.coords +
                             static_cast<std::uint64_t>(i) *
                                 kElemBytes);
                        sink(layout.values +
                             static_cast<std::uint64_t>(i) *
                                 kElemBytes);
                        sink(x_window +
                             static_cast<std::uint64_t>(
                                 cols[static_cast<std::size_t>(i)]) *
                                 kElemBytes);
                    }
                    if (end > begin) {
                        // y[r] += acc: read-modify-write per strip.
                        sink(y_base + static_cast<std::uint64_t>(r) *
                                          kElemBytes);
                    }
                }
            }
        });

    SimReport report;
    report.cacheStats = stats;
    // Normalize against the *untiled* kernel's compulsory traffic so
    // the numbers compare directly with simulateKernel's.
    report.compulsoryBytes = compulsoryTrafficBytes(
        kernels::KernelKind::SpmvCsr, n, nnz);
    report.trafficBytes = report.cacheStats.fillBytes;
    report.randomMissBytes = report.cacheStats.irregularFillBytes;
    report.streamMissBytes =
        report.trafficBytes - report.randomMissBytes;
    report.normalizedTraffic =
        static_cast<double>(report.trafficBytes) /
        static_cast<double>(report.compulsoryBytes);
    report.idealSeconds =
        idealRuntimeSeconds(spec, report.compulsoryBytes);
    report.maxRowNnz = max_row_nnz;
    report.modeledSeconds = modeledRuntimeSeconds(
        spec, report.streamMissBytes, report.randomMissBytes,
        static_cast<std::uint64_t>(max_row_nnz) * 3 * kElemBytes);
    report.normalizedRuntime =
        report.modeledSeconds / report.idealSeconds;
    report.l2HitRate = report.cacheStats.hitRate();
    report.deadLineFraction = report.cacheStats.deadLineFraction();
    return report;
}

} // namespace slo::gpu
