#include "par/thread_pool.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace slo::par
{

namespace
{

/** The pool the current thread is a worker of (nullptr otherwise). */
thread_local ThreadPool *t_pool = nullptr;
/** Worker index within t_pool. */
thread_local std::size_t t_worker = 0;

/**
 * The global pool while it is alive. The obs pre-emission hook reads
 * pool stats through this; the destructor publishes a final snapshot
 * and clears it, so the atexit emission (which can outlive the pool —
 * function-local statics die in reverse construction order and the
 * pool is usually constructed after installExitEmission registered)
 * never touches a destroyed pool.
 */
std::atomic<ThreadPool *> g_global_pool{nullptr};

/**
 * Active ScopedPoolOverride target (nullptr = none). Checked by
 * ThreadPool::global() before the SLO_THREADS pool; deliberately
 * separate from g_global_pool so the obs pre-emission hook keeps
 * publishing the real global pool's stats during an override.
 */
std::atomic<ThreadPool *> g_pool_override{nullptr};

} // namespace

int
defaultThreads()
{
    static const int value = [] {
        if (const char *env = std::getenv("SLO_THREADS")) {
            const int parsed = std::atoi(env);
            if (parsed > 0)
                return parsed;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }();
    return value;
}

int
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    if (threads_ == 1)
        return; // serial: no workers, submit runs inline
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.push_back(std::make_unique<Worker>());
    joiners_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
        joiners_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : joiners_)
        t.join();
    ThreadPool *self = this;
    if (g_global_pool.compare_exchange_strong(self, nullptr)) {
        // Final numbers into the manifest now; the pre-emission hook
        // will find g_global_pool cleared and leave them untouched.
        publishStats();
    }
}

ThreadPool &
ThreadPool::global()
{
    if (ThreadPool *override_pool =
            g_pool_override.load(std::memory_order_acquire))
        return *override_pool;
    static ThreadPool pool;
    static const bool hooked = [] {
        g_global_pool.store(&pool, std::memory_order_release);
        obs::addPreEmissionHook([] {
            if (ThreadPool *alive =
                    g_global_pool.load(std::memory_order_acquire))
                alive->publishStats();
        });
        return true;
    }();
    (void)hooked;
    return pool;
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (serial()) {
        task();
        return;
    }
    // pending_ goes up *before* the task is published: popTask
    // decrements after popping, so publishing first would let a thief
    // drive pending_ through zero (size_t underflow) in the window
    // before the increment lands — busy-spinning the workers and
    // breaking the "stop_ && pending_ == 0" shutdown invariant.
    if (t_pool == this) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++pending_;
        }
        Worker &own = *workers_[t_worker];
        const std::lock_guard<std::mutex> lock(own.mutex);
        own.tasks.push_back(std::move(task));
    } else {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
        injected_.push_back(std::move(task));
    }
    wake_.notify_one();
}

bool
ThreadPool::popTask(std::size_t home, std::function<void()> &task)
{
    bool found = false;
    if (home < workers_.size()) {
        Worker &own = *workers_[home];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
            found = true;
        }
    }
    if (!found) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!injected_.empty()) {
            task = std::move(injected_.front());
            injected_.pop_front();
            found = true;
        }
    }
    if (!found) {
        for (std::size_t k = 1; k <= workers_.size() && !found; ++k) {
            const std::size_t victim =
                (home + k) % (workers_.size() + 1);
            if (victim >= workers_.size())
                continue; // the "no home" slot, not a real worker
            Worker &other = *workers_[victim];
            const std::lock_guard<std::mutex> lock(other.mutex);
            if (!other.tasks.empty()) {
                task = std::move(other.tasks.front());
                other.tasks.pop_front();
                found = true;
                obs::counter("par.steals").add();
                if (home < workers_.size()) {
                    workers_[home]->steals.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        }
    }
    if (found) {
        const std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
    }
    return found;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_pool = this;
    t_worker = index;
    Worker &self = *workers_[index];
    const std::string track = "par.worker/" + std::to_string(index);
    obs::setThreadName(track);
    for (;;) {
        std::function<void()> task;
        if (popTask(index, task)) {
            obs::counter("par.tasks").add();
            const std::uint64_t start = obs::monotonicNanos();
            task();
            self.busyNanos.fetch_add(obs::monotonicNanos() - start,
                                     std::memory_order_relaxed);
            self.runs.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        // Park boundary: sample this worker's cumulative counters onto
        // its trace track — low frequency (once per sleep), and the
        // run/steal staircase lines up with the spans around it.
        self.parks.fetch_add(1, std::memory_order_relaxed);
        if (obs::traceEnabled()) {
            obs::emitCounter(
                track + ".runs",
                static_cast<double>(
                    self.runs.load(std::memory_order_relaxed)));
            obs::emitCounter(
                track + ".steals",
                static_cast<double>(
                    self.steals.load(std::memory_order_relaxed)));
        }
        const std::uint64_t park_start = obs::monotonicNanos();
        bool exiting = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
            exiting = stop_ && pending_ == 0;
        }
        self.parkNanos.fetch_add(obs::monotonicNanos() - park_start,
                                 std::memory_order_relaxed);
        if (exiting)
            return;
    }
}

obs::Json
ThreadPool::statsJson() const
{
    obs::Json j = obs::Json::object();
    j["threads"] = threads_;
    j["serial"] = serial();
    obs::Json workers = obs::Json::array();
    std::uint64_t runs = 0;
    std::uint64_t steals = 0;
    std::uint64_t parks = 0;
    std::uint64_t busy_nanos = 0;
    std::uint64_t park_nanos = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &w = *workers_[i];
        const std::uint64_t w_runs =
            w.runs.load(std::memory_order_relaxed);
        const std::uint64_t w_steals =
            w.steals.load(std::memory_order_relaxed);
        const std::uint64_t w_parks =
            w.parks.load(std::memory_order_relaxed);
        const std::uint64_t w_busy =
            w.busyNanos.load(std::memory_order_relaxed);
        const std::uint64_t w_park =
            w.parkNanos.load(std::memory_order_relaxed);
        obs::Json entry = obs::Json::object();
        entry["index"] = i;
        entry["runs"] = w_runs;
        entry["steals"] = w_steals;
        entry["parks"] = w_parks;
        entry["busy_seconds"] = static_cast<double>(w_busy) / 1e9;
        entry["park_seconds"] = static_cast<double>(w_park) / 1e9;
        workers.push(std::move(entry));
        runs += w_runs;
        steals += w_steals;
        parks += w_parks;
        busy_nanos += w_busy;
        park_nanos += w_park;
    }
    j["tasks_run"] = runs;
    j["steals"] = steals;
    j["parks"] = parks;
    j["busy_seconds"] = static_cast<double>(busy_nanos) / 1e9;
    j["park_seconds"] = static_cast<double>(park_nanos) / 1e9;
    const double denom = static_cast<double>(busy_nanos + park_nanos);
    j["utilization"] =
        denom > 0.0 ? static_cast<double>(busy_nanos) / denom
                    : (serial() ? 1.0 : 0.0);
    j["workers"] = std::move(workers);
    return j;
}

void
ThreadPool::publishStats() const
{
    std::uint64_t busy_nanos = 0;
    std::uint64_t park_nanos = 0;
    for (const auto &w : workers_) {
        busy_nanos += w->busyNanos.load(std::memory_order_relaxed);
        park_nanos += w->parkNanos.load(std::memory_order_relaxed);
    }
    const double denom = static_cast<double>(busy_nanos + park_nanos);
    const double utilization =
        denom > 0.0 ? static_cast<double>(busy_nanos) / denom
                    : (serial() ? 1.0 : 0.0);
    obs::gauge("par.pool_utilization").set(utilization);
    obs::RunManifest::instance().set("pool", statsJson());
}

ScopedPoolOverride::ScopedPoolOverride(ThreadPool &pool)
    : previous_(
          g_pool_override.exchange(&pool, std::memory_order_acq_rel))
{
}

ScopedPoolOverride::~ScopedPoolOverride()
{
    g_pool_override.store(previous_, std::memory_order_release);
}

struct TaskGroup::State
{
    std::mutex mutex;
    std::condition_variable cv;
    /** Group tasks not yet started; waiters and proxies pop front. */
    std::deque<std::function<void()>> queued;
    /** Queued plus currently-running tasks. */
    std::size_t pending = 0;
    std::exception_ptr error;
};

TaskGroup::TaskGroup(ThreadPool &pool)
    : pool_(pool), state_(std::make_shared<State>())
{
}

TaskGroup::~TaskGroup()
{
    drain(); // exceptions stay captured in state_ and are dropped
}

void
TaskGroup::run(std::function<void()> task)
{
    if (pool_.serial()) {
        try {
            task();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(state_->mutex);
            if (!state_->error)
                state_->error = std::current_exception();
        }
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(state_->mutex);
        ++state_->pending;
        state_->queued.push_back(std::move(task));
    }
    // Wake a waiter blocked in drain(): a group task may fan more
    // tasks into its own group, and the waiter must pick them up.
    state_->cv.notify_one();
    // The proxy drains one group task; if a waiter got there first it
    // is a no-op. It shares State by shared_ptr so a straggling proxy
    // that runs after the group object died stays safe.
    pool_.submit([state = state_] { runOneQueued(*state); });
}

bool
TaskGroup::runOneQueued(State &state)
{
    std::function<void()> task;
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (state.queued.empty())
            return false;
        task = std::move(state.queued.front());
        state.queued.pop_front();
    }
    obs::counter("par.group_tasks").add();
    try {
        task();
    } catch (...) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error)
            state.error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(state.mutex);
    if (--state.pending == 0)
        state.cv.notify_all();
    return true;
}

void
TaskGroup::drain()
{
    // Help with *this group's* tasks only, never the pool at large:
    // the waiter may hold locks (an artifact-cache flock around a
    // build, say), and an unrelated stolen task could block on another
    // lock while this one is held — hold-and-wait, and a deadlock once
    // a second thread or process does the same in the other order.
    // Group tasks are leaves the waiter itself fanned out, so running
    // them inline is always safe.
    State &state = *state_;
    for (;;) {
        if (runOneQueued(state))
            continue;
        std::unique_lock<std::mutex> lock(state.mutex);
        if (state.pending == 0)
            return;
        if (!state.queued.empty())
            continue; // a task landed after the failed pop; rerun it
        state.cv.wait(lock, [&state] {
            return state.pending == 0 || !state.queued.empty();
        });
        if (state.pending == 0)
            return;
    }
}

void
TaskGroup::wait()
{
    drain();
    std::exception_ptr error;
    {
        const std::lock_guard<std::mutex> lock(state_->mutex);
        std::swap(error, state_->error);
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace slo::par
