#include "par/thread_pool.hpp"

#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"

namespace slo::par
{

namespace
{

/** The pool the current thread is a worker of (nullptr otherwise). */
thread_local ThreadPool *t_pool = nullptr;
/** Worker index within t_pool. */
thread_local std::size_t t_worker = 0;

} // namespace

int
defaultThreads()
{
    static const int value = [] {
        if (const char *env = std::getenv("SLO_THREADS")) {
            const int parsed = std::atoi(env);
            if (parsed > 0)
                return parsed;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }();
    return value;
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    if (threads_ == 1)
        return; // serial: no workers, submit runs inline
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.push_back(std::make_unique<Worker>());
    joiners_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
        joiners_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : joiners_)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (serial()) {
        task();
        return;
    }
    if (t_pool == this) {
        Worker &own = *workers_[t_worker];
        const std::lock_guard<std::mutex> lock(own.mutex);
        own.tasks.push_back(std::move(task));
    } else {
        const std::lock_guard<std::mutex> lock(mutex_);
        injected_.push_back(std::move(task));
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    wake_.notify_one();
}

bool
ThreadPool::popTask(std::size_t home, std::function<void()> &task)
{
    bool found = false;
    if (home < workers_.size()) {
        Worker &own = *workers_[home];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
            found = true;
        }
    }
    if (!found) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!injected_.empty()) {
            task = std::move(injected_.front());
            injected_.pop_front();
            found = true;
        }
    }
    if (!found) {
        for (std::size_t k = 1; k <= workers_.size() && !found; ++k) {
            const std::size_t victim =
                (home + k) % (workers_.size() + 1);
            if (victim >= workers_.size())
                continue; // the "no home" slot, not a real worker
            Worker &other = *workers_[victim];
            const std::lock_guard<std::mutex> lock(other.mutex);
            if (!other.tasks.empty()) {
                task = std::move(other.tasks.front());
                other.tasks.pop_front();
                found = true;
                obs::counter("par.steals").add();
            }
        }
    }
    if (found) {
        const std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
    }
    return found;
}

bool
ThreadPool::tryRunOneTask()
{
    if (serial())
        return false;
    const std::size_t home =
        t_pool == this ? t_worker : workers_.size();
    std::function<void()> task;
    if (!popTask(home, task))
        return false;
    obs::counter("par.tasks").add();
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_pool = this;
    t_worker = index;
    for (;;) {
        std::function<void()> task;
        if (popTask(index, task)) {
            obs::counter("par.tasks").add();
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
        if (stop_ && pending_ == 0)
            return;
    }
}

TaskGroup::TaskGroup(ThreadPool &pool) : pool_(pool) {}

TaskGroup::~TaskGroup()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (pending_ > 0) {
        lock.unlock();
        if (!pool_.tryRunOneTask())
            std::this_thread::yield();
        lock.lock();
    }
}

void
TaskGroup::run(std::function<void()> task)
{
    if (pool_.serial()) {
        try {
            task();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        finishOne();
    });
}

void
TaskGroup::finishOne()
{
    // Notify while still holding the mutex: a waiter that observes
    // pending_ == 0 may destroy this group immediately, so cv_ must
    // not be touched after the waiter can acquire the lock.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0)
        cv_.notify_all();
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (pending_ == 0)
                break;
        }
        // Help instead of blocking: a waiting thread that runs queued
        // tasks keeps nested parallelFor calls deadlock-free and the
        // cores busy. Sleep only when there is nothing runnable.
        if (pool_.tryRunOneTask())
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        if (pending_ == 0)
            break;
        cv_.wait(lock, [this] { return pending_ == 0; });
    }
    std::exception_ptr error;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::swap(error, error_);
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace slo::par
