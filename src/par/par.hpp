/**
 * @file
 * Umbrella header for the parallel runtime.
 *
 *   par::parallelFor(0, n, [&](std::size_t i) { ... });
 *   par::parallelInvoke([&]{ ... }, [&]{ ... });
 *   par::TaskGroup group; group.run(...); group.wait();
 *
 * Sizing: SLO_THREADS=N (default hardware_concurrency; =1 restores
 * the exact serial execution order).
 */

#pragma once

#include "par/parallel.hpp"    // IWYU pragma: export
#include "par/thread_pool.hpp" // IWYU pragma: export
