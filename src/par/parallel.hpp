/**
 * @file
 * Parallel loop / reduce / invoke / sort built on par::ThreadPool.
 *
 * These are the primitives pipeline code is expected to use (raw
 * std::thread is lint-forbidden outside src/par). All of them are
 * deterministic by construction at any thread count:
 *
 *   - parallelFor / parallelForChunks run a body over disjoint index
 *     ranges; the caller writes to disjoint slots, so the gathered
 *     result is identical to the serial loop.
 *   - parallelReduce splits [begin,end) into fixed-size chunks whose
 *     boundaries depend only on `grain` (never on the thread count),
 *     reduces each chunk independently and folds the partials in chunk
 *     order — floating-point rounding is therefore reproducible across
 *     SLO_THREADS values.
 *   - parallelStableSort produces the unique stable order, regardless
 *     of how the runs were split and merged.
 *
 * On a serial pool (SLO_THREADS=1) every entry point degenerates to
 * the plain serial loop, in the same iteration order.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace slo::par
{

/** Tuning for parallelFor/parallelForChunks. */
struct ForOptions
{
    /** Indices per task; 0 = auto (range / (4 * threads), min 1). */
    std::size_t grain = 0;
    /** Pool to run on; nullptr = ThreadPool::global(). */
    ThreadPool *pool = nullptr;
};

/**
 * Run `body(lo, hi)` over disjoint chunks covering [begin, end).
 * Blocks until every chunk ran; rethrows the first body exception.
 */
template <typename Body>
void
parallelForChunks(std::size_t begin, std::size_t end, const Body &body,
                  ForOptions options = {})
{
    if (end <= begin)
        return;
    ThreadPool &pool =
        options.pool != nullptr ? *options.pool : ThreadPool::global();
    const std::size_t n = end - begin;
    std::size_t grain = options.grain;
    if (grain == 0) {
        grain = n / (4 * static_cast<std::size_t>(pool.numThreads()));
        if (grain == 0)
            grain = 1;
    }
    if (pool.serial() || n <= grain) {
        body(begin, end);
        return;
    }
    TaskGroup group(pool);
    for (std::size_t lo = begin; lo < end; lo += grain) {
        const std::size_t hi = std::min(end, lo + grain);
        group.run([&body, lo, hi] { body(lo, hi); });
    }
    group.wait();
}

/** Run `body(i)` for every i in [begin, end); blocks until done. */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, const Body &body,
            ForOptions options = {})
{
    parallelForChunks(
        begin, end,
        [&body](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        },
        options);
}

/**
 * Deterministic chunked reduction: `chunk(lo, hi)` maps each fixed
 * `grain`-sized chunk of [begin, end) to a T (chunks run in parallel),
 * then `combine(acc, partial)` folds the partials in ascending chunk
 * order starting from @p init. Chunk boundaries depend only on
 * @p grain, so the result is identical at every thread count.
 */
template <typename T, typename ChunkFn, typename Combine>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T init, const ChunkFn &chunk, const Combine &combine,
               ThreadPool *pool = nullptr)
{
    if (end <= begin)
        return init;
    if (grain == 0)
        grain = 1024;
    const std::size_t chunks = (end - begin + grain - 1) / grain;
    std::vector<T> partial(chunks);
    parallelFor(
        0, chunks,
        [&](std::size_t c) {
            const std::size_t lo = begin + c * grain;
            partial[c] = chunk(lo, std::min(end, lo + grain));
        },
        {.grain = 1, .pool = pool});
    T total = std::move(init);
    for (T &p : partial)
        total = combine(std::move(total), std::move(p));
    return total;
}

/**
 * In-place exclusive prefix sum of @p values; returns the total.
 * Chunk boundaries are fixed by @p grain (0 = 4096) and never by the
 * thread count: chunk totals reduce in parallel, fold sequentially in
 * chunk order, and each chunk then rewrites its own slice from its
 * folded offset. The result is therefore identical at any
 * SLO_THREADS — exact for integers, and reproducible for floating
 * point because the fold order is fixed. This is the deterministic
 * scatter-offset builder used by bucket-placement reorderings.
 */
template <typename T>
T
parallelExclusiveScan(std::vector<T> &values, std::size_t grain = 0,
                      ThreadPool *pool = nullptr)
{
    const std::size_t n = values.size();
    if (grain == 0)
        grain = 4096;
    if (n == 0)
        return T{};
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<T> offset(chunks);
    parallelFor(
        0, chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * grain;
            const std::size_t hi = std::min(n, lo + grain);
            T sum{};
            for (std::size_t i = lo; i < hi; ++i)
                sum += values[i];
            offset[c] = sum;
        },
        {.grain = 1, .pool = pool});
    T total{};
    for (T &o : offset) {
        const T next = total + o;
        o = total; // becomes the chunk's starting offset
        total = next;
    }
    parallelFor(
        0, chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * grain;
            const std::size_t hi = std::min(n, lo + grain);
            T running = offset[c];
            for (std::size_t i = lo; i < hi; ++i) {
                const T value = values[i];
                values[i] = running;
                running += value;
            }
        },
        {.grain = 1, .pool = pool});
    return total;
}

/** Run the given callables concurrently; blocks until all returned. */
template <typename... Fns>
void
parallelInvoke(Fns &&...fns)
{
    ThreadPool &pool = ThreadPool::global();
    if (pool.serial()) {
        (std::forward<Fns>(fns)(), ...);
        return;
    }
    TaskGroup group(pool);
    (group.run(std::forward<Fns>(fns)), ...);
    group.wait();
}

/**
 * Stable sort of [first, last) by @p comp: sorted runs in parallel,
 * then pairwise stable merges. The result equals std::stable_sort
 * exactly (a stable order is unique), at any thread count.
 */
template <typename Iterator, typename Compare>
void
parallelStableSort(Iterator first, Iterator last, Compare comp,
                   ThreadPool *pool_opt = nullptr)
{
    ThreadPool &pool =
        pool_opt != nullptr ? *pool_opt : ThreadPool::global();
    const auto n = static_cast<std::size_t>(last - first);
    constexpr std::size_t kMinRun = 2048;
    if (pool.serial() || n < 2 * kMinRun) {
        std::stable_sort(first, last, comp);
        return;
    }
    std::size_t runs = 1;
    while (runs < static_cast<std::size_t>(pool.numThreads()) &&
           n / (runs * 2) >= kMinRun)
        runs *= 2;
    std::vector<std::size_t> bounds(runs + 1);
    for (std::size_t i = 0; i <= runs; ++i)
        bounds[i] = i * n / runs;
    parallelFor(
        0, runs,
        [&](std::size_t r) {
            std::stable_sort(first + static_cast<std::ptrdiff_t>(
                                         bounds[r]),
                             first + static_cast<std::ptrdiff_t>(
                                         bounds[r + 1]),
                             comp);
        },
        {.grain = 1, .pool = &pool});
    for (std::size_t width = 1; width < runs; width *= 2) {
        const std::size_t pairs = runs / (2 * width);
        parallelFor(
            0, pairs,
            [&](std::size_t p) {
                const std::size_t lo = bounds[2 * width * p];
                const std::size_t mid = bounds[2 * width * p + width];
                const std::size_t hi =
                    bounds[std::min(2 * width * (p + 1), runs)];
                std::inplace_merge(
                    first + static_cast<std::ptrdiff_t>(lo),
                    first + static_cast<std::ptrdiff_t>(mid),
                    first + static_cast<std::ptrdiff_t>(hi), comp);
            },
            {.grain = 1, .pool = &pool});
    }
}

} // namespace slo::par
