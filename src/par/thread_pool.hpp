/**
 * @file
 * Work-stealing thread pool sized by SLO_THREADS.
 *
 * The pool is the only place in the tree allowed to own threads (the
 * lint gate forbids raw std::thread elsewhere): pipeline code expresses
 * parallelism through `parallelFor` / `parallelInvoke` / `TaskGroup`
 * (par/parallel.hpp) and the pool schedules the chunks. Each worker
 * owns a deque it pushes/pops LIFO; idle workers steal FIFO from their
 * peers, and threads blocked in `TaskGroup::wait` help by running
 * queued tasks instead of sleeping, so nested submission never
 * deadlocks.
 *
 * `SLO_THREADS=1` builds a pool with no worker threads at all: every
 * submit runs inline on the caller, restoring the exact serial
 * execution order (and byte-identical bench output) of a pre-threading
 * build. `SLO_THREADS=N` / unset sizes the global pool to N /
 * hardware_concurrency.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slo::par
{

/** Parallelism requested by SLO_THREADS (default: hardware threads). */
int defaultThreads();

class ThreadPool
{
  public:
    /** @p threads < 1 is clamped to 1 (serial). */
    explicit ThreadPool(int threads = defaultThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (1 = serial, no worker threads). */
    int
    numThreads() const
    {
        return threads_;
    }

    /** True when every submit runs inline on the calling thread. */
    bool
    serial() const
    {
        return workers_.empty();
    }

    /** The process-wide pool, sized by SLO_THREADS on first use. */
    static ThreadPool &global();

    /**
     * Enqueue @p task (run inline on a serial pool). From one of this
     * pool's workers the task lands on that worker's own deque; from
     * any other thread it lands on the shared injection queue.
     */
    void submit(std::function<void()> task);

    /**
     * Run one queued task on the calling thread if any is available.
     * Used by TaskGroup::wait so blocked threads help instead of
     * idling. @return true iff a task was run.
     */
    bool tryRunOneTask();

  private:
    /** One worker's deque; owner pops back, thieves pop front. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t index);

    /**
     * Pop a task: @p home's own deque first (LIFO), then the injection
     * queue, then steal FIFO from the other workers. @p home ==
     * workers_.size() means "no home deque" (external thread).
     */
    bool popTask(std::size_t home, std::function<void()> &task);

    int threads_ = 1;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> joiners_;

    std::mutex mutex_; ///< guards injected_, pending_, stop_
    std::deque<std::function<void()>> injected_;
    std::size_t pending_ = 0; ///< tasks queued anywhere, for sleep/wake
    bool stop_ = false;
    std::condition_variable wake_;
};

/**
 * Fan-in for a batch of tasks: `run` any number of them, then `wait`
 * until all have finished. The first exception thrown by any task is
 * captured and rethrown from `wait` (the remaining tasks still run).
 * On a serial pool, `run` executes the task inline.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool = ThreadPool::global());

    /** Waits for stragglers; exceptions are swallowed here. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void run(std::function<void()> task);

    /** Block until every task ran; rethrows the first captured error. */
    void wait();

  private:
    void finishOne();

    ThreadPool &pool_;
    std::mutex mutex_; ///< guards error_, pairs with cv_
    std::condition_variable cv_;
    std::size_t pending_ = 0; ///< under mutex_
    std::exception_ptr error_;
};

} // namespace slo::par
