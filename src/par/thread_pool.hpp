/**
 * @file
 * Work-stealing thread pool sized by SLO_THREADS.
 *
 * The pool is the only place in the tree allowed to own threads (the
 * lint gate forbids raw std::thread elsewhere): pipeline code expresses
 * parallelism through `parallelFor` / `parallelInvoke` / `TaskGroup`
 * (par/parallel.hpp) and the pool schedules the chunks. Each worker
 * owns a deque it pushes/pops LIFO; idle workers steal FIFO from their
 * peers, and a thread blocked in `TaskGroup::wait` helps by running
 * tasks *of that group only* instead of sleeping, so nested submission
 * never deadlocks. Helping is deliberately group-scoped: a waiter may
 * hold locks (e.g. an artifact-cache per-key flock around a build), and
 * picking up an unrelated coarse task there could block on a second
 * lock while holding the first — with two processes sharing the cache
 * that is a hold-and-wait cycle flock cannot detect. Group tasks are
 * leaves of the computation the waiter itself spawned, so running them
 * inline can never acquire a lock the waiter does not already own the
 * right to.
 *
 * `SLO_THREADS=1` builds a pool with no worker threads at all: every
 * submit runs inline on the caller, restoring the exact serial
 * execution order (and byte-identical bench output) of a pre-threading
 * build. `SLO_THREADS=N` / unset sizes the global pool to N /
 * hardware_concurrency.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace slo::par
{

/** Parallelism requested by SLO_THREADS (default: hardware threads). */
int defaultThreads();

/** Physical hardware concurrency (never 0; 1 when unknown). */
int hardwareThreads();

class ThreadPool
{
  public:
    /** @p threads < 1 is clamped to 1 (serial). */
    explicit ThreadPool(int threads = defaultThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (1 = serial, no worker threads). */
    int
    numThreads() const
    {
        return threads_;
    }

    /** True when every submit runs inline on the calling thread. */
    bool
    serial() const
    {
        return workers_.empty();
    }

    /** The process-wide pool, sized by SLO_THREADS on first use. */
    static ThreadPool &global();

    /**
     * Enqueue @p task (run inline on a serial pool). From one of this
     * pool's workers the task lands on that worker's own deque; from
     * any other thread it lands on the shared injection queue.
     */
    void submit(std::function<void()> task);

    /**
     * Live snapshot of the pool's self-observability counters:
     * {"threads","serial","tasks_run","steals","parks","busy_seconds",
     *  "park_seconds","utilization","workers":[{...per worker...}]}.
     * Utilization is busy/(busy+park) over all workers (1.0 serial).
     */
    obs::Json statsJson() const;

    /**
     * Write statsJson() into the run manifest's `pool` section and the
     * `par.pool_utilization` gauge. The global pool publishes from an
     * obs pre-emission hook while alive and once more from its
     * destructor, so the section survives the static-destruction
     * ordering where the pool dies before the atexit emission runs.
     */
    void publishStats() const;

  private:
    /** One worker's deque; owner pops back, thieves pop front. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;

        // Self-observability. Relaxed atomics: each is written by one
        // worker (steals by the thieving worker) and only snapshotted.
        std::atomic<std::uint64_t> runs{0};   ///< tasks executed
        std::atomic<std::uint64_t> steals{0}; ///< tasks stolen *by* us
        std::atomic<std::uint64_t> parks{0};  ///< times gone to sleep
        std::atomic<std::uint64_t> busyNanos{0}; ///< inside task()
        std::atomic<std::uint64_t> parkNanos{0}; ///< asleep in wait
    };

    void workerLoop(std::size_t index);

    /**
     * Pop a task: @p home's own deque first (LIFO), then the injection
     * queue, then steal FIFO from the other workers. @p home ==
     * workers_.size() means "no home deque" (external thread).
     */
    bool popTask(std::size_t home, std::function<void()> &task);

    int threads_ = 1;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> joiners_;

    std::mutex mutex_; ///< guards injected_, pending_, stop_
    std::deque<std::function<void()>> injected_;
    std::size_t pending_ = 0; ///< tasks queued anywhere, for sleep/wake
    bool stop_ = false;
    std::condition_variable wake_;
};

/**
 * RAII override of ThreadPool::global() for the current process.
 *
 * While an instance is alive, every call to ThreadPool::global() —
 * and therefore every parallel primitive invoked without an explicit
 * pool — runs on @p pool instead of the SLO_THREADS-sized global
 * pool. Benches and tests use this to measure thread scaling of deep
 * call stacks (e.g. computeOrdering) without threading a pool pointer
 * through every options struct.
 *
 * Single-driver-thread tool: construct and destroy it from one thread,
 * with no parallel work in flight on the previous pool, and keep
 * @p pool alive for the whole scope. Overrides nest (the previous
 * override is restored on destruction).
 */
class ScopedPoolOverride
{
  public:
    explicit ScopedPoolOverride(ThreadPool &pool);
    ~ScopedPoolOverride();

    ScopedPoolOverride(const ScopedPoolOverride &) = delete;
    ScopedPoolOverride &operator=(const ScopedPoolOverride &) = delete;

  private:
    ThreadPool *previous_ = nullptr;
};

/**
 * Fan-in for a batch of tasks: `run` any number of them, then `wait`
 * until all have finished. The first exception thrown by any task is
 * captured and rethrown from `wait` (the remaining tasks still run).
 * On a serial pool, `run` executes the task inline.
 *
 * Tasks live on a queue owned by the group; `run` also submits a proxy
 * to the pool that drains one group task. A blocked `wait` therefore
 * helps only with this group's own tasks (see the file comment for why
 * stealing unrelated work while waiting would risk deadlock), and a
 * worker whose proxy finds the queue already drained simply returns.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool = ThreadPool::global());

    /** Waits for stragglers; exceptions are swallowed here. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void run(std::function<void()> task);

    /** Block until every task ran; rethrows the first captured error. */
    void wait();

  private:
    /**
     * Queue, fan-in counter and first error, shared with the pool
     * proxies by shared_ptr so a proxy that runs after the group
     * object died (the waiter drained every task itself) stays safe.
     */
    struct State;

    /** Pop one queued task and run it. @return false if none queued. */
    static bool runOneQueued(State &state);

    /** Run/await group tasks until none is queued or running. */
    void drain();

    ThreadPool &pool_;
    std::shared_ptr<State> state_;
};

} // namespace slo::par
