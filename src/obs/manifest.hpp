/**
 * @file
 * Machine-readable run manifests.
 *
 * One JSON document per bench/tool invocation recording everything a
 * perf trajectory needs: git SHA, hostname, build configuration,
 * corpus scale, per-matrix per-phase wall times, and every SimReport
 * the run produced. The manifest is the canonical artifact to diff
 * between PRs; bench binaries feed it implicitly through the
 * instrumented pipeline (core::experiment) and `installExitEmission`
 * writes it — together with the Chrome trace and the metrics JSONL —
 * into `SLO_OBS_DIR` (default `.`) when `SLO_TRACE` is on.
 *
 * Schema (`slo.run-manifest/2`):
 *   {
 *     "schema": "slo.run-manifest/2",
 *     "bench": "<name>", "started_at": "<ISO8601 UTC>",
 *     "wall_seconds": <seconds since begin(), at emission time>,
 *     "git_sha": "...", "hostname": "...",
 *     "build": {"type","compiler","flags"},
 *     ... caller extras (scale, spec, num_matrices, ...),
 *     "prof":  {"backend","degraded","degradation_reason",
 *               "peak_rss_kb", process rusage totals}   (src/prof hook)
 *     "pool":  {"threads","utilization","workers":[...]} (src/par hook)
 *     "latency": {"<name>": {"count","p50_seconds",...}}  (src/prof hook)
 *     "matrices": {"<name>": {"phases": {"<phase>": seconds},
 *                             "counters": {"<phase>": {"cycles": n,...}},
 *                             "simulations": [{...SimReport...}]}},
 *     "metrics": {counters/gauges/histograms snapshot; histograms
 *                 carry interpolated p50/p90/p99/p99.9 quantiles}
 *   }
 *
 * v2 over v1: the `prof`/`pool`/`latency` sections (filled by
 * pre-emission hooks, see addPreEmissionHook), per-phase hardware- or
 * rusage-counter deltas under matrices.<m>.counters, and quantiles in
 * the metrics histogram snapshot.
 */

#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace slo::obs
{

/** Facts about this binary, stamped into every manifest. */
struct BuildInfo
{
    std::string gitSha;
    std::string hostname;
    std::string buildType;
    std::string compiler;
    std::string flags;
};

/** Compile-time values (CMake) with SLO_GIT_SHA env override. */
BuildInfo buildInfo();

/** Filesystem-safe slug of @p name (lowercase, [a-z0-9_]). */
std::string slugify(const std::string &name);

/** Directory observability artifacts are written to (SLO_OBS_DIR). */
std::string obsDir();

/**
 * Sticky cross-layer context, e.g. `setContext("matrix", name)` when a
 * pipeline stage starts working on a matrix so later stages that only
 * see the Csr can still attribute their results.
 *
 * The context is **thread-local**: concurrent pipeline cells (one per
 * par::ThreadPool task) each see only their own values, so attribution
 * cannot be scrambled by another thread's setContext. The flip side is
 * that context does not flow into tasks automatically — code that fans
 * out should pass attribution explicitly (see core::runGrid /
 * core::simulateOrderedAs) or re-set the context inside the task.
 */
void setContext(const std::string &key, std::string value);
std::string context(const std::string &key);
/** Drop every context entry of the calling thread (tests). */
void clearContext();

/**
 * RAII: set context @p key to @p value for the current scope and
 * restore the previous value on exit (including unwinding). Use where
 * attribution must not leak past the scope — e.g. one grid cell run
 * inline on a thread that continues with other work afterwards.
 */
class ScopedContext
{
  public:
    ScopedContext(std::string key, std::string value)
        : key_(std::move(key)), saved_(context(key_))
    {
        setContext(key_, std::move(value));
    }
    ~ScopedContext() { setContext(key_, std::move(saved_)); }

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

  private:
    std::string key_;
    std::string saved_;
};

/** The run's manifest under construction (thread-safe). */
class RunManifest
{
  public:
    static RunManifest &instance();

    /** Start the manifest; remembers the name and wall-clock time. */
    void begin(const std::string &bench_name);
    bool began() const;
    std::string benchName() const;

    /** Set a top-level field (scale, spec, ...). */
    void set(const std::string &key, Json value);

    /** Accumulate wall seconds under matrices.<matrix>.phases.<phase>. */
    void recordPhase(const std::string &matrix, const std::string &phase,
                     double seconds);

    /**
     * Accumulate counter deltas under matrices.<matrix>.counters.<phase>.
     * Numeric members of @p deltas add onto any prior values (so a phase
     * run repeatedly reports its total, like recordPhase); non-numeric
     * members overwrite. Used by prof::ScopedCounters.
     */
    void recordPhaseCounters(const std::string &matrix,
                             const std::string &phase, const Json &deltas);

    /** Append a simulation report under matrices.<matrix>.simulations. */
    void addSimulation(const std::string &matrix, Json report);

    /** Assemble the full document (includes a metrics snapshot). */
    Json toJson() const;

    void writeFile(const std::string &path) const;

    /** Clear all state (tests). */
    void reset();

  private:
    RunManifest() = default;

    mutable std::mutex mutex_;
    bool began_ = false;
    std::string bench_;
    std::string startedAt_;
    std::chrono::steady_clock::time_point startClock_{};
    Json extras_ = Json::object();
    Json matrices_ = Json::object();
};

/**
 * Register a one-shot atexit hook that, when tracing is enabled and a
 * manifest was begun, writes `<slug>.manifest.json`,
 * `<slug>.trace.json` and `<slug>.metrics.jsonl` into obsDir().
 */
void installExitEmission();

/**
 * Register @p hook to run at the start of every emitAll(), before the
 * manifest document is assembled. This is how layers above obs (prof's
 * backend/latency sections, par's pool stats) contribute their
 * manifest sections without obs depending on them. Hooks run in
 * registration order; a throwing hook is caught and logged.
 */
void addPreEmissionHook(std::function<void()> hook);

/** Run every registered pre-emission hook now (tests, emitAll). */
void runPreEmissionHooks();

/**
 * Drop every registered hook (tests only — layers that registered
 * process-lifetime hooks, e.g. prof::initProcess, will not re-register
 * in the same process).
 */
void clearPreEmissionHooks();

/** Write the three artifacts now (no-op unless begun). @return ok. */
bool emitAll();

} // namespace slo::obs
