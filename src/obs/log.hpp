/**
 * @file
 * Structured leveled logger for the pipeline.
 *
 * Replaces the ad-hoc `std::ostream *progress` plumbing: library code
 * logs through `SLO_LOG_INFO("component", "message " << detail)` and
 * the active level decides whether anything is formatted at all. The
 * level comes from the `SLO_LOG` environment variable
 * (`off|error|warn|info|debug|trace`, default `info`) and can be
 * overridden programmatically (tests, harnesses).
 *
 * Cost model: a disabled statement is one relaxed atomic load and a
 * branch — no stream, no allocation — so instrumentation can stay in
 * library code permanently.
 */

#pragma once

#include <iosfwd>
#include <sstream>
#include <string_view>

namespace slo::obs
{

/** Severity levels, most severe first. */
enum class LogLevel
{
    Off = 0,
    Error,
    Warn,
    Info,
    Debug,
    Trace,
};

/** Active level (first call parses SLO_LOG). */
LogLevel logLevel();

/** Override the active level (wins over the environment). */
void setLogLevel(LogLevel level);

/** Parse a level name; @p fallback when unrecognized. */
LogLevel parseLogLevel(std::string_view text, LogLevel fallback);

/** Lower-case level name ("info", ...). */
const char *logLevelName(LogLevel level);

/** Would a message at @p level be emitted right now? */
bool logEnabled(LogLevel level);

/** Emit one formatted line: `[slo][level][component] message`. */
void logMessage(LogLevel level, std::string_view component,
                std::string_view message);

/** Redirect output (tests); nullptr restores the default (stderr). */
void setLogSink(std::ostream *sink);

} // namespace slo::obs

/** Log `stream_expr` at `level_` if enabled; zero formatting otherwise. */
#define SLO_LOG(level_, component_, stream_expr_)                         \
    do {                                                                  \
        if (::slo::obs::logEnabled(level_)) {                             \
            std::ostringstream slo_log_stream_;                           \
            slo_log_stream_ << stream_expr_;                              \
            ::slo::obs::logMessage(level_, component_,                    \
                                   slo_log_stream_.str());                \
        }                                                                 \
    } while (0)

#define SLO_LOG_ERROR(component_, stream_expr_)                           \
    SLO_LOG(::slo::obs::LogLevel::Error, component_, stream_expr_)
#define SLO_LOG_WARN(component_, stream_expr_)                            \
    SLO_LOG(::slo::obs::LogLevel::Warn, component_, stream_expr_)
#define SLO_LOG_INFO(component_, stream_expr_)                            \
    SLO_LOG(::slo::obs::LogLevel::Info, component_, stream_expr_)
#define SLO_LOG_DEBUG(component_, stream_expr_)                           \
    SLO_LOG(::slo::obs::LogLevel::Debug, component_, stream_expr_)
#define SLO_LOG_TRACE(component_, stream_expr_)                           \
    SLO_LOG(::slo::obs::LogLevel::Trace, component_, stream_expr_)
