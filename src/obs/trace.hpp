/**
 * @file
 * Scoped tracing spans with Chrome trace-event export.
 *
 * `SLO_SPAN("rabbit.louvain")` opens a span for the enclosing scope;
 * spans nest (a per-thread depth is tracked) and completed spans are
 * collected thread-safely. `writeTraceFile` renders the collection as
 * a Chrome trace-event JSON document that loads directly in Perfetto
 * (https://ui.perfetto.dev) or `chrome://tracing`.
 *
 * Collection is off unless `SLO_TRACE` is set to a truthy value (or
 * `setTraceEnabled(true)` is called); a disabled span still measures
 * its own wall time (`elapsedSeconds()`), which is what replaced the
 * old `core::Timer`, but records nothing.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace slo::obs
{

/**
 * One collected event, relative to the process trace epoch. Complete
 * spans are `ph == 'X'`; counter samples (`emitCounter`) are 'C' and
 * render as per-thread counter tracks in a trace viewer.
 */
struct TraceEvent
{
    std::string name;
    char ph = 'X';          ///< 'X' complete span, 'C' counter sample
    double tsMicros = 0.0;  ///< start, microseconds since epoch
    double durMicros = 0.0; ///< duration, microseconds ('X' only)
    double value = 0.0;     ///< sample value ('C' only)
    std::uint64_t tid = 0;  ///< small per-process thread ordinal
    int depth = 0;          ///< nesting depth at span entry (0 = root)
};

/** Is collection on? First call consults SLO_TRACE. */
bool traceEnabled();

/** Force collection on/off (wins over the environment). */
void setTraceEnabled(bool on);

/** Drop all collected events (tests). */
void traceReset();

/** Snapshot of the events completed so far. */
std::vector<TraceEvent> traceEvents();

/** The collection as a Chrome trace-event document. */
Json traceJson();

/** Write traceJson() to @p path. */
void writeTraceFile(const std::string &path);

/**
 * Monotonic nanoseconds since an arbitrary process epoch. The one
 * sanctioned raw clock for layers that must measure without opening a
 * span (e.g. the par workers' busy/park accounting); everything else
 * should prefer Span / prof::ScopedLatency.
 */
std::uint64_t monotonicNanos();

/**
 * Record a counter sample on the calling thread's track (Chrome
 * trace 'C' event). No-op when tracing is disabled; intended for
 * low-frequency samples (per park, per phase), not per-access data.
 */
void emitCounter(const std::string &name, double value);

/**
 * Name the calling thread's track in the trace viewer (Chrome trace
 * 'M'/thread_name metadata). Last call per thread wins.
 */
void setThreadName(const std::string &name);

/**
 * A scoped span. Cheap when tracing is disabled (two clock reads, no
 * allocation beyond the name); records a complete event on
 * destruction when enabled.
 */
class Span
{
  public:
    explicit Span(std::string name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Wall-clock seconds since construction; works when disabled. */
    double elapsedSeconds() const;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    int depth_ = 0;
    bool recording_ = false;
};

} // namespace slo::obs

#define SLO_OBS_CONCAT_INNER(a_, b_) a_##b_
#define SLO_OBS_CONCAT(a_, b_) SLO_OBS_CONCAT_INNER(a_, b_)

/** Open a span named @p ... for the rest of the enclosing scope. */
#define SLO_SPAN(...)                                                     \
    const ::slo::obs::Span SLO_OBS_CONCAT(slo_span_, __LINE__)(__VA_ARGS__)
