#include "obs/manifest.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include <unistd.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef SLO_GIT_SHA
#define SLO_GIT_SHA "unknown"
#endif
#ifndef SLO_BUILD_TYPE
#define SLO_BUILD_TYPE "unknown"
#endif
#ifndef SLO_CXX_COMPILER
#define SLO_CXX_COMPILER "unknown"
#endif
#ifndef SLO_CXX_FLAGS
#define SLO_CXX_FLAGS ""
#endif

namespace slo::obs
{

namespace
{

// Thread-local: each pool task attributes independently (see header).
thread_local std::map<std::string, std::string> t_context;

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

BuildInfo
buildInfo()
{
    BuildInfo info;
    const char *sha_env = std::getenv("SLO_GIT_SHA");
    info.gitSha = sha_env != nullptr && *sha_env != '\0' ? sha_env
                                                         : SLO_GIT_SHA;
    char host[256] = {0};
    if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0') {
        info.hostname = host;
    } else {
        const char *env = std::getenv("HOSTNAME");
        info.hostname = env != nullptr ? env : "unknown";
    }
    info.buildType = SLO_BUILD_TYPE;
    info.compiler = SLO_CXX_COMPILER;
    info.flags = SLO_CXX_FLAGS;
    return info;
}

std::string
slugify(const std::string &name)
{
    std::string slug;
    bool last_sep = true; // swallow leading separators
    for (unsigned char c : name) {
        if (std::isalnum(c)) {
            slug += static_cast<char>(std::tolower(c));
            last_sep = false;
        } else if (!last_sep) {
            slug += '_';
            last_sep = true;
        }
    }
    while (!slug.empty() && slug.back() == '_')
        slug.pop_back();
    return slug.empty() ? "run" : slug;
}

std::string
obsDir()
{
    const char *env = std::getenv("SLO_OBS_DIR");
    return env != nullptr && *env != '\0' ? env : ".";
}

void
setContext(const std::string &key, std::string value)
{
    t_context[key] = std::move(value);
}

std::string
context(const std::string &key)
{
    const auto it = t_context.find(key);
    return it == t_context.end() ? std::string() : it->second;
}

void
clearContext()
{
    t_context.clear();
}

RunManifest &
RunManifest::instance()
{
    // Intentionally leaked, same as MetricsRegistry::instance(): the
    // global thread pool's destructor publishes its final stats here,
    // which may run after a mid-run-constructed manifest would have
    // been destroyed.
    static RunManifest *manifest = new RunManifest();
    return *manifest;
}

void
RunManifest::begin(const std::string &bench_name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    began_ = true;
    bench_ = bench_name;
    startedAt_ = isoTimestampUtc();
    startClock_ = std::chrono::steady_clock::now();
}

bool
RunManifest::began() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return began_;
}

std::string
RunManifest::benchName() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return bench_;
}

void
RunManifest::set(const std::string &key, Json value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    extras_[key] = std::move(value);
}

void
RunManifest::recordPhase(const std::string &matrix,
                         const std::string &phase, double seconds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Json &slot = matrices_[matrix]["phases"][phase];
    const double prior = slot.isNumber() ? slot.asDouble() : 0.0;
    slot = prior + seconds;
}

void
RunManifest::recordPhaseCounters(const std::string &matrix,
                                 const std::string &phase,
                                 const Json &deltas)
{
    if (!deltas.isObject())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    Json &slot = matrices_[matrix]["counters"][phase];
    if (!slot.isObject())
        slot = Json::object();
    for (const auto &[key, value] : deltas.entries()) {
        Json &field = slot[key];
        if (value.isNumber() && field.isNumber())
            field = field.asDouble() + value.asDouble();
        else
            field = value;
    }
}

void
RunManifest::addSimulation(const std::string &matrix, Json report)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    matrices_[matrix]["simulations"].push(std::move(report));
}

Json
RunManifest::toJson() const
{
    Json doc = Json::object();
    doc["schema"] = "slo.run-manifest/2";
    const BuildInfo info = buildInfo();
    doc["git_sha"] = info.gitSha;
    doc["hostname"] = info.hostname;
    Json build = Json::object();
    build["type"] = info.buildType;
    build["compiler"] = info.compiler;
    build["flags"] = info.flags;
    doc["build"] = std::move(build);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        doc["bench"] = bench_;
        doc["started_at"] = startedAt_;
        if (began_) {
            doc["wall_seconds"] =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - startClock_)
                    .count();
        }
        for (const auto &[key, value] : extras_.entries())
            doc[key] = value;
        doc["matrices"] = matrices_;
    }
    doc["metrics"] = MetricsRegistry::instance().snapshot();
    return doc;
}

void
RunManifest::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    out << toJson().dump(2) << '\n';
}

void
RunManifest::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    began_ = false;
    bench_.clear();
    startedAt_.clear();
    extras_ = Json::object();
    matrices_ = Json::object();
}

namespace
{

std::mutex g_hooks_mutex;
std::vector<std::function<void()>> g_pre_emission_hooks;

} // namespace

void
addPreEmissionHook(std::function<void()> hook)
{
    const std::lock_guard<std::mutex> lock(g_hooks_mutex);
    g_pre_emission_hooks.push_back(std::move(hook));
}

void
clearPreEmissionHooks()
{
    const std::lock_guard<std::mutex> lock(g_hooks_mutex);
    g_pre_emission_hooks.clear();
}

void
runPreEmissionHooks()
{
    std::vector<std::function<void()>> hooks;
    {
        const std::lock_guard<std::mutex> lock(g_hooks_mutex);
        hooks = g_pre_emission_hooks;
    }
    for (const auto &hook : hooks) {
        try {
            hook();
        } catch (const std::exception &error) {
            SLO_LOG_WARN("obs", "pre-emission hook failed: "
                                    << error.what());
        }
    }
}

bool
emitAll()
{
    RunManifest &manifest = RunManifest::instance();
    if (!manifest.began())
        return false;
    runPreEmissionHooks();
    const std::string slug = slugify(manifest.benchName());
    const std::filesystem::path dir = obsDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const auto manifest_path = dir / (slug + ".manifest.json");
    const auto trace_path = dir / (slug + ".trace.json");
    const auto metrics_path = dir / (slug + ".metrics.jsonl");
    manifest.writeFile(manifest_path.string());
    writeTraceFile(trace_path.string());
    MetricsRegistry::instance().writeJsonlFile(metrics_path.string());
    SLO_LOG_INFO("obs", "wrote " << manifest_path.string() << ", "
                                 << trace_path.string() << ", "
                                 << metrics_path.string());
    return true;
}

namespace
{

void
emitAtExit()
{
    if (traceEnabled())
        emitAll();
}

} // namespace

void
installExitEmission()
{
    static std::atomic<bool> installed{false};
    bool expected = false;
    if (installed.compare_exchange_strong(expected, true)) {
        // Warm up the singletons the emission path touches (they are
        // leaked, so this is belt-and-braces rather than a
        // destruction-order requirement).
        MetricsRegistry::instance();
        RunManifest::instance();
        std::atexit(emitAtExit);
    }
}

} // namespace slo::obs
