/**
 * @file
 * Process-wide metrics registry: named counters, gauges, histograms.
 *
 * Pipeline code increments metrics unconditionally (a counter add is a
 * relaxed atomic, a histogram observe takes a short lock) and the
 * registry dumps everything to JSONL at emission time, so a run's
 * cache-traffic / community-structure / artifact-cache numbers are
 * queryable without rerunning under a debugger. Metric objects live for
 * the whole process; references returned by the registry stay valid.
 *
 * Naming convention: `layer.thing` with snake_case leaves, e.g.
 * `cache.fill_bytes`, `perm_cache.hits`, `rabbit.communities`.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace slo::obs
{

/** Monotonic counter (thread-safe, lock-free). */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (thread-safe). */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Cumulative histogram with explicit upper bounds (thread-safe). */
class Histogram
{
  public:
    /** @p bounds must be sorted ascending; one overflow bucket added. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double sample);

    std::uint64_t count() const;
    double sum() const;
    double minSample() const; ///< +inf before the first observe
    double maxSample() const; ///< -inf before the first observe
    const std::vector<double> &bounds() const { return bounds_; }
    /** One count per bound, plus the trailing overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    Json toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_;
    double max_;
};

/** Powers-of-ten bounds suitable for seconds/ratios: 1e-6 .. 1e3. */
std::vector<double> defaultBuckets();

/** The process-wide named-metrics registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Get or create; the reference stays valid for the process. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = defaultBuckets());

    /** {"counters": {...}, "gauges": {...}, "histograms": {...}}. */
    Json snapshot() const;

    /** One JSON object per line: {"type","name",...}. */
    void writeJsonl(std::ostream &out) const;
    void writeJsonlFile(const std::string &path) const;

    /** Drop every metric (tests only — invalidates references). */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthands for MetricsRegistry::instance().xxx(name). */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

} // namespace slo::obs
