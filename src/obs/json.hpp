/**
 * @file
 * Minimal JSON value: build, serialize, parse.
 *
 * The observability layer emits three machine-readable artifacts (run
 * manifests, Chrome trace-event files, metrics JSONL) and the tests
 * parse them back; this header is the one JSON implementation behind
 * all of them. Deliberately small: ordered objects (deterministic
 * output), 64-bit integers kept exact (byte counters exceed a double's
 * 53-bit mantissa at large scale), no external dependencies.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace slo::obs
{

/** A JSON document node (null/bool/int/uint/double/string/array/object). */
class Json
{
  public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool value) : value_(value) {}
    Json(int value) : value_(static_cast<std::int64_t>(value)) {}
    Json(long value) : value_(static_cast<std::int64_t>(value)) {}
    Json(long long value) : value_(static_cast<std::int64_t>(value)) {}
    Json(unsigned value) : value_(static_cast<std::uint64_t>(value)) {}
    Json(unsigned long value) : value_(static_cast<std::uint64_t>(value)) {}
    Json(unsigned long long value)
        : value_(static_cast<std::uint64_t>(value)) {}
    Json(double value) : value_(value) {}
    Json(const char *value) : value_(std::string(value)) {}
    Json(std::string value) : value_(std::move(value)) {}

    static Json array() { Json j; j.value_ = Array{}; return j; }
    static Json object() { Json j; j.value_ = Object{}; return j; }

    bool isNull() const { return holds<std::nullptr_t>(); }
    bool isBool() const { return holds<bool>(); }
    bool isNumber() const
    {
        return holds<std::int64_t>() || holds<std::uint64_t>() ||
               holds<double>();
    }
    bool isString() const { return holds<std::string>(); }
    bool isArray() const { return holds<Array>(); }
    bool isObject() const { return holds<Object>(); }

    bool asBool() const { return std::get<bool>(value_); }
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const
    {
        return std::get<std::string>(value_);
    }

    /** Object access; creates the key (converting null to object). */
    Json &operator[](const std::string &key);
    /** Object lookup. @throws std::out_of_range when absent. */
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;

    /** Array append (converts null to array). */
    void push(Json element);
    /** Array element. @throws std::out_of_range when out of bounds. */
    const Json &at(std::size_t index) const;

    /** Elements for arrays, entries for objects, 0 otherwise. */
    std::size_t size() const;

    const Array &items() const { return std::get<Array>(value_); }
    const Object &entries() const { return std::get<Object>(value_); }

    /**
     * Serialize. @p indent < 0 renders compact; otherwise pretty-print
     * with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text. Returns nullopt on malformed input; when @p error
     * is non-null it receives a one-line description with the offset.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string *error = nullptr);

  private:
    template <typename T>
    bool holds() const { return std::holds_alternative<T>(value_); }

    void dumpTo(std::string &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t,
                 double, std::string, Array, Object>
        value_;
};

} // namespace slo::obs
