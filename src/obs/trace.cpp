#include "obs/trace.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

namespace slo::obs
{

namespace
{

constexpr int kUnset = -1;

std::atomic<int> g_enabled{kUnset};
std::mutex g_events_mutex;
std::vector<TraceEvent> g_events;
/** tid -> latest thread name (metadata events; last call wins). */
std::mutex g_names_mutex;
std::vector<std::pair<std::uint64_t, std::string>> g_thread_names;

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::uint64_t
threadOrdinal()
{
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

thread_local int t_depth = 0;

bool
envTruthy(const char *value)
{
    return value != nullptr && *value != '\0' &&
           std::strcmp(value, "0") != 0 &&
           std::strcmp(value, "false") != 0 &&
           std::strcmp(value, "off") != 0;
}

} // namespace

bool
traceEnabled()
{
    int enabled = g_enabled.load(std::memory_order_relaxed);
    if (enabled == kUnset) {
        enabled = envTruthy(std::getenv("SLO_TRACE")) ? 1 : 0;
        int expected = kUnset;
        g_enabled.compare_exchange_strong(expected, enabled,
                                          std::memory_order_relaxed);
        enabled = g_enabled.load(std::memory_order_relaxed);
    }
    return enabled != 0;
}

void
setTraceEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
traceReset()
{
    {
        const std::lock_guard<std::mutex> lock(g_events_mutex);
        g_events.clear();
    }
    const std::lock_guard<std::mutex> lock(g_names_mutex);
    g_thread_names.clear();
}

std::vector<TraceEvent>
traceEvents()
{
    const std::lock_guard<std::mutex> lock(g_events_mutex);
    return g_events;
}

Json
traceJson()
{
    Json events = Json::array();
    {
        // thread_name metadata first so viewers label the tracks
        // before any samples land on them.
        const std::lock_guard<std::mutex> lock(g_names_mutex);
        for (const auto &[tid, name] : g_thread_names) {
            Json e = Json::object();
            e["name"] = "thread_name";
            e["ph"] = "M";
            e["pid"] = 1;
            e["tid"] = tid;
            Json args = Json::object();
            args["name"] = name;
            e["args"] = std::move(args);
            events.push(std::move(e));
        }
    }
    for (const TraceEvent &event : traceEvents()) {
        Json e = Json::object();
        e["name"] = event.name;
        e["cat"] = "slo";
        e["ph"] = std::string(1, event.ph);
        e["ts"] = event.tsMicros;
        e["pid"] = 1;
        e["tid"] = event.tid;
        Json args = Json::object();
        if (event.ph == 'C') {
            args["value"] = event.value;
        } else {
            e["dur"] = event.durMicros;
            args["depth"] = event.depth;
        }
        e["args"] = std::move(args);
        events.push(std::move(e));
    }
    Json doc = Json::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    return doc;
}

void
writeTraceFile(const std::string &path)
{
    std::ofstream out(path);
    out << traceJson().dump(2) << '\n';
}

Span::Span(std::string name)
    : name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      recording_(traceEnabled())
{
    if (recording_) {
        depth_ = t_depth;
        ++t_depth;
    }
}

Span::~Span()
{
    if (!recording_)
        return;
    const auto end = std::chrono::steady_clock::now();
    --t_depth;
    TraceEvent event;
    event.name = std::move(name_);
    event.tsMicros =
        std::chrono::duration<double, std::micro>(start_ - traceEpoch())
            .count();
    // The epoch is lazily captured by the first completing span; a span
    // that started marginally earlier would otherwise get a negative ts.
    if (event.tsMicros < 0.0)
        event.tsMicros = 0.0;
    event.durMicros =
        std::chrono::duration<double, std::micro>(end - start_).count();
    event.tid = threadOrdinal();
    event.depth = depth_;
    const std::lock_guard<std::mutex> lock(g_events_mutex);
    g_events.push_back(std::move(event));
}

double
Span::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
emitCounter(const std::string &name, double value)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.name = name;
    event.ph = 'C';
    event.tsMicros =
        static_cast<double>(monotonicNanos()) / 1000.0;
    event.value = value;
    event.tid = threadOrdinal();
    const std::lock_guard<std::mutex> lock(g_events_mutex);
    g_events.push_back(std::move(event));
}

void
setThreadName(const std::string &name)
{
    if (!traceEnabled())
        return;
    const std::uint64_t tid = threadOrdinal();
    const std::lock_guard<std::mutex> lock(g_names_mutex);
    for (auto &[existing_tid, existing_name] : g_thread_names) {
        if (existing_tid == tid) {
            existing_name = name;
            return;
        }
    }
    g_thread_names.emplace_back(tid, name);
}

} // namespace slo::obs
