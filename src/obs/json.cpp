#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace slo::obs
{

namespace
{

void
appendEscaped(std::string &out, const std::string &text)
{
    out += '"';
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
}

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Json>
    run()
    {
        skipSpace();
        std::optional<Json> value = parseValue(0);
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size()) {
            fail("trailing characters");
            return std::nullopt;
        }
        return value;
    }

  private:
    static constexpr int kMaxDepth = 128;

    void
    fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty()) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return std::nullopt;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return std::nullopt;
                        }
                    }
                    // UTF-8 encode the BMP code point (we never emit
                    // surrogate pairs ourselves).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<Json>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        bool integral = true;
        if (consume('.')) {
            integral = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") {
            fail("expected number");
            return std::nullopt;
        }
        if (integral) {
            errno = 0;
            char *end = nullptr;
            if (token[0] == '-') {
                const long long v =
                    std::strtoll(token.c_str(), &end, 10);
                if (errno == 0 && end != nullptr && *end == '\0')
                    return Json(static_cast<std::int64_t>(v));
            } else {
                const unsigned long long v =
                    std::strtoull(token.c_str(), &end, 10);
                if (errno == 0 && end != nullptr && *end == '\0')
                    return Json(static_cast<std::uint64_t>(v));
            }
            // Fall through to double on overflow.
        }
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number");
            return std::nullopt;
        }
        return Json(v);
    }

    std::optional<Json>
    parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipSpace();
            if (consume('}'))
                return obj;
            while (true) {
                skipSpace();
                std::optional<std::string> key = parseString();
                if (!key)
                    return std::nullopt;
                skipSpace();
                if (!consume(':')) {
                    fail("expected ':'");
                    return std::nullopt;
                }
                std::optional<Json> value = parseValue(depth + 1);
                if (!value)
                    return std::nullopt;
                obj[*key] = std::move(*value);
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                fail("expected ',' or '}'");
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipSpace();
            if (consume(']'))
                return arr;
            while (true) {
                std::optional<Json> value = parseValue(depth + 1);
                if (!value)
                    return std::nullopt;
                arr.push(std::move(*value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                fail("expected ',' or ']'");
                return std::nullopt;
            }
        }
        if (c == '"') {
            std::optional<std::string> s = parseString();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json(nullptr);
        return parseNumber();
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

double
Json::asDouble() const
{
    if (holds<std::int64_t>())
        return static_cast<double>(std::get<std::int64_t>(value_));
    if (holds<std::uint64_t>())
        return static_cast<double>(std::get<std::uint64_t>(value_));
    return std::get<double>(value_);
}

std::int64_t
Json::asInt() const
{
    if (holds<std::uint64_t>())
        return static_cast<std::int64_t>(std::get<std::uint64_t>(value_));
    if (holds<double>())
        return static_cast<std::int64_t>(std::get<double>(value_));
    return std::get<std::int64_t>(value_);
}

std::uint64_t
Json::asUint() const
{
    if (holds<std::int64_t>())
        return static_cast<std::uint64_t>(std::get<std::int64_t>(value_));
    if (holds<double>())
        return static_cast<std::uint64_t>(std::get<double>(value_));
    return std::get<std::uint64_t>(value_);
}

Json &
Json::operator[](const std::string &key)
{
    if (isNull())
        value_ = Object{};
    return std::get<Object>(value_)[key];
}

const Json &
Json::at(const std::string &key) const
{
    return std::get<Object>(value_).at(key);
}

bool
Json::contains(const std::string &key) const
{
    return isObject() && std::get<Object>(value_).count(key) != 0;
}

void
Json::push(Json element)
{
    if (isNull())
        value_ = Array{};
    std::get<Array>(value_).push_back(std::move(element));
}

const Json &
Json::at(std::size_t index) const
{
    return std::get<Array>(value_).at(index);
}

std::size_t
Json::size() const
{
    if (isArray())
        return std::get<Array>(value_).size();
    if (isObject())
        return std::get<Object>(value_).size();
    return 0;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const auto newline = [&](int level) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * level), ' ');
        }
    };
    if (holds<std::nullptr_t>()) {
        out += "null";
    } else if (holds<bool>()) {
        out += std::get<bool>(value_) ? "true" : "false";
    } else if (holds<std::int64_t>()) {
        out += std::to_string(std::get<std::int64_t>(value_));
    } else if (holds<std::uint64_t>()) {
        out += std::to_string(std::get<std::uint64_t>(value_));
    } else if (holds<double>()) {
        appendDouble(out, std::get<double>(value_));
    } else if (holds<std::string>()) {
        appendEscaped(out, std::get<std::string>(value_));
    } else if (holds<Array>()) {
        const Array &arr = std::get<Array>(value_);
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        bool first = true;
        for (const Json &item : arr) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            item.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const Object &obj = std::get<Object>(value_);
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, value] : obj) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            appendEscaped(out, key);
            out += pretty ? ": " : ":";
            value.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::optional<Json>
Json::parse(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).run();
}

} // namespace slo::obs
