/**
 * @file
 * Umbrella header for the observability layer.
 *
 * One include gives pipeline code the whole toolkit:
 *
 *   SLO_SPAN("layer.phase");                  // scoped tracing span
 *   SLO_LOG_INFO("corpus", "built " << name); // leveled logging
 *   obs::counter("cache.fill_bytes").add(n);  // metrics registry
 *   obs::RunManifest::instance()...           // run manifest
 *
 * Environment knobs:
 *   SLO_LOG=off|error|warn|info|debug|trace   log level (default info)
 *   SLO_TRACE=1       collect spans; emit manifest/trace/metrics files
 *   SLO_OBS_DIR=<dir> where emission writes them (default .)
 *   SLO_GIT_SHA=<sha> override the compiled-in git SHA
 */

#pragma once

#include "obs/json.hpp"     // IWYU pragma: export
#include "obs/log.hpp"      // IWYU pragma: export
#include "obs/manifest.hpp" // IWYU pragma: export
#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
