#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace slo::obs
{

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument(
            "Histogram: bounds must be sorted ascending");
}

void
Histogram::observe(double sample)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), sample);
    const auto bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[bucket];
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

std::uint64_t
Histogram::count() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::minSample() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Histogram::maxSample() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

namespace
{

/**
 * Nearest-rank quantile estimate over cumulative bucket counts with
 * linear interpolation inside the winning bucket. Bucket b covers
 * (bounds[b-1], bounds[b]]; the edges are clamped to the observed
 * [min, max] so the under/overflow buckets stay finite.
 */
double
estimateQuantile(const std::vector<double> &bounds,
                 const std::vector<std::uint64_t> &counts,
                 std::uint64_t count, double min_sample,
                 double max_sample, double q)
{
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0)
            continue;
        if (cumulative + counts[b] >= rank) {
            double lo = b == 0 ? min_sample : bounds[b - 1];
            double hi = b == bounds.size() ? max_sample : bounds[b];
            lo = std::max(lo, min_sample);
            hi = std::min(hi, max_sample);
            if (hi < lo)
                hi = lo;
            const double fraction =
                (static_cast<double>(rank - cumulative) - 0.5) /
                static_cast<double>(counts[b]);
            return lo + fraction * (hi - lo);
        }
        cumulative += counts[b];
    }
    return max_sample;
}

} // namespace

Json
Histogram::toJson() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Json j = Json::object();
    j["count"] = count_;
    j["sum"] = sum_;
    if (count_ > 0) {
        j["min"] = min_;
        j["max"] = max_;
        Json quantiles = Json::object();
        const std::pair<const char *, double> points[] = {
            {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
        for (const auto &[label, q] : points) {
            quantiles[label] = estimateQuantile(bounds_, counts_, count_,
                                                min_, max_, q);
        }
        j["quantiles"] = std::move(quantiles);
    }
    Json bounds = Json::array();
    for (double b : bounds_)
        bounds.push(b);
    Json counts = Json::array();
    for (std::uint64_t c : counts_)
        counts.push(c);
    j["bounds"] = std::move(bounds);
    j["bucket_counts"] = std::move(counts);
    return j;
}

std::vector<double>
defaultBuckets()
{
    std::vector<double> bounds;
    for (int e = -6; e <= 3; ++e) {
        double decade = 1.0;
        for (int i = 0; i < (e < 0 ? -e : e); ++i)
            decade *= 10.0;
        bounds.push_back(e < 0 ? 1.0 / decade : decade);
    }
    return bounds;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Intentionally leaked: static destructors (the global thread
    // pool publishing its final stats) and the atexit emission hook
    // both touch the registry after a mid-run-constructed instance
    // would already have been destroyed. A never-destroyed heap
    // instance is immune to destruction order; the destructor has no
    // side effects to lose.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

Json
MetricsRegistry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Json j = Json::object();
    Json counters = Json::object();
    for (const auto &[name, c] : counters_)
        counters[name] = c->value();
    Json gauges = Json::object();
    for (const auto &[name, g] : gauges_)
        gauges[name] = g->value();
    Json histograms = Json::object();
    for (const auto &[name, h] : histograms_)
        histograms[name] = h->toJson();
    j["counters"] = std::move(counters);
    j["gauges"] = std::move(gauges);
    j["histograms"] = std::move(histograms);
    return j;
}

void
MetricsRegistry::writeJsonl(std::ostream &out) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_) {
        Json line = Json::object();
        line["type"] = "counter";
        line["name"] = name;
        line["value"] = c->value();
        out << line.dump() << '\n';
    }
    for (const auto &[name, g] : gauges_) {
        Json line = Json::object();
        line["type"] = "gauge";
        line["name"] = name;
        line["value"] = g->value();
        out << line.dump() << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        Json line = h->toJson();
        line["type"] = "histogram";
        line["name"] = name;
        out << line.dump() << '\n';
    }
}

void
MetricsRegistry::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    writeJsonl(out);
}

void
MetricsRegistry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

Counter &
counter(const std::string &name)
{
    return MetricsRegistry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return MetricsRegistry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return MetricsRegistry::instance().histogram(name);
}

} // namespace slo::obs
