#include "obs/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>
#include <iostream>
#include <mutex>

namespace slo::obs
{

namespace
{

constexpr int kUnset = -1;

std::atomic<int> g_level{kUnset};
std::mutex g_sink_mutex;
std::ostream *g_sink = nullptr; // nullptr = stderr

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("SLO_LOG");
    if (env == nullptr)
        return LogLevel::Info;
    return parseLogLevel(env, LogLevel::Info);
}

} // namespace

LogLevel
logLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level == kUnset) {
        level = static_cast<int>(levelFromEnv());
        int expected = kUnset;
        // First caller wins; later setLogLevel overrides either way.
        g_level.compare_exchange_strong(expected, level,
                                        std::memory_order_relaxed);
        level = g_level.load(std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
parseLogLevel(std::string_view raw, LogLevel fallback)
{
    std::string lowered(raw);
    for (char &c : lowered)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    const std::string_view text = lowered;
    if (text == "off" || text == "none" || text == "0")
        return LogLevel::Off;
    if (text == "error")
        return LogLevel::Error;
    if (text == "warn" || text == "warning")
        return LogLevel::Warn;
    if (text == "info" || text == "1")
        return LogLevel::Info;
    if (text == "debug")
        return LogLevel::Debug;
    if (text == "trace")
        return LogLevel::Trace;
    return fallback;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Off: return "off";
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
    }
    return "?";
}

bool
logEnabled(LogLevel level)
{
    const LogLevel active = logLevel();
    return active != LogLevel::Off && level != LogLevel::Off &&
           static_cast<int>(level) <= static_cast<int>(active);
}

void
logMessage(LogLevel level, std::string_view component,
           std::string_view message)
{
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::ostream &out = g_sink != nullptr ? *g_sink : std::cerr;
    out << "[slo][" << logLevelName(level) << "][" << component << "] "
        << message << '\n';
    out.flush();
}

void
setLogSink(std::ostream *sink)
{
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink = sink;
}

} // namespace slo::obs
