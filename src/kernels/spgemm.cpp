#include "kernels/spgemm.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "check/check.hpp"
#include "check/checked_cast.hpp"
#include "obs/log.hpp"

namespace slo::kernels
{

namespace
{

constexpr Offset kDefaultDenseThreshold = 256;

/** Multiply count (merged elements) of one A row against B. */
std::uint64_t
rowFlops(const Csr &a, const Csr &b, Index row)
{
    const auto &b_offsets = b.rowOffsets();
    std::uint64_t flops = 0;
    for (const Index j : a.rowIndices(row)) {
        const auto jj = static_cast<std::size_t>(j);
        flops += static_cast<std::uint64_t>(b_offsets[jj + 1] -
                                            b_offsets[jj]);
    }
    return flops;
}

} // namespace

const char *
spgemmBName(SpgemmB variant)
{
    switch (variant) {
      case SpgemmB::A: return "A";
      case SpgemmB::ATranspose: return "AT";
    }
    fatal("spgemmBName: unknown variant");
}

Csr
spgemmOperandB(const Csr &a, SpgemmB variant)
{
    Csr b = variant == SpgemmB::A ? a : a.transposed();
    b.sortRows();
    return b;
}

Offset
spgemmDenseThresholdFromEnv()
{
    static const Offset threshold = [] {
        const char *raw = std::getenv("SLO_SPGEMM_DENSE_THRESHOLD");
        if (raw == nullptr || *raw == '\0')
            return kDefaultDenseThreshold;
        char *end = nullptr;
        const long long value = std::strtoll(raw, &end, 10);
        if (end == raw || *end != '\0' || value <= 0) {
            SLO_LOG_WARN("kernels",
                         "ignoring bad SLO_SPGEMM_DENSE_THRESHOLD="
                             << raw);
            return kDefaultDenseThreshold;
        }
        return static_cast<Offset>(value);
    }();
    return threshold;
}

Offset
spgemmTotalNnz(std::span<const std::uint64_t> row_counts)
{
    std::uint64_t total = 0;
    for (const std::uint64_t count : row_counts) {
        SLO_CHECK(count <=
                      std::numeric_limits<std::uint64_t>::max() - total,
                  "spgemm", "nnz(C) accumulation overflows 64 bits");
        total += count;
    }
    return checkedCast<Offset>(total);
}

std::vector<Index>
spgemmRowNnz(const Csr &a, const Csr &b)
{
    require(a.numCols() == b.numRows(),
            "spgemmRowNnz: inner dimensions differ");
    const Index n = a.numRows();
    std::vector<Index> counts(static_cast<std::size_t>(n), 0);
    // Column-stamp array: stamp[c] == row marks column c as already
    // counted for the current output row. Reused across rows without
    // clearing (stamps from earlier rows never collide).
    std::vector<Index> stamp(static_cast<std::size_t>(b.numCols()), -1);
    for (Index r = 0; r < n; ++r) {
        Index count = 0;
        for (const Index j : a.rowIndices(r)) {
            for (const Index c : b.rowIndices(j)) {
                auto &mark = stamp[static_cast<std::size_t>(c)];
                if (mark != r) {
                    mark = r;
                    ++count;
                }
            }
        }
        counts[static_cast<std::size_t>(r)] = count;
    }
    return counts;
}

SpgemmStats
spgemmStreamStats(const Csr &a, const Csr &b)
{
    require(a.numCols() == b.numRows(),
            "spgemmStreamStats: inner dimensions differ");
    const Index n = a.numRows();
    SpgemmStats stats;
    const auto &b_offsets = b.rowOffsets();
    std::vector<Index> stamp(static_cast<std::size_t>(b.numCols()), -1);
    // lastFetch[j] = 1 + fetch index of B row j's previous use
    // (0 = never fetched), so reuse distance needs no separate seen[].
    std::vector<std::uint64_t> lastFetch(
        static_cast<std::size_t>(b.numRows()), 0);
    std::uint64_t fetch_clock = 0;
    for (Index r = 0; r < n; ++r) {
        Index fan_in = 0;
        Index row_nnz = 0;
        for (const Index j : a.rowIndices(r)) {
            const auto jj = static_cast<std::size_t>(j);
            stats.flops += static_cast<std::uint64_t>(
                b_offsets[jj + 1] - b_offsets[jj]);
            ++fan_in;
            ++fetch_clock;
            if (lastFetch[jj] != 0) {
                const std::uint64_t distance =
                    fetch_clock - lastFetch[jj];
                ++stats.bRowReuses;
                stats.reuseDistanceTotal += distance;
                stats.maxReuseDistance =
                    std::max(stats.maxReuseDistance, distance);
            }
            lastFetch[jj] = fetch_clock;
            for (const Index c : b.rowIndices(j)) {
                auto &mark = stamp[static_cast<std::size_t>(c)];
                if (mark != r) {
                    mark = r;
                    ++row_nnz;
                }
            }
        }
        stats.fanInTotal += static_cast<std::uint64_t>(fan_in);
        stats.maxFanIn = std::max(stats.maxFanIn, fan_in);
        stats.maxRowNnz = std::max(stats.maxRowNnz, row_nnz);
        stats.nnzC += static_cast<std::uint64_t>(row_nnz);
    }
    stats.bRowFetches = fetch_clock;
    return stats;
}

SpgemmResult
spgemmCsr(const Csr &a, const Csr &b, const SpgemmOptions &options)
{
    require(a.numCols() == b.numRows(),
            "spgemmCsr: inner dimensions differ");
    const Index n = a.numRows();
    const Index m = b.numCols();
    const Offset threshold = options.denseThreshold > 0
                                 ? options.denseThreshold
                                 : spgemmDenseThresholdFromEnv();

    SpgemmResult result;
    result.stats = spgemmStreamStats(a, b);
    const Offset nnz_c = checkedCast<Offset>(result.stats.nnzC);

    std::vector<Offset> row_offsets(static_cast<std::size_t>(n) + 1, 0);
    std::vector<Index> col_indices;
    std::vector<Value> values;
    col_indices.reserve(static_cast<std::size_t>(nnz_c));
    values.reserve(static_cast<std::size_t>(nnz_c));

    // Dense path scratch: per-column accumulator + stamp, allocated
    // once and reused (stamps make clearing unnecessary).
    std::vector<double> dense_acc(static_cast<std::size_t>(m), 0.0);
    std::vector<Index> dense_stamp(static_cast<std::size_t>(m), -1);
    // Sparse path scratch: (column, value) gather buffer.
    std::vector<std::pair<Index, double>> gather;

    for (Index r = 0; r < n; ++r) {
        const std::uint64_t flops = rowFlops(a, b, r);
        const std::span<const Index> a_cols = a.rowIndices(r);
        const std::span<const Value> a_vals = a.rowValues(r);
        const std::size_t out_begin = col_indices.size();

        if (static_cast<std::uint64_t>(threshold) < flops) {
            // Dense accumulator: scatter, then walk the touched
            // columns in sorted order via a collected-and-sorted key
            // list (m can be large; never scan all of it).
            std::vector<Index> touched;
            for (std::size_t k = 0; k < a_cols.size(); ++k) {
                const Index j = a_cols[k];
                const double av = static_cast<double>(a_vals[k]);
                const std::span<const Index> b_cols = b.rowIndices(j);
                const std::span<const Value> b_vals = b.rowValues(j);
                for (std::size_t t = 0; t < b_cols.size(); ++t) {
                    const auto c = static_cast<std::size_t>(b_cols[t]);
                    if (dense_stamp[c] != r) {
                        dense_stamp[c] = r;
                        dense_acc[c] = 0.0;
                        touched.push_back(b_cols[t]);
                    }
                    dense_acc[c] += av * static_cast<double>(b_vals[t]);
                }
            }
            std::sort(touched.begin(), touched.end());
            for (const Index c : touched) {
                col_indices.push_back(c);
                values.push_back(static_cast<Value>(
                    dense_acc[static_cast<std::size_t>(c)]));
            }
        } else {
            // Sort-merge accumulator: gather every product term, sort
            // by column, combine duplicates.
            gather.clear();
            for (std::size_t k = 0; k < a_cols.size(); ++k) {
                const Index j = a_cols[k];
                const double av = static_cast<double>(a_vals[k]);
                const std::span<const Index> b_cols = b.rowIndices(j);
                const std::span<const Value> b_vals = b.rowValues(j);
                for (std::size_t t = 0; t < b_cols.size(); ++t)
                    gather.emplace_back(
                        b_cols[t], av * static_cast<double>(b_vals[t]));
            }
            std::stable_sort(gather.begin(), gather.end(),
                             [](const auto &x, const auto &y) {
                                 return x.first < y.first;
                             });
            for (std::size_t k = 0; k < gather.size();) {
                const Index c = gather[k].first;
                double sum = 0.0;
                while (k < gather.size() && gather[k].first == c) {
                    sum += gather[k].second;
                    ++k;
                }
                col_indices.push_back(c);
                values.push_back(static_cast<Value>(sum));
            }
        }
        row_offsets[static_cast<std::size_t>(r) + 1] =
            checkedCast<Offset>(col_indices.size());
        SLO_CHECK(col_indices.size() > out_begin ||
                      a_cols.empty() || flops == 0,
                  "spgemm", "non-empty merge produced an empty row "
                                << r);
    }
    SLO_CHECK(col_indices.size() ==
                  static_cast<std::size_t>(result.stats.nnzC),
              "spgemm", "numeric nnz(C) "
                            << col_indices.size()
                            << " != symbolic " << result.stats.nnzC);

    result.c = Csr(n, m, std::move(row_offsets), std::move(col_indices),
                   std::move(values));
    return result;
}

SpgemmResult
spgemmCsr(const Csr &a, SpgemmB variant, const SpgemmOptions &options)
{
    return spgemmCsr(a, spgemmOperandB(a, variant), options);
}

} // namespace slo::kernels
