/**
 * @file
 * Propagation-blocked SpMV (Beamer et al. IPDPS'17; the paper's
 * Sec. VII "blocking optimizations" category).
 *
 * Push-style SpMV with binning: phase 1 streams the non-zeros and
 * appends (destination, contribution) pairs into bins keyed by
 * destination range; phase 2 drains each bin, accumulating into a
 * bounded slice of y. Every access in both phases is streaming except
 * the y-slice updates, whose footprint is binRows * 4B — chosen to fit
 * the cache. The price: ~16 extra streamed bytes per non-zero.
 *
 * Unlike reordering this needs application changes (the paper's
 * argument for preferring reordering); the ext_blocking bench
 * quantifies the trade.
 */

#pragma once

#include <span>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::kernels
{

/** Pre-processed state for propagation-blocked y = A*x. */
class PropagationBlockedSpmv
{
  public:
    /**
     * @param matrix the sparse matrix (CSR)
     * @param bin_rows destination rows per bin (the y-slice footprint)
     */
    PropagationBlockedSpmv(const Csr &matrix, Index bin_rows);

    Index numRows() const { return numRows_; }
    Index binRows() const { return binRows_; }
    Index numBins() const;

    /** The internally held CSC (transpose) view. */
    const Csr &csc() const { return csc_; }

    /** y = A*x (y must be zero-filled). */
    void spmv(std::span<const Value> x, std::span<Value> y) const;

    /**
     * Bytes moved per phase under the streaming model: phase 1 writes
     * and phase 2 reads one (Index, Value) record per non-zero.
     */
    std::uint64_t binTrafficBytes() const;

  private:
    Index numRows_ = 0;
    Index numCols_ = 0;
    Index binRows_ = 0;
    Csr csc_; ///< transpose of the input (push-order traversal)
};

} // namespace slo::kernels
