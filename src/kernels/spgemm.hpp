/**
 * @file
 * Sparse x sparse matrix multiply (SpGEMM), Gustavson row-merge.
 *
 * The first workload family beyond SpMV-shaped traffic: C = A*B where
 * both operands are sparse. The paper evaluates orderings on SpMV only,
 * but community reordering's payoff generalizes — in Gustavson's
 * algorithm row i of C merges one row of B per non-zero of A's row i,
 * so the *order* of A's columns decides how soon a B row is re-fetched.
 * A community ordering that clusters A's columns clusters the B-row
 * working set the same way (the cluster-wise-computation observation of
 * arXiv 2507.21253).
 *
 * Two operand variants cover the common graph workloads:
 *   B = A    (squaring; triangle counting, Markov clustering)
 *   B = Aᵀ   (cosine/co-occurrence style products)
 *
 * The numeric kernel uses a hybrid per-row accumulator: rows whose
 * multiply count exceeds the dense threshold scatter into a dense
 * column-indexed array (O(cols) memory, reused across rows), all other
 * rows gather into a small sorted buffer. Both paths produce the same
 * sorted, duplicate-combined row, so the threshold — and the
 * SLO_SPGEMM_DENSE_THRESHOLD knob behind it — is performance-only.
 *
 * Merge statistics (fan-in, B-row reuse distance) quantify what an
 * ordering changes about the merge itself, independent of any cache
 * geometry; the simulator backends (gpu/simulator.hpp) report them
 * alongside the modelled traffic.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::kernels
{

/** Which B operand an SpGEMM variant multiplies by. */
enum class SpgemmB
{
    A,          ///< C = A * A
    ATranspose, ///< C = A * Aᵀ
};

/** Stable display name ("A" / "AT"). */
const char *spgemmBName(SpgemmB variant);

/** Materialize the B operand (A itself, or Aᵀ; rows sorted). */
Csr spgemmOperandB(const Csr &a, SpgemmB variant);

/** Options for the numeric kernel. */
struct SpgemmOptions
{
    /**
     * Rows whose multiply count (total merged elements) exceeds this
     * use the dense accumulator; the rest use the sort-merge buffer.
     * <= 0 reads SLO_SPGEMM_DENSE_THRESHOLD (default 256). Either path
     * yields the identical C — the knob is performance-only.
     */
    Offset denseThreshold = 0;
};

/** The active dense threshold (SLO_SPGEMM_DENSE_THRESHOLD or 256). */
Offset spgemmDenseThresholdFromEnv();

/**
 * Merge statistics of C = A*B under Gustavson's row order. All counts
 * are exact properties of the operand structure, independent of
 * accumulator strategy, thread count, and cache geometry.
 */
struct SpgemmStats
{
    /** Multiply-accumulate operations (total merged elements). */
    std::uint64_t flops = 0;
    /** Non-zeros of C (distinct columns summed over rows). */
    std::uint64_t nnzC = 0;
    /** Sum over rows of merge fan-in (B rows merged) == nnz(A). */
    std::uint64_t fanInTotal = 0;
    /** Largest per-row merge fan-in. */
    Index maxFanIn = 0;
    /** Largest per-row output length. */
    Index maxRowNnz = 0;
    /** B-row fetches in stream order (== nnz(A)). */
    std::uint64_t bRowFetches = 0;
    /** Fetches of a B row fetched at least once before. */
    std::uint64_t bRowReuses = 0;
    /** Sum over reuses of the fetch-distance since the row's last use. */
    std::uint64_t reuseDistanceTotal = 0;
    /** Largest single reuse distance. */
    std::uint64_t maxReuseDistance = 0;

    double
    meanFanIn(Index rows) const
    {
        return rows == 0 ? 0.0
                         : static_cast<double>(fanInTotal) /
                               static_cast<double>(rows);
    }

    /** Mean fetch-distance between consecutive uses of a B row. */
    double
    meanReuseDistance() const
    {
        return bRowReuses == 0
                   ? 0.0
                   : static_cast<double>(reuseDistanceTotal) /
                         static_cast<double>(bRowReuses);
    }
};

/** The product and its merge statistics. */
struct SpgemmResult
{
    Csr c;
    SpgemmStats stats;
};

/**
 * C = A*B by Gustavson row merge. @p a's columns must match @p b's
 * rows. Rows of C come out sorted with duplicates combined; the result
 * is bit-identical for any @p options.denseThreshold.
 */
SpgemmResult spgemmCsr(const Csr &a, const Csr &b,
                       const SpgemmOptions &options = {});

/** Convenience: build B from @p variant, then multiply. */
SpgemmResult spgemmCsr(const Csr &a, SpgemmB variant,
                       const SpgemmOptions &options = {});

/**
 * Symbolic pass: per-row non-zero counts of C (no values computed).
 * This is what sizes the C region of the SpGEMM address layout.
 */
std::vector<Index> spgemmRowNnz(const Csr &a, const Csr &b);

/**
 * Checked accumulation of per-row counts into a total nnz(C): sums in
 * 64-bit unsigned and converts through slo::checkedCast<Offset>, so a
 * product too large for the non-zero Offset type throws
 * check::ContractViolation instead of wrapping. (The 32/64-bit seam
 * every SpGEMM implementation has somewhere; here it is explicit.)
 */
Offset spgemmTotalNnz(std::span<const std::uint64_t> row_counts);

/**
 * Merge statistics only, without materializing C. Walks the operand
 * structure in Gustavson order (the same order the access stream
 * replays), so fan-in and reuse distances match the streamed run.
 */
SpgemmStats spgemmStreamStats(const Csr &a, const Csr &b);

} // namespace slo::kernels
