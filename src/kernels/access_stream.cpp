#include "kernels/access_stream.hpp"

namespace slo::kernels
{

namespace
{

/** Round @p bytes up to a multiple of @p line_bytes. */
std::uint64_t
alignUp(std::uint64_t bytes, std::uint32_t line_bytes)
{
    const std::uint64_t mask = line_bytes - 1;
    return (bytes + mask) & ~mask;
}

} // namespace

AddressLayout
makeLayout(KernelKind kind, Index n, Offset nnz, Index dense_cols,
           std::uint32_t line_bytes, Offset nnz_c)
{
    require(n >= 0 && nnz >= 0 && nnz_c >= 0,
            "makeLayout: negative sizes");
    AddressLayout layout;
    const auto vec_bytes =
        static_cast<std::uint64_t>(n) * kElemBytes;
    const auto nnz_bytes =
        static_cast<std::uint64_t>(nnz) * kElemBytes;
    std::uint64_t cursor = 0;
    auto place = [&](std::uint64_t size) {
        const std::uint64_t base = cursor;
        cursor += alignUp(size, line_bytes);
        return base;
    };

    switch (kind) {
      case KernelKind::SpmvCsr:
        layout.xBase = place(vec_bytes);
        layout.xEnd = cursor;
        layout.yBase = place(vec_bytes);
        layout.rowOffsetsBase =
            place(static_cast<std::uint64_t>(n + 1) * kElemBytes);
        layout.coordsBase = place(nnz_bytes);
        layout.valuesBase = place(nnz_bytes);
        break;
      case KernelKind::SpmvCoo:
        layout.xBase = place(vec_bytes);
        layout.xEnd = cursor;
        layout.yBase = place(vec_bytes);
        layout.rowIndicesBase = place(nnz_bytes);
        layout.coordsBase = place(nnz_bytes);
        layout.valuesBase = place(nnz_bytes);
        break;
      case KernelKind::SpmmCsr: {
        require(dense_cols > 0, "makeLayout: dense_cols must be > 0");
        const auto dense_bytes = static_cast<std::uint64_t>(n) *
                                 static_cast<std::uint64_t>(dense_cols) *
                                 kElemBytes;
        layout.xBase = place(dense_bytes);
        layout.xEnd = cursor;
        layout.yBase = place(dense_bytes);
        layout.rowOffsetsBase =
            place(static_cast<std::uint64_t>(n + 1) * kElemBytes);
        layout.coordsBase = place(nnz_bytes);
        layout.valuesBase = place(nnz_bytes);
        break;
      }
      case KernelKind::SpgemmAA:
      case KernelKind::SpgemmAAT: {
        // B's three arrays form the irregular region [xBase, xEnd):
        // which B rows get fetched (and when) is what an ordering
        // changes. Both in-tree variants have nnz(B) == nnz(A).
        const auto offsets_bytes =
            static_cast<std::uint64_t>(n + 1) * kElemBytes;
        const auto nnz_c_bytes =
            static_cast<std::uint64_t>(nnz_c) * kElemBytes;
        layout.xBase = cursor;
        layout.bRowOffsetsBase = place(offsets_bytes);
        layout.bCoordsBase = place(nnz_bytes);
        layout.bValuesBase = place(nnz_bytes);
        layout.xEnd = cursor;
        layout.rowOffsetsBase = place(offsets_bytes);
        layout.coordsBase = place(nnz_bytes);
        layout.valuesBase = place(nnz_bytes);
        layout.yBase = place(offsets_bytes); // C row descriptors
        layout.cCoordsBase = place(nnz_c_bytes);
        layout.cValuesBase = place(nnz_c_bytes);
        break;
      }
    }
    return layout;
}

} // namespace slo::kernels
