/**
 * @file
 * Cache-blocked (tiled) SpMV — the paper's Sec. VII extension hook.
 *
 * Tiling optimizations split the matrix into column strips so the
 * irregular accesses of each strip stay within a bounded X range
 * (bounded cache footprint), at the cost of extra sparse-format
 * traffic (each strip re-streams row bookkeeping) and application
 * changes. The paper leaves "RABBIT++ + tiling" composition to future
 * work; this module implements it so the ext_tiling bench can measure
 * it.
 */

#pragma once

#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::kernels
{

/** A matrix split into vertical strips, each a CSR over all rows. */
class TiledCsr
{
  public:
    /**
     * Split @p matrix into strips of @p tile_cols columns
     * (the last strip may be narrower).
     */
    TiledCsr(const Csr &matrix, Index tile_cols);

    Index numRows() const { return numRows_; }
    Index numCols() const { return numCols_; }
    Index tileCols() const { return tileCols_; }
    Index numTiles() const
    {
        return static_cast<Index>(tiles_.size());
    }
    const Csr &tile(Index i) const
    {
        return tiles_[static_cast<std::size_t>(i)];
    }

    /** Total stored non-zeros across strips (== input nnz). */
    Offset numNonZeros() const;

    /** y = A*x, strip by strip (y must be zero-filled). */
    void spmv(std::span<const Value> x, std::span<Value> y) const;

  private:
    Index numRows_ = 0;
    Index numCols_ = 0;
    Index tileCols_ = 0;
    std::vector<Csr> tiles_;
};

} // namespace slo::kernels
