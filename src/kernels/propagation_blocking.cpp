#include "kernels/propagation_blocking.hpp"

#include <utility>

namespace slo::kernels
{

PropagationBlockedSpmv::PropagationBlockedSpmv(const Csr &matrix,
                                               Index bin_rows)
    : numRows_(matrix.numRows()), numCols_(matrix.numCols()),
      binRows_(bin_rows), csc_(matrix.transposed())
{
    require(bin_rows > 0,
            "PropagationBlockedSpmv: bin_rows must be positive");
}

Index
PropagationBlockedSpmv::numBins() const
{
    return (numRows_ + binRows_ - 1) / binRows_;
}

void
PropagationBlockedSpmv::spmv(std::span<const Value> x,
                             std::span<Value> y) const
{
    require(x.size() == static_cast<std::size_t>(numCols_),
            "PropagationBlockedSpmv::spmv: x size mismatch");
    require(y.size() == static_cast<std::size_t>(numRows_),
            "PropagationBlockedSpmv::spmv: y size mismatch");

    // Phase 1 (binning): walk the CSC view — row c of the transpose
    // lists the destinations r with A[r,c] != 0 — so x[c] is a purely
    // sequential read, and each non-zero appends one (dst,
    // contribution) record to the bin owning dst. Everything streams.
    const Index bins = numBins();
    if (bins == 0)
        return; // empty matrix: no destinations, nothing to bin
    std::vector<std::vector<std::pair<Index, Value>>> buffers(
        static_cast<std::size_t>(bins));
    const auto expected =
        static_cast<std::size_t>(csc_.numNonZeros()) /
            static_cast<std::size_t>(bins) +
        8;
    for (auto &buffer : buffers)
        buffer.reserve(expected);
    for (Index c = 0; c < csc_.numRows(); ++c) {
        const Value xc = x[static_cast<std::size_t>(c)];
        auto dst = csc_.rowIndices(c);
        auto val = csc_.rowValues(c);
        for (std::size_t i = 0; i < dst.size(); ++i) {
            buffers[static_cast<std::size_t>(dst[i] / binRows_)]
                .emplace_back(dst[i], val[i] * xc);
        }
    }

    // Phase 2 (accumulation): drain each bin; the y updates touch a
    // binRows_*4B slice that fits the cache by construction.
    for (const auto &buffer : buffers) {
        for (const auto &[dst, contribution] : buffer)
            y[static_cast<std::size_t>(dst)] += contribution;
    }
}

std::uint64_t
PropagationBlockedSpmv::binTrafficBytes() const
{
    // One (Index, Value) record per non-zero, written then read back.
    return 2ULL * static_cast<std::uint64_t>(csc_.numNonZeros()) *
           (sizeof(Index) + sizeof(Value));
}

} // namespace slo::kernels
