/**
 * @file
 * CPU reference implementations of the sparse kernels the paper studies.
 *
 * These mirror Algorithm 1 (SpMV on CSR) plus the Table IV variants
 * (SpMV on COO, SpMM on CSR with a dense K-column matrix). They are used
 * for functional correctness (results must be invariant, up to FP
 * reassociation, under symmetric reordering) and for host-side timing in
 * the examples. The GPU-side behaviour is modelled separately via the
 * access streams in access_stream.hpp.
 */

#pragma once

#include <span>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::kernels
{

/** y = A*x with A in CSR (Algorithm 1). */
void spmvCsr(const Csr &matrix, std::span<const Value> x,
             std::span<Value> y);

/** Convenience overload allocating the result. */
std::vector<Value> spmvCsr(const Csr &matrix,
                           const std::vector<Value> &x);

/** y = A*x with A in (row-major sorted) COO. y must be zero-filled. */
void spmvCoo(const Coo &matrix, std::span<const Value> x,
             std::span<Value> y);

/**
 * C = A*B with A in CSR and B dense, row-major, @p dense_cols columns.
 * C is dense, row-major, numRows x dense_cols; must be zero-filled.
 */
void spmmCsr(const Csr &matrix, std::span<const Value> b,
             Index dense_cols, std::span<Value> c);

/**
 * Permute a dense vector into the reordered index space:
 * result[perm[i]] = x[i]. (What a user must do to the input vector after
 * reordering the matrix.)
 */
std::vector<Value> permuteVector(std::span<const Value> x,
                                 const Permutation &perm);

/** Inverse of permuteVector: result[i] = y[perm[i]]. */
std::vector<Value> unpermuteVector(std::span<const Value> y,
                                   const Permutation &perm);

} // namespace slo::kernels
