/**
 * @file
 * GPU-style memory-access streams for the sparse kernels.
 *
 * The cache-simulation methodology (paper Sec. VI-B): replay the byte
 * addresses a kernel touches through an L2 model. Each kernel gets an
 * address-space layout placing its arrays in disjoint, line-aligned
 * regions; the region of the irregularly-accessed operand (the input
 * vector X, or the dense matrix B for SpMM) is recorded so the
 * performance model can split DRAM traffic into streaming and random
 * components.
 *
 * Access granularity: scalar 4-byte loads for all sparse-format arrays
 * and for X in SpMV (the kernels' actual load pattern); one access per
 * touched line for the contiguous K-element row segments of B and C in
 * SpMM (vectorized loads).
 *
 * The optional row window models GPU thread-level parallelism: W rows
 * are processed round-robin, interleaving their non-zero streams, the
 * way concurrent warps do. W=1 reproduces the sequential replay the
 * paper's simulator validated within 4% of hardware.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/types.hpp"

#include "kernels/spgemm.hpp"

namespace slo::kernels
{

/** Sparse kernels whose locality the library models (Tables II/IV). */
enum class KernelKind
{
    SpmvCsr,
    SpmvCoo,
    SpmmCsr,
    SpgemmAA,  ///< C = A * A  (Gustavson row merge)
    SpgemmAAT, ///< C = A * Aᵀ (Gustavson row merge)
};

/** Is @p kind one of the sparse x sparse matmul kernels? */
inline bool
isSpgemm(KernelKind kind)
{
    return kind == KernelKind::SpgemmAA || kind == KernelKind::SpgemmAAT;
}

/** The B operand of an SpGEMM kind (must be an SpGEMM kind). */
inline SpgemmB
spgemmVariant(KernelKind kind)
{
    return kind == KernelKind::SpgemmAAT ? SpgemmB::ATranspose
                                         : SpgemmB::A;
}

/** Disjoint, line-aligned base addresses for a kernel's arrays. */
struct AddressLayout
{
    std::uint64_t xBase = 0;   ///< input vector X / dense matrix B /
                               ///< sparse B arrays (SpGEMM)
    std::uint64_t xEnd = 0;
    std::uint64_t yBase = 0;   ///< output vector Y / dense matrix C /
                               ///< C row offsets (SpGEMM)
    std::uint64_t rowOffsetsBase = 0; ///< CSR only
    std::uint64_t rowIndicesBase = 0; ///< COO only
    std::uint64_t coordsBase = 0;     ///< column indices
    std::uint64_t valuesBase = 0;
    /** SpGEMM only: the sparse B operand's arrays (inside [xBase,
     * xEnd), the irregularly-accessed region) and C's output arrays. */
    std::uint64_t bRowOffsetsBase = 0;
    std::uint64_t bCoordsBase = 0;
    std::uint64_t bValuesBase = 0;
    std::uint64_t cCoordsBase = 0;
    std::uint64_t cValuesBase = 0;

    /** Is @p addr in the irregularly-accessed region (X/B)? */
    bool
    isIrregular(std::uint64_t addr) const
    {
        return addr >= xBase && addr < xEnd;
    }
};

/**
 * Build the layout for @p kind on an n x n matrix with @p nnz non-zeros.
 * @param dense_cols K for SpmmCsr (ignored otherwise)
 * @param nnz_c nnz of the C product (SpGEMM kinds only; both in-tree
 *        variants have nnz(B) == nnz(A), so no separate B size is
 *        needed). Obtain it from kernels::spgemmRowNnz.
 */
AddressLayout makeLayout(KernelKind kind, Index n, Offset nnz,
                         Index dense_cols, std::uint32_t line_bytes,
                         Offset nnz_c = 0);

/** Options controlling stream generation. */
struct StreamOptions
{
    /** Rows processed round-robin concurrently (1 = sequential). */
    int rowWindow = 1;
    /** K for SpMM. */
    Index denseCols = 4;
};

/**
 * Replay the SpMV-CSR access stream (Algorithm 1) into @p sink, a
 * callable taking one byte address per access.
 */
template <typename Sink>
void
spmvCsrStream(const Csr &matrix, const AddressLayout &layout,
              const StreamOptions &options, Sink &&sink)
{
    const auto &offsets = matrix.rowOffsets();
    const auto &coords = matrix.colIndices();
    const Index n = matrix.numRows();
    const auto window = static_cast<Index>(
        options.rowWindow < 1 ? 1 : options.rowWindow);

    if (window == 1) {
        // Sequential replay: same emission order as the round-robin
        // loop below with a one-row block, minus its bookkeeping (no
        // per-block cursor allocation on this hot path).
        for (Index r = 0; r < n; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
            const Offset begin = offsets[static_cast<std::size_t>(r)];
            const Offset end =
                offsets[static_cast<std::size_t>(r) + 1];
            for (Offset i = begin; i < end; ++i) {
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.xBase +
                     static_cast<std::uint64_t>(
                         coords[static_cast<std::size_t>(i)]) *
                         kElemBytes);
            }
            if (end > begin) {
                // Row complete: the accumulated result is stored.
                sink(layout.yBase +
                     static_cast<std::uint64_t>(r) * kElemBytes);
            }
        }
        return;
    }

    std::vector<Offset> cursor(static_cast<std::size_t>(window));
    for (Index block = 0; block < n; block += window) {
        const Index block_end = std::min<Index>(block + window, n);
        // Row bounds load once per row (offsets r and r+1).
        for (Index r = block; r < block_end; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
        }
        // Round-robin over the rows of the block, one non-zero each.
        bool remaining = true;
        for (Index r = block; r < block_end; ++r) {
            cursor[static_cast<std::size_t>(r - block)] =
                offsets[static_cast<std::size_t>(r)];
        }
        while (remaining) {
            remaining = false;
            for (Index r = block; r < block_end; ++r) {
                auto &pos = cursor[static_cast<std::size_t>(r - block)];
                const Offset row_end =
                    offsets[static_cast<std::size_t>(r) + 1];
                if (pos >= row_end)
                    continue;
                const auto i = static_cast<std::size_t>(pos);
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.xBase +
                     static_cast<std::uint64_t>(coords[i]) * kElemBytes);
                ++pos;
                if (pos >= row_end) {
                    // Row complete: the accumulated result is stored.
                    sink(layout.yBase +
                         static_cast<std::uint64_t>(r) * kElemBytes);
                } else {
                    remaining = true;
                }
            }
        }
    }
}

/** Replay the SpMV-COO access stream (row-major sorted COO). */
template <typename Sink>
void
spmvCooStream(const Coo &matrix, const AddressLayout &layout,
              Sink &&sink)
{
    const auto &rows = matrix.rows();
    const auto &cols = matrix.cols();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        sink(layout.rowIndicesBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.coordsBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.valuesBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.xBase +
             static_cast<std::uint64_t>(cols[i]) * kElemBytes);
        // Atomic accumulation into Y[row] per non-zero.
        sink(layout.yBase +
             static_cast<std::uint64_t>(rows[i]) * kElemBytes);
    }
}

/** Replay the SpMM-CSR access stream (dense B/C rows as line loads). */
template <typename Sink>
void
spmmCsrStream(const Csr &matrix, const AddressLayout &layout,
              const StreamOptions &options, std::uint32_t line_bytes,
              Sink &&sink)
{
    const auto &coords = matrix.colIndices();
    const Index n = matrix.numRows();
    const auto k_bytes =
        static_cast<std::uint64_t>(options.denseCols) * kElemBytes;
    const auto window = static_cast<Index>(
        options.rowWindow < 1 ? 1 : options.rowWindow);

    auto emit_row_segment = [&](std::uint64_t base) {
        // One access per line the K-element segment touches.
        const std::uint64_t first = base;
        const std::uint64_t last = base + k_bytes - 1;
        for (std::uint64_t line = first / line_bytes;
             line <= last / line_bytes; ++line) {
            sink(line * line_bytes);
        }
    };

    if (window == 1) {
        // Sequential fast path; emission order identical to the
        // round-robin loop below with one-row blocks.
        for (Index r = 0; r < n; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
            const Offset begin =
                matrix.rowOffsets()[static_cast<std::size_t>(r)];
            const Offset end =
                matrix.rowOffsets()[static_cast<std::size_t>(r) + 1];
            for (Offset i = begin; i < end; ++i) {
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                emit_row_segment(layout.xBase +
                                 static_cast<std::uint64_t>(
                                     coords[static_cast<std::size_t>(
                                         i)]) *
                                     k_bytes);
            }
            if (end > begin) {
                emit_row_segment(layout.yBase +
                                 static_cast<std::uint64_t>(r) *
                                     k_bytes);
            }
        }
        return;
    }

    std::vector<Offset> cursor(static_cast<std::size_t>(window));
    for (Index block = 0; block < n; block += window) {
        const Index block_end = std::min<Index>(block + window, n);
        for (Index r = block; r < block_end; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
        }
        for (Index r = block; r < block_end; ++r) {
            cursor[static_cast<std::size_t>(r - block)] =
                matrix.rowOffsets()[static_cast<std::size_t>(r)];
        }
        bool remaining = true;
        while (remaining) {
            remaining = false;
            for (Index r = block; r < block_end; ++r) {
                auto &pos = cursor[static_cast<std::size_t>(r - block)];
                const Offset row_end =
                    matrix.rowOffsets()[static_cast<std::size_t>(r) + 1];
                if (pos >= row_end)
                    continue;
                const auto i = static_cast<std::size_t>(pos);
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                emit_row_segment(layout.xBase +
                                 static_cast<std::uint64_t>(coords[i]) *
                                     k_bytes);
                ++pos;
                if (pos >= row_end) {
                    emit_row_segment(layout.yBase +
                                     static_cast<std::uint64_t>(r) *
                                         k_bytes);
                } else {
                    remaining = true;
                }
            }
        }
    }
}

/**
 * Replay the SpGEMM (Gustavson row-merge) access stream for C = A*B.
 *
 * Per output row r: A's row bounds load, then per non-zero of A's row
 * the coordinate/value loads followed by the fetch of B's row j (row
 * bounds + every coordinate/value — the irregularly-accessed operand),
 * and finally the stores of C's row descriptor and merged output
 * entries. The accumulator itself lives on chip (registers/SMEM in the
 * modelled GPU), so merging emits no memory traffic; only B-row
 * fetches do, which is exactly what makes SpGEMM ordering-sensitive.
 *
 * The per-row output length is recomputed on the fly with a column
 * stamp array, so the stream needs no materialized symbolic pass; the
 * emitted C positions match kernels::spgemmRowNnz by construction.
 */
template <typename Sink>
void
spgemmCsrStream(const Csr &a, const Csr &b, const AddressLayout &layout,
                Sink &&sink)
{
    const auto &a_offsets = a.rowOffsets();
    const auto &a_cols = a.colIndices();
    const auto &b_offsets = b.rowOffsets();
    const auto &b_cols = b.colIndices();
    const Index n = a.numRows();
    std::vector<Index> stamp(static_cast<std::size_t>(b.numCols()), -1);
    std::uint64_t out = 0;
    for (Index r = 0; r < n; ++r) {
        sink(layout.rowOffsetsBase +
             static_cast<std::uint64_t>(r) * kElemBytes);
        sink(layout.rowOffsetsBase +
             static_cast<std::uint64_t>(r + 1) * kElemBytes);
        std::uint64_t row_out = 0;
        const Offset begin = a_offsets[static_cast<std::size_t>(r)];
        const Offset end = a_offsets[static_cast<std::size_t>(r) + 1];
        for (Offset k = begin; k < end; ++k) {
            sink(layout.coordsBase +
                 static_cast<std::uint64_t>(k) * kElemBytes);
            sink(layout.valuesBase +
                 static_cast<std::uint64_t>(k) * kElemBytes);
            const Index j = a_cols[static_cast<std::size_t>(k)];
            sink(layout.bRowOffsetsBase +
                 static_cast<std::uint64_t>(j) * kElemBytes);
            sink(layout.bRowOffsetsBase +
                 static_cast<std::uint64_t>(j + 1) * kElemBytes);
            const Offset b_begin =
                b_offsets[static_cast<std::size_t>(j)];
            const Offset b_end =
                b_offsets[static_cast<std::size_t>(j) + 1];
            for (Offset t = b_begin; t < b_end; ++t) {
                sink(layout.bCoordsBase +
                     static_cast<std::uint64_t>(t) * kElemBytes);
                sink(layout.bValuesBase +
                     static_cast<std::uint64_t>(t) * kElemBytes);
                auto &mark =
                    stamp[static_cast<std::size_t>(
                        b_cols[static_cast<std::size_t>(t)])];
                if (mark != r) {
                    mark = r;
                    ++row_out;
                }
            }
        }
        // Row complete: store C's row descriptor and merged entries.
        sink(layout.yBase + static_cast<std::uint64_t>(r) * kElemBytes);
        for (std::uint64_t o = 0; o < row_out; ++o) {
            sink(layout.cCoordsBase + (out + o) * kElemBytes);
            sink(layout.cValuesBase + (out + o) * kElemBytes);
        }
        out += row_out;
    }
}

/**
 * Replay @p kind's access stream into @p sink — the one entry point
 * the simulators consume (cache simulation fuses with generation; no
 * trace is ever materialized). @p sink is invoked once per byte
 * address, in kernel order; callers that want batches wrap @p sink in
 * a buffering adapter (gpu/sim_stream.hpp).
 *
 * SpmvCoo converts the matrix to row-major sorted COO per call, and
 * the SpGEMM kinds build their B operand (A or Aᵀ) per call; pass a
 * pre-built COO / B matrix via the overloads below when replaying more
 * than once (e.g. the two-pass Belady driver).
 */
template <typename Sink>
void
forEachAccess(KernelKind kind, const Csr &matrix,
              const AddressLayout &layout, const StreamOptions &options,
              std::uint32_t line_bytes, Sink &&sink)
{
    switch (kind) {
      case KernelKind::SpmvCsr:
        spmvCsrStream(matrix, layout, options, sink);
        break;
      case KernelKind::SpmvCoo: {
        const Coo coo = matrix.toCoo(); // row-major sorted
        spmvCooStream(coo, layout, sink);
        break;
      }
      case KernelKind::SpmmCsr:
        spmmCsrStream(matrix, layout, options, line_bytes, sink);
        break;
      case KernelKind::SpgemmAA:
      case KernelKind::SpgemmAAT: {
        const Csr b = spgemmOperandB(matrix, spgemmVariant(kind));
        spgemmCsrStream(matrix, b, layout, sink);
        break;
      }
    }
}

/** As above with a caller-held COO (only read when kind == SpmvCoo). */
template <typename Sink>
void
forEachAccess(KernelKind kind, const Csr &matrix, const Coo &coo,
              const AddressLayout &layout, const StreamOptions &options,
              std::uint32_t line_bytes, Sink &&sink)
{
    if (kind == KernelKind::SpmvCoo) {
        spmvCooStream(coo, layout, sink);
        return;
    }
    forEachAccess(kind, matrix, layout, options, line_bytes, sink);
}

/**
 * As above with a caller-held SpGEMM B operand (only read when @p kind
 * is an SpGEMM kind) — the two-pass Belady driver replays the stream
 * twice and must not rebuild (or re-transpose) B per pass.
 */
template <typename Sink>
void
forEachAccess(KernelKind kind, const Csr &matrix, const Csr &b,
              const AddressLayout &layout, const StreamOptions &options,
              std::uint32_t line_bytes, Sink &&sink)
{
    if (isSpgemm(kind)) {
        spgemmCsrStream(matrix, b, layout, sink);
        return;
    }
    forEachAccess(kind, matrix, layout, options, line_bytes, sink);
}

} // namespace slo::kernels
