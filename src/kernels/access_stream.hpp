/**
 * @file
 * GPU-style memory-access streams for the sparse kernels.
 *
 * The cache-simulation methodology (paper Sec. VI-B): replay the byte
 * addresses a kernel touches through an L2 model. Each kernel gets an
 * address-space layout placing its arrays in disjoint, line-aligned
 * regions; the region of the irregularly-accessed operand (the input
 * vector X, or the dense matrix B for SpMM) is recorded so the
 * performance model can split DRAM traffic into streaming and random
 * components.
 *
 * Access granularity: scalar 4-byte loads for all sparse-format arrays
 * and for X in SpMV (the kernels' actual load pattern); one access per
 * touched line for the contiguous K-element row segments of B and C in
 * SpMM (vectorized loads).
 *
 * The optional row window models GPU thread-level parallelism: W rows
 * are processed round-robin, interleaving their non-zero streams, the
 * way concurrent warps do. W=1 reproduces the sequential replay the
 * paper's simulator validated within 4% of hardware.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace slo::kernels
{

/** Sparse kernels whose locality the library models (Tables II/IV). */
enum class KernelKind
{
    SpmvCsr,
    SpmvCoo,
    SpmmCsr,
};

/** Disjoint, line-aligned base addresses for a kernel's arrays. */
struct AddressLayout
{
    std::uint64_t xBase = 0;   ///< input vector X / dense matrix B
    std::uint64_t xEnd = 0;
    std::uint64_t yBase = 0;   ///< output vector Y / dense matrix C
    std::uint64_t rowOffsetsBase = 0; ///< CSR only
    std::uint64_t rowIndicesBase = 0; ///< COO only
    std::uint64_t coordsBase = 0;     ///< column indices
    std::uint64_t valuesBase = 0;

    /** Is @p addr in the irregularly-accessed region (X/B)? */
    bool
    isIrregular(std::uint64_t addr) const
    {
        return addr >= xBase && addr < xEnd;
    }
};

/**
 * Build the layout for @p kind on an n x n matrix with @p nnz non-zeros.
 * @param dense_cols K for SpmmCsr (ignored otherwise)
 */
AddressLayout makeLayout(KernelKind kind, Index n, Offset nnz,
                         Index dense_cols, std::uint32_t line_bytes);

/** Options controlling stream generation. */
struct StreamOptions
{
    /** Rows processed round-robin concurrently (1 = sequential). */
    int rowWindow = 1;
    /** K for SpMM. */
    Index denseCols = 4;
};

/**
 * Replay the SpMV-CSR access stream (Algorithm 1) into @p sink, a
 * callable taking one byte address per access.
 */
template <typename Sink>
void
spmvCsrStream(const Csr &matrix, const AddressLayout &layout,
              const StreamOptions &options, Sink &&sink)
{
    const auto &offsets = matrix.rowOffsets();
    const auto &coords = matrix.colIndices();
    const Index n = matrix.numRows();
    const auto window = static_cast<Index>(
        options.rowWindow < 1 ? 1 : options.rowWindow);

    if (window == 1) {
        // Sequential replay: same emission order as the round-robin
        // loop below with a one-row block, minus its bookkeeping (no
        // per-block cursor allocation on this hot path).
        for (Index r = 0; r < n; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
            const Offset begin = offsets[static_cast<std::size_t>(r)];
            const Offset end =
                offsets[static_cast<std::size_t>(r) + 1];
            for (Offset i = begin; i < end; ++i) {
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.xBase +
                     static_cast<std::uint64_t>(
                         coords[static_cast<std::size_t>(i)]) *
                         kElemBytes);
            }
            if (end > begin) {
                // Row complete: the accumulated result is stored.
                sink(layout.yBase +
                     static_cast<std::uint64_t>(r) * kElemBytes);
            }
        }
        return;
    }

    std::vector<Offset> cursor(static_cast<std::size_t>(window));
    for (Index block = 0; block < n; block += window) {
        const Index block_end = std::min<Index>(block + window, n);
        // Row bounds load once per row (offsets r and r+1).
        for (Index r = block; r < block_end; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
        }
        // Round-robin over the rows of the block, one non-zero each.
        bool remaining = true;
        for (Index r = block; r < block_end; ++r) {
            cursor[static_cast<std::size_t>(r - block)] =
                offsets[static_cast<std::size_t>(r)];
        }
        while (remaining) {
            remaining = false;
            for (Index r = block; r < block_end; ++r) {
                auto &pos = cursor[static_cast<std::size_t>(r - block)];
                const Offset row_end =
                    offsets[static_cast<std::size_t>(r) + 1];
                if (pos >= row_end)
                    continue;
                const auto i = static_cast<std::size_t>(pos);
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.xBase +
                     static_cast<std::uint64_t>(coords[i]) * kElemBytes);
                ++pos;
                if (pos >= row_end) {
                    // Row complete: the accumulated result is stored.
                    sink(layout.yBase +
                         static_cast<std::uint64_t>(r) * kElemBytes);
                } else {
                    remaining = true;
                }
            }
        }
    }
}

/** Replay the SpMV-COO access stream (row-major sorted COO). */
template <typename Sink>
void
spmvCooStream(const Coo &matrix, const AddressLayout &layout,
              Sink &&sink)
{
    const auto &rows = matrix.rows();
    const auto &cols = matrix.cols();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        sink(layout.rowIndicesBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.coordsBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.valuesBase +
             static_cast<std::uint64_t>(i) * kElemBytes);
        sink(layout.xBase +
             static_cast<std::uint64_t>(cols[i]) * kElemBytes);
        // Atomic accumulation into Y[row] per non-zero.
        sink(layout.yBase +
             static_cast<std::uint64_t>(rows[i]) * kElemBytes);
    }
}

/** Replay the SpMM-CSR access stream (dense B/C rows as line loads). */
template <typename Sink>
void
spmmCsrStream(const Csr &matrix, const AddressLayout &layout,
              const StreamOptions &options, std::uint32_t line_bytes,
              Sink &&sink)
{
    const auto &coords = matrix.colIndices();
    const Index n = matrix.numRows();
    const auto k_bytes =
        static_cast<std::uint64_t>(options.denseCols) * kElemBytes;
    const auto window = static_cast<Index>(
        options.rowWindow < 1 ? 1 : options.rowWindow);

    auto emit_row_segment = [&](std::uint64_t base) {
        // One access per line the K-element segment touches.
        const std::uint64_t first = base;
        const std::uint64_t last = base + k_bytes - 1;
        for (std::uint64_t line = first / line_bytes;
             line <= last / line_bytes; ++line) {
            sink(line * line_bytes);
        }
    };

    if (window == 1) {
        // Sequential fast path; emission order identical to the
        // round-robin loop below with one-row blocks.
        for (Index r = 0; r < n; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
            const Offset begin =
                matrix.rowOffsets()[static_cast<std::size_t>(r)];
            const Offset end =
                matrix.rowOffsets()[static_cast<std::size_t>(r) + 1];
            for (Offset i = begin; i < end; ++i) {
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(i) * kElemBytes);
                emit_row_segment(layout.xBase +
                                 static_cast<std::uint64_t>(
                                     coords[static_cast<std::size_t>(
                                         i)]) *
                                     k_bytes);
            }
            if (end > begin) {
                emit_row_segment(layout.yBase +
                                 static_cast<std::uint64_t>(r) *
                                     k_bytes);
            }
        }
        return;
    }

    std::vector<Offset> cursor(static_cast<std::size_t>(window));
    for (Index block = 0; block < n; block += window) {
        const Index block_end = std::min<Index>(block + window, n);
        for (Index r = block; r < block_end; ++r) {
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r) * kElemBytes);
            sink(layout.rowOffsetsBase +
                 static_cast<std::uint64_t>(r + 1) * kElemBytes);
        }
        for (Index r = block; r < block_end; ++r) {
            cursor[static_cast<std::size_t>(r - block)] =
                matrix.rowOffsets()[static_cast<std::size_t>(r)];
        }
        bool remaining = true;
        while (remaining) {
            remaining = false;
            for (Index r = block; r < block_end; ++r) {
                auto &pos = cursor[static_cast<std::size_t>(r - block)];
                const Offset row_end =
                    matrix.rowOffsets()[static_cast<std::size_t>(r) + 1];
                if (pos >= row_end)
                    continue;
                const auto i = static_cast<std::size_t>(pos);
                sink(layout.coordsBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                sink(layout.valuesBase +
                     static_cast<std::uint64_t>(pos) * kElemBytes);
                emit_row_segment(layout.xBase +
                                 static_cast<std::uint64_t>(coords[i]) *
                                     k_bytes);
                ++pos;
                if (pos >= row_end) {
                    emit_row_segment(layout.yBase +
                                     static_cast<std::uint64_t>(r) *
                                         k_bytes);
                } else {
                    remaining = true;
                }
            }
        }
    }
}

/**
 * Replay @p kind's access stream into @p sink — the one entry point
 * the simulators consume (cache simulation fuses with generation; no
 * trace is ever materialized). @p sink is invoked once per byte
 * address, in kernel order; callers that want batches wrap @p sink in
 * a buffering adapter (gpu/sim_stream.hpp).
 *
 * SpmvCoo converts the matrix to row-major sorted COO per call; pass a
 * pre-built COO via the overload below when replaying more than once
 * (e.g. the two-pass Belady driver).
 */
template <typename Sink>
void
forEachAccess(KernelKind kind, const Csr &matrix,
              const AddressLayout &layout, const StreamOptions &options,
              std::uint32_t line_bytes, Sink &&sink)
{
    switch (kind) {
      case KernelKind::SpmvCsr:
        spmvCsrStream(matrix, layout, options, sink);
        break;
      case KernelKind::SpmvCoo: {
        const Coo coo = matrix.toCoo(); // row-major sorted
        spmvCooStream(coo, layout, sink);
        break;
      }
      case KernelKind::SpmmCsr:
        spmmCsrStream(matrix, layout, options, line_bytes, sink);
        break;
    }
}

/** As above with a caller-held COO (only read when kind == SpmvCoo). */
template <typename Sink>
void
forEachAccess(KernelKind kind, const Csr &matrix, const Coo &coo,
              const AddressLayout &layout, const StreamOptions &options,
              std::uint32_t line_bytes, Sink &&sink)
{
    if (kind == KernelKind::SpmvCoo) {
        spmvCooStream(coo, layout, sink);
        return;
    }
    forEachAccess(kind, matrix, layout, options, line_bytes, sink);
}

} // namespace slo::kernels
