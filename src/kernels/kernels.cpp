#include "kernels/kernels.hpp"

namespace slo::kernels
{

void
spmvCsr(const Csr &matrix, std::span<const Value> x, std::span<Value> y)
{
    require(x.size() == static_cast<std::size_t>(matrix.numCols()),
            "spmvCsr: x size mismatch");
    require(y.size() == static_cast<std::size_t>(matrix.numRows()),
            "spmvCsr: y size mismatch");
    const auto &offsets = matrix.rowOffsets();
    const auto &coords = matrix.colIndices();
    const auto &values = matrix.values();
    for (Index row = 0; row < matrix.numRows(); ++row) {
        const Offset row_start = offsets[static_cast<std::size_t>(row)];
        const Offset row_end = offsets[static_cast<std::size_t>(row) + 1];
        Value acc = 0.0f;
        for (Offset i = row_start; i < row_end; ++i) {
            const auto ii = static_cast<std::size_t>(i);
            acc += values[ii] * x[static_cast<std::size_t>(coords[ii])];
        }
        y[static_cast<std::size_t>(row)] = acc;
    }
}

std::vector<Value>
spmvCsr(const Csr &matrix, const std::vector<Value> &x)
{
    std::vector<Value> y(static_cast<std::size_t>(matrix.numRows()));
    spmvCsr(matrix, x, y);
    return y;
}

void
spmvCoo(const Coo &matrix, std::span<const Value> x, std::span<Value> y)
{
    require(x.size() == static_cast<std::size_t>(matrix.numCols()),
            "spmvCoo: x size mismatch");
    require(y.size() == static_cast<std::size_t>(matrix.numRows()),
            "spmvCoo: y size mismatch");
    const auto &rows = matrix.rows();
    const auto &cols = matrix.cols();
    const auto &vals = matrix.vals();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        y[static_cast<std::size_t>(rows[i])] +=
            vals[i] * x[static_cast<std::size_t>(cols[i])];
    }
}

void
spmmCsr(const Csr &matrix, std::span<const Value> b, Index dense_cols,
        std::span<Value> c)
{
    require(dense_cols > 0, "spmmCsr: dense_cols must be positive");
    require(b.size() == static_cast<std::size_t>(matrix.numCols()) *
                            static_cast<std::size_t>(dense_cols),
            "spmmCsr: B size mismatch");
    require(c.size() == static_cast<std::size_t>(matrix.numRows()) *
                            static_cast<std::size_t>(dense_cols),
            "spmmCsr: C size mismatch");
    const auto k = static_cast<std::size_t>(dense_cols);
    for (Index row = 0; row < matrix.numRows(); ++row) {
        Value *const c_row = c.data() + static_cast<std::size_t>(row) * k;
        auto idx = matrix.rowIndices(row);
        auto val = matrix.rowValues(row);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            const Value *const b_row =
                b.data() + static_cast<std::size_t>(idx[i]) * k;
            const Value a = val[i];
            for (std::size_t j = 0; j < k; ++j)
                c_row[j] += a * b_row[j];
        }
    }
}

std::vector<Value>
permuteVector(std::span<const Value> x, const Permutation &perm)
{
    require(x.size() == static_cast<std::size_t>(perm.size()),
            "permuteVector: size mismatch");
    std::vector<Value> result(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        result[static_cast<std::size_t>(
            perm.newId(static_cast<Index>(i)))] = x[i];
    }
    return result;
}

std::vector<Value>
unpermuteVector(std::span<const Value> y, const Permutation &perm)
{
    require(y.size() == static_cast<std::size_t>(perm.size()),
            "unpermuteVector: size mismatch");
    std::vector<Value> result(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
        result[i] = y[static_cast<std::size_t>(
            perm.newId(static_cast<Index>(i)))];
    }
    return result;
}

} // namespace slo::kernels
