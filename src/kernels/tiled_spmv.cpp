#include "kernels/tiled_spmv.hpp"

#include <algorithm>

namespace slo::kernels
{

TiledCsr::TiledCsr(const Csr &matrix, Index tile_cols)
    : numRows_(matrix.numRows()), numCols_(matrix.numCols()),
      tileCols_(tile_cols)
{
    require(tile_cols > 0, "TiledCsr: tile width must be positive");
    const Index num_tiles =
        (numCols_ + tile_cols - 1) / std::max<Index>(tile_cols, 1);
    tiles_.reserve(static_cast<std::size_t>(std::max<Index>(
        num_tiles, 1)));

    for (Index t = 0; t < std::max<Index>(num_tiles, 1); ++t) {
        const Index lo = t * tile_cols;
        const Index hi = std::min<Index>(lo + tile_cols, numCols_);
        // Build the strip: entries with lo <= col < hi, columns
        // rebased to the strip (so each strip's X window starts at 0).
        Coo coo(numRows_, std::max<Index>(hi - lo, 1));
        for (Index r = 0; r < numRows_; ++r) {
            auto idx = matrix.rowIndices(r);
            auto val = matrix.rowValues(r);
            // Rows are sorted: binary search the strip's range.
            const auto begin = std::lower_bound(idx.begin(), idx.end(),
                                                lo) -
                               idx.begin();
            const auto end =
                std::lower_bound(idx.begin(), idx.end(), hi) -
                idx.begin();
            for (auto i = begin; i != end; ++i) {
                coo.add(r, idx[static_cast<std::size_t>(i)] - lo,
                        val[static_cast<std::size_t>(i)]);
            }
        }
        tiles_.push_back(Csr::fromCoo(coo, DuplicatePolicy::Keep));
    }
}

Offset
TiledCsr::numNonZeros() const
{
    Offset total = 0;
    for (const Csr &tile : tiles_)
        total += tile.numNonZeros();
    return total;
}

void
TiledCsr::spmv(std::span<const Value> x, std::span<Value> y) const
{
    require(x.size() == static_cast<std::size_t>(numCols_),
            "TiledCsr::spmv: x size mismatch");
    require(y.size() == static_cast<std::size_t>(numRows_),
            "TiledCsr::spmv: y size mismatch");
    for (Index t = 0; t < numTiles(); ++t) {
        const Csr &tile = tiles_[static_cast<std::size_t>(t)];
        const auto x_base =
            static_cast<std::size_t>(t) *
            static_cast<std::size_t>(tileCols_);
        for (Index r = 0; r < numRows_; ++r) {
            auto idx = tile.rowIndices(r);
            auto val = tile.rowValues(r);
            Value acc = 0.0f;
            for (std::size_t i = 0; i < idx.size(); ++i) {
                acc += val[i] *
                       x[x_base + static_cast<std::size_t>(idx[i])];
            }
            y[static_cast<std::size_t>(r)] += acc;
        }
    }
}

} // namespace slo::kernels
