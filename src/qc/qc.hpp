/**
 * @file
 * Umbrella header for the qc property-testing subsystem.
 *
 * See CONTRIBUTING.md ("Testing guide") for how to write a property,
 * reproduce a failure from its printed seed, and interpret
 * `slo.qc-counterexample/1` reports.
 */

#pragma once

#include "qc/gen.hpp"      // IWYU pragma: export
#include "qc/oracles.hpp"  // IWYU pragma: export
#include "qc/property.hpp" // IWYU pragma: export
