#include "qc/gen.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/generators.hpp"
#include "matrix/types.hpp"

namespace slo::qc
{

namespace
{

/** Family generators need a few nodes (barabasiAlbert requires > 2). */
constexpr Index kFamilyMinRows = 3;

Index
clampIndex(Index value, Index lo, Index hi)
{
    return std::max(lo, std::min(hi, value));
}

/** Expand a non-Raw spec through the matching gen:: family. */
Csr
buildFamily(const CsrSpec &spec)
{
    const Index n = spec.rows;
    require(n >= kFamilyMinRows,
            "qc::build: family kinds need rows >= 3");
    Csr pattern;
    switch (spec.kind) {
      case MatrixKind::Random:
        pattern = gen::erdosRenyi(n, spec.avgDegree, spec.seed);
        break;
      case MatrixKind::Banded: {
        const Index hb = clampIndex(spec.halfBandwidth, 1, n - 1);
        const double fill = std::clamp(
            spec.avgDegree / (2.0 * static_cast<double>(hb)), 0.05,
            1.0);
        pattern = gen::banded(n, hb, fill, spec.seed);
        break;
      }
      case MatrixKind::PowerLaw: {
        const auto edges = static_cast<Index>(
            std::llround(spec.avgDegree / 2.0));
        pattern = gen::barabasiAlbert(n, clampIndex(edges, 1, n - 1),
                                      spec.seed);
        break;
      }
      case MatrixKind::BlockCommunity: {
        const Index k = clampIndex(spec.communities, 1, n);
        const double inter = std::clamp(spec.interFraction, 0.0, 1.0);
        pattern = gen::plantedPartition(n, k,
                                        spec.avgDegree * (1.0 - inter),
                                        spec.avgDegree * inter,
                                        spec.seed);
        break;
      }
      case MatrixKind::Raw:
        fatal("qc::buildFamily: Raw is not a family kind");
    }
    return gen::withRandomValues(pattern,
                                 spec.seed ^ 0x9e3779b97f4a7c15ULL);
}

} // namespace

const char *
matrixKindName(MatrixKind kind)
{
    switch (kind) {
      case MatrixKind::Raw: return "raw";
      case MatrixKind::Random: return "random";
      case MatrixKind::Banded: return "banded";
      case MatrixKind::PowerLaw: return "power-law";
      case MatrixKind::BlockCommunity: return "block-community";
    }
    return "unknown";
}

CsrSpec
arbitraryCsrSpec(Rng &rng, const SpecBounds &bounds)
{
    CsrSpec spec;
    const int kind_lo = bounds.familiesOnly ? 1 : 0;
    const int kind_hi = bounds.rawOnly ? 0 : 4;
    spec.kind =
        static_cast<MatrixKind>(rng.between(kind_lo, kind_hi));

    if (spec.kind == MatrixKind::Raw) {
        const Index min_rows = bounds.allowEmpty ? 0 : 1;
        spec.rows = static_cast<Index>(
            rng.between(min_rows, std::max(min_rows, bounds.maxRows)));
        spec.cols = bounds.squareOnly
                        ? spec.rows
                        : static_cast<Index>(rng.between(
                              min_rows,
                              std::max(min_rows, bounds.maxRows)));
        spec.selfLoops = bounds.allowSelfLoops && rng.chance(0.3);
        spec.duplicates = rng.chance(0.25);
    } else {
        spec.rows = static_cast<Index>(rng.between(
            kFamilyMinRows, std::max(kFamilyMinRows, bounds.maxRows)));
        spec.cols = spec.rows;
        spec.halfBandwidth = static_cast<Index>(
            rng.between(1, std::max<Index>(1, spec.rows / 4)));
        spec.communities = static_cast<Index>(
            rng.between(1, std::max<Index>(1, spec.rows / 8)));
        spec.interFraction = rng.uniform() * 0.5;
    }
    spec.avgDegree = rng.uniform() * bounds.maxAvgDegree;
    spec.seed = rng.next();
    return spec;
}

Coo
buildCoo(const CsrSpec &spec)
{
    require(spec.kind == MatrixKind::Raw,
            "qc::buildCoo: only Raw specs expand to COO directly");
    require(spec.selfLoopFraction == 0.0 || spec.rows == spec.cols,
            "qc::buildCoo: selfLoopFraction needs a square shape");
    Rng rng(spec.seed);
    Coo coo(spec.rows, spec.cols);
    if (spec.rows == 0 || spec.cols == 0)
        return coo;
    const auto target = static_cast<Offset>(std::llround(
        spec.avgDegree * static_cast<double>(spec.rows)));
    coo.reserve(target);
    for (Offset e = 0; e < target; ++e) {
        auto row = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(spec.rows)));
        auto col = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(spec.cols)));
        if (rng.chance(spec.selfLoopFraction))
            col = row;
        if (!spec.selfLoops && spec.selfLoopFraction == 0.0 &&
            row == col) {
            if (spec.cols < 2)
                continue;
            col = (col + 1) % spec.cols;
        }
        const auto value =
            static_cast<Value>(1.0 - rng.uniform()); // (0, 1]
        coo.add(row, col, value);
        if (spec.duplicates && rng.chance(0.2))
            coo.add(row, col, value);
    }
    return coo;
}

Csr
build(const CsrSpec &spec)
{
    if (spec.kind == MatrixKind::Raw)
        return Csr::fromCoo(buildCoo(spec), DuplicatePolicy::Sum);
    return buildFamily(spec);
}

std::function<std::vector<CsrSpec>(const CsrSpec &)>
csrSpecShrinker(const SpecBounds &bounds)
{
    return [bounds](const CsrSpec &spec) {
        std::vector<CsrSpec> out;
        const bool raw = spec.kind == MatrixKind::Raw;
        const Index floor =
            raw ? (bounds.allowEmpty ? 0 : 1) : kFamilyMinRows;

        // Simplify the kind first: a Raw repro is easier to read than
        // a family one (unless the property only accepts families).
        if (!raw && !bounds.familiesOnly) {
            CsrSpec simpler = spec;
            simpler.kind = MatrixKind::Raw;
            out.push_back(simpler);
        }

        auto with_rows = [&](Index rows) {
            CsrSpec smaller = spec;
            smaller.rows = rows;
            if (!raw || bounds.squareOnly || spec.rows == spec.cols)
                smaller.cols = rows;
            out.push_back(smaller);
        };
        if (spec.rows > floor) {
            with_rows(floor);
            if (spec.rows / 2 > floor)
                with_rows(spec.rows / 2);
            with_rows(spec.rows - 1);
        }
        if (raw && !bounds.squareOnly && spec.cols > floor &&
            spec.cols != spec.rows) {
            CsrSpec narrower = spec;
            narrower.cols = std::max(floor, spec.cols / 2);
            out.push_back(narrower);
        }

        if (spec.avgDegree > 0.0) {
            CsrSpec sparser = spec;
            sparser.avgDegree = 0.0;
            out.push_back(sparser);
            sparser.avgDegree = spec.avgDegree / 2.0;
            out.push_back(sparser);
        }

        auto drop_flag = [&](auto member, auto off_value) {
            if (spec.*member != off_value) {
                CsrSpec plainer = spec;
                plainer.*member = off_value;
                out.push_back(plainer);
            }
        };
        drop_flag(&CsrSpec::selfLoops, false);
        drop_flag(&CsrSpec::duplicates, false);
        drop_flag(&CsrSpec::selfLoopFraction, 0.0);
        if (spec.halfBandwidth > 1)
            drop_flag(&CsrSpec::halfBandwidth, Index{1});
        if (spec.communities > 1)
            drop_flag(&CsrSpec::communities, Index{1});
        return out;
    };
}

obs::Json
describeCsrSpec(const CsrSpec &spec)
{
    obs::Json out = obs::Json::object();
    out["kind"] = matrixKindName(spec.kind);
    out["rows"] = spec.rows;
    out["cols"] = spec.cols;
    out["avg_degree"] = spec.avgDegree;
    if (spec.kind == MatrixKind::Banded)
        out["half_bandwidth"] = spec.halfBandwidth;
    if (spec.kind == MatrixKind::BlockCommunity) {
        out["communities"] = spec.communities;
        out["inter_fraction"] = spec.interFraction;
    }
    if (spec.selfLoops)
        out["self_loops"] = true;
    if (spec.selfLoopFraction > 0.0)
        out["self_loop_fraction"] = spec.selfLoopFraction;
    if (spec.duplicates)
        out["duplicates"] = true;
    out["seed"] = spec.seed;
    return out;
}

obs::Json
describeBounds(const SpecBounds &bounds)
{
    obs::Json out = obs::Json::object();
    out["max_rows"] = bounds.maxRows;
    out["max_avg_degree"] = bounds.maxAvgDegree;
    out["square_only"] = bounds.squareOnly;
    out["allow_empty"] = bounds.allowEmpty;
    out["raw_only"] = bounds.rawOnly;
    out["families_only"] = bounds.familiesOnly;
    out["allow_self_loops"] = bounds.allowSelfLoops;
    return out;
}

Permutation
arbitraryPermutation(Rng &rng, Index n)
{
    return Permutation::random(n, rng.next());
}

community::Clustering
arbitraryClustering(Rng &rng, Index n)
{
    std::vector<Index> labels(static_cast<std::size_t>(n));
    if (n > 0) {
        const auto k = static_cast<std::uint64_t>(rng.between(1, n));
        for (Index v = 0; v < n; ++v)
            labels[static_cast<std::size_t>(v)] =
                static_cast<Index>(rng.below(k));
    }
    return community::Clustering(std::move(labels));
}

community::Dendrogram
arbitraryDendrogram(Rng &rng, Index n)
{
    community::Dendrogram dendrogram(n);
    if (n < 2)
        return dendrogram;
    // Visit vertices in a random order; each may merge (as a root,
    // since it was not visited before) under any earlier vertex —
    // earlier vertices are roots or already merged, so every merge is
    // valid by construction.
    const Permutation shuffle = arbitraryPermutation(rng, n);
    const std::vector<Index> order = shuffle.inverse().newIds();
    for (Index i = 1; i < n; ++i) {
        if (!rng.chance(0.7))
            continue;
        const Index child = order[static_cast<std::size_t>(i)];
        const Index parent = order[static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(i)))];
        dendrogram.merge(child, parent);
    }
    return dendrogram;
}

CacheCase
arbitraryCacheCase(Rng &rng, bool allow_sectored)
{
    CacheCase value;
    cache::CacheConfig &config = value.config;
    config.lineBytes = 1u << rng.between(4, 7); // 16..128 B
    config.ways = 1u << rng.between(0, 3);      // 1..8
    const auto sets = static_cast<std::uint64_t>(rng.between(1, 24));
    config.capacityBytes = static_cast<std::uint64_t>(config.lineBytes) *
                           config.ways * sets;
    config.sectorBytes = 0;
    if (allow_sectored && config.lineBytes >= 32 && rng.chance(0.4)) {
        // 2 or 4 sectors per line, always a power of two >= 8 B.
        config.sectorBytes =
            config.lineBytes / (1u << rng.between(1, 2));
    }

    // Size the address space past the capacity so evictions (and with
    // them dead-line and LRU-order behaviour) actually happen.
    value.trace.addressSpace = std::max<std::uint64_t>(
        256, config.capacityBytes *
                 static_cast<std::uint64_t>(rng.between(1, 6)));
    value.trace.length = static_cast<int>(rng.between(0, 1500));
    value.trace.jumpProbability = rng.uniform();
    value.trace.seed = rng.next();
    return value;
}

std::vector<std::uint64_t>
buildTrace(const TraceSpec &spec)
{
    Rng rng(spec.seed);
    std::vector<std::uint64_t> trace;
    trace.reserve(static_cast<std::size_t>(std::max(spec.length, 0)));
    std::uint64_t addr = 0;
    for (int i = 0; i < spec.length; ++i) {
        if (i == 0 || rng.chance(spec.jumpProbability))
            addr = rng.below(spec.addressSpace);
        else
            addr = (addr + 4) % spec.addressSpace;
        trace.push_back(addr);
    }
    return trace;
}

std::vector<CacheCase>
shrinkCacheCase(const CacheCase &value)
{
    std::vector<CacheCase> out;
    auto with_length = [&](int length) {
        CacheCase shorter = value;
        shorter.trace.length = length;
        out.push_back(shorter);
    };
    if (value.trace.length > 0) {
        with_length(0);
        if (value.trace.length > 1)
            with_length(value.trace.length / 2);
        with_length(value.trace.length - 1);
    }
    if (value.trace.jumpProbability > 0.0) {
        CacheCase straighter = value;
        straighter.trace.jumpProbability = 0.0;
        out.push_back(straighter);
    }
    if (value.trace.addressSpace > 256) {
        CacheCase denser = value;
        denser.trace.addressSpace =
            std::max<std::uint64_t>(256, value.trace.addressSpace / 2);
        out.push_back(denser);
    }
    return out;
}

obs::Json
describeCacheCase(const CacheCase &value)
{
    obs::Json config = obs::Json::object();
    config["capacity_bytes"] = value.config.capacityBytes;
    config["line_bytes"] = value.config.lineBytes;
    config["ways"] = value.config.ways;
    config["sector_bytes"] = value.config.sectorBytes;
    obs::Json trace = obs::Json::object();
    trace["length"] = value.trace.length;
    trace["address_space"] = value.trace.addressSpace;
    trace["jump_probability"] = value.trace.jumpProbability;
    trace["seed"] = value.trace.seed;
    obs::Json out = obs::Json::object();
    out["config"] = std::move(config);
    out["trace"] = std::move(trace);
    return out;
}

} // namespace slo::qc
