#include "qc/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>

#include "matrix/types.hpp"

namespace slo::qc
{

std::vector<double>
referenceSpmv(const Csr &matrix, std::span<const Value> x)
{
    require(static_cast<Index>(x.size()) == matrix.numCols(),
            "referenceSpmv: x size mismatch");
    std::vector<double> y(static_cast<std::size_t>(matrix.numRows()),
                          0.0);
    for (Index r = 0; r < matrix.numRows(); ++r) {
        const auto cols = matrix.rowIndices(r);
        const auto vals = matrix.rowValues(r);
        double sum = 0.0;
        for (std::size_t i = 0; i < cols.size(); ++i) {
            sum += static_cast<double>(vals[i]) *
                   static_cast<double>(
                       x[static_cast<std::size_t>(cols[i])]);
        }
        y[static_cast<std::size_t>(r)] = sum;
    }
    return y;
}

std::vector<double>
referenceSpmm(const Csr &matrix, std::span<const Value> b,
              Index dense_cols)
{
    require(dense_cols > 0, "referenceSpmm: dense_cols must be > 0");
    require(static_cast<Offset>(b.size()) ==
                static_cast<Offset>(matrix.numCols()) * dense_cols,
            "referenceSpmm: B size mismatch");
    std::vector<double> c(static_cast<std::size_t>(matrix.numRows()) *
                              static_cast<std::size_t>(dense_cols),
                          0.0);
    for (Index r = 0; r < matrix.numRows(); ++r) {
        const auto cols = matrix.rowIndices(r);
        const auto vals = matrix.rowValues(r);
        double *row = c.data() + static_cast<std::size_t>(r) *
                                     static_cast<std::size_t>(dense_cols);
        for (std::size_t i = 0; i < cols.size(); ++i) {
            const double a = static_cast<double>(vals[i]);
            const Value *brow =
                b.data() + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(dense_cols);
            for (Index k = 0; k < dense_cols; ++k)
                row[k] += a * static_cast<double>(brow[k]);
        }
    }
    return c;
}

std::vector<std::vector<std::pair<Index, double>>>
referenceSpgemm(const Csr &a, const Csr &b)
{
    require(a.numCols() == b.numRows(),
            "referenceSpgemm: inner dimensions differ");
    std::vector<std::vector<std::pair<Index, double>>> rows(
        static_cast<std::size_t>(a.numRows()));
    for (Index r = 0; r < a.numRows(); ++r) {
        std::map<Index, double> acc;
        const auto a_cols = a.rowIndices(r);
        const auto a_vals = a.rowValues(r);
        for (std::size_t i = 0; i < a_cols.size(); ++i) {
            const double av = static_cast<double>(a_vals[i]);
            const auto b_cols = b.rowIndices(a_cols[i]);
            const auto b_vals = b.rowValues(a_cols[i]);
            for (std::size_t t = 0; t < b_cols.size(); ++t)
                acc[b_cols[t]] += av * static_cast<double>(b_vals[t]);
        }
        auto &row = rows[static_cast<std::size_t>(r)];
        row.assign(acc.begin(), acc.end()); // sorted by column
    }
    return rows;
}

bool
spgemmNearlyEqual(
    const Csr &got,
    const std::vector<std::vector<std::pair<Index, double>>> &want,
    double tolerance, std::string *message)
{
    auto complain = [&](const std::string &text) {
        if (message != nullptr)
            *message = text;
        return false;
    };
    if (static_cast<std::size_t>(got.numRows()) != want.size()) {
        std::ostringstream out;
        out << "row count mismatch: got " << got.numRows() << ", want "
            << want.size();
        return complain(out.str());
    }
    for (Index r = 0; r < got.numRows(); ++r) {
        const auto cols = got.rowIndices(r);
        const auto vals = got.rowValues(r);
        const auto &ref = want[static_cast<std::size_t>(r)];
        if (cols.size() != ref.size()) {
            std::ostringstream out;
            out << "row " << r << " nnz mismatch: got " << cols.size()
                << ", want " << ref.size();
            return complain(out.str());
        }
        for (std::size_t i = 0; i < cols.size(); ++i) {
            if (cols[i] != ref[i].first) {
                std::ostringstream out;
                out << "row " << r << " entry " << i
                    << " column mismatch: got " << cols[i] << ", want "
                    << ref[i].first;
                return complain(out.str());
            }
            const double wanted = ref[i].second;
            const double diff = std::abs(
                static_cast<double>(vals[i]) - wanted);
            if (diff > tolerance * std::max(1.0, std::abs(wanted))) {
                std::ostringstream out;
                out << "row " << r << " entry " << i << " (col "
                    << cols[i] << "): got " << vals[i] << ", want "
                    << wanted << ", |diff| " << diff;
                return complain(out.str());
            }
        }
    }
    return true;
}

bool
nearlyEqual(std::span<const Value> got, std::span<const double> want,
            double tolerance, std::string *message)
{
    if (got.size() != want.size()) {
        if (message != nullptr) {
            std::ostringstream out;
            out << "size mismatch: got " << got.size() << ", want "
                << want.size();
            *message = out.str();
        }
        return false;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
        const double diff =
            std::abs(static_cast<double>(got[i]) - want[i]);
        const double bound =
            tolerance * std::max(1.0, std::abs(want[i]));
        if (!(diff <= bound)) { // NaN-proof: NaN fails every compare
            if (message != nullptr) {
                std::ostringstream out;
                out << "element " << i << ": got " << got[i]
                    << ", want " << want[i] << " (|diff| " << diff
                    << " > " << bound << ")";
                *message = out.str();
            }
            return false;
        }
    }
    return true;
}

namespace
{

/** Row r's columns as a plain vector (storage order). */
std::vector<Index>
rowCols(const Csr &matrix, Index r)
{
    const auto span = matrix.rowIndices(r);
    return {span.begin(), span.end()};
}

/** Naive adjacency test: scan r's columns for c. */
bool
hasEdge(const Csr &matrix, Index r, Index c)
{
    for (const Index col : matrix.rowIndices(r)) {
        if (col == c)
            return true;
    }
    return false;
}

} // namespace

double
referenceWindowLocalityScore(const Csr &matrix, int window)
{
    require(window >= 1, "referenceWindowLocalityScore: bad window");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    double score = 0.0;
    for (Index v = 0; v < matrix.numRows(); ++v) {
        const std::vector<Index> nv = rowCols(matrix, v);
        const Index first =
            std::max(Index{0}, v - static_cast<Index>(window));
        for (Index u = first; u < v; ++u) {
            // Shared neighbours by quadratic membership scan (the
            // production code merges sorted rows instead).
            for (const Index c : rowCols(matrix, u)) {
                if (std::find(nv.begin(), nv.end(), c) != nv.end())
                    score += 1.0;
            }
            if (hasEdge(matrix, u, v) || hasEdge(matrix, v, u))
                score += 1.0;
        }
    }
    return score / static_cast<double>(matrix.numNonZeros());
}

double
referenceAverageGapLines(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "referenceAverageGapLines: bad elems_per_line");
    if (matrix.numNonZeros() == 0)
        return 0.0;
    double total = 0.0;
    const Coo coo = matrix.toCoo();
    for (Offset i = 0; i < coo.numEntries(); ++i) {
        const auto entry = coo.at(i);
        total += std::abs(static_cast<double>(entry.row) -
                          static_cast<double>(entry.col));
    }
    // Same division sequence as the production code so results agree
    // to the last bit.
    return total / static_cast<double>(matrix.numNonZeros()) /
           static_cast<double>(elems_per_line);
}

double
referenceSameLineFraction(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "referenceSameLineFraction: bad elems_per_line");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    Offset same = 0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        const std::vector<Index> cols = rowCols(matrix, r);
        for (std::size_t i = 1; i < cols.size(); ++i) {
            if (cols[i] / elems_per_line == cols[i - 1] / elems_per_line)
                ++same;
        }
    }
    return static_cast<double>(same) / static_cast<double>(nnz);
}

double
referenceDistinctLinesPerNonZero(const Csr &matrix, int elems_per_line)
{
    require(elems_per_line >= 1,
            "referenceDistinctLinesPerNonZero: bad elems_per_line");
    const Offset nnz = matrix.numNonZeros();
    if (nnz == 0)
        return 0.0;
    Offset distinct = 0;
    for (Index r = 0; r < matrix.numRows(); ++r) {
        std::vector<Index> lines = rowCols(matrix, r);
        for (Index &line : lines)
            line /= elems_per_line;
        std::sort(lines.begin(), lines.end());
        distinct += static_cast<Offset>(
            std::unique(lines.begin(), lines.end()) - lines.begin());
    }
    return static_cast<double>(distinct) / static_cast<double>(nnz);
}

cache::CacheStats
referenceLru(const std::vector<std::uint64_t> &trace,
             const cache::CacheConfig &config, std::uint64_t irregular_lo,
             std::uint64_t irregular_hi)
{
    config.validate();
    struct Line
    {
        std::uint64_t lastUse = 0;
        std::uint32_t sectorMask = 0;
        bool reused = false;
    };
    const std::uint64_t num_sets = config.numSets();
    const bool sectored = config.sectorBytes != 0;
    const std::uint64_t fill_bytes =
        sectored ? config.sectorBytes : config.lineBytes;
    // One ordered map of resident lines per set; smallness over speed.
    std::vector<std::map<std::uint64_t, Line>> sets(
        static_cast<std::size_t>(num_sets));

    cache::CacheStats stats;
    std::uint64_t clock = 0;
    for (const std::uint64_t addr : trace) {
        const std::uint64_t line = addr / config.lineBytes;
        auto &resident = sets[static_cast<std::size_t>(line % num_sets)];
        const std::uint32_t sector_bit =
            sectored ? (1u << ((addr % config.lineBytes) /
                               config.sectorBytes))
                     : 1u;
        const bool irregular =
            addr >= irregular_lo && addr < irregular_hi;
        ++stats.accesses;
        ++clock;

        const auto found = resident.find(line);
        if (found != resident.end()) {
            found->second.lastUse = clock;
            if ((found->second.sectorMask & sector_bit) != 0) {
                found->second.reused = true;
                ++stats.hits;
                continue;
            }
            // Sector miss on a resident line: fill just the sector.
            found->second.sectorMask |= sector_bit;
            ++stats.misses;
            stats.fillBytes += fill_bytes;
            if (irregular) {
                ++stats.irregularMisses;
                stats.irregularFillBytes += fill_bytes;
            }
            continue;
        }

        ++stats.misses;
        ++stats.linesFilled;
        stats.fillBytes += fill_bytes;
        if (irregular) {
            ++stats.irregularMisses;
            stats.irregularFillBytes += fill_bytes;
        }
        if (resident.size() == config.ways) {
            auto victim = resident.begin();
            for (auto it = resident.begin(); it != resident.end(); ++it) {
                if (it->second.lastUse < victim->second.lastUse)
                    victim = it;
            }
            ++stats.evictions;
            if (!victim->second.reused)
                ++stats.deadLines;
            resident.erase(victim);
        }
        resident.emplace(line, Line{clock, sector_bit, false});
    }

    for (const auto &resident : sets) {
        for (const auto &[line, state] : resident) {
            if (!state.reused)
                ++stats.deadLines;
        }
    }
    return stats;
}

bool
statsEqual(const cache::CacheStats &a, const cache::CacheStats &b,
           std::string *message)
{
    const struct
    {
        const char *name;
        std::uint64_t lhs;
        std::uint64_t rhs;
    } fields[] = {
        {"accesses", a.accesses, b.accesses},
        {"hits", a.hits, b.hits},
        {"misses", a.misses, b.misses},
        {"evictions", a.evictions, b.evictions},
        {"linesFilled", a.linesFilled, b.linesFilled},
        {"deadLines", a.deadLines, b.deadLines},
        {"irregularMisses", a.irregularMisses, b.irregularMisses},
        {"fillBytes", a.fillBytes, b.fillBytes},
        {"irregularFillBytes", a.irregularFillBytes,
         b.irregularFillBytes},
    };
    for (const auto &field : fields) {
        if (field.lhs != field.rhs) {
            if (message != nullptr) {
                std::ostringstream out;
                out << field.name << ": " << field.lhs
                    << " != " << field.rhs;
                *message = out.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace slo::qc
