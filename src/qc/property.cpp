#include "qc/property.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace slo::qc
{

namespace
{

/** Where the counterexample JSON report goes, or "" for nowhere. */
std::string
reportPath()
{
    const char *report = std::getenv("SLO_QC_REPORT");
    if (report != nullptr && *report != '\0')
        return report;
    const char *dir = std::getenv("SLO_OBS_DIR");
    if (dir != nullptr && *dir != '\0')
        return std::string(dir) + "/qc_counterexample.json";
    return {};
}

Config
parseEnvConfig()
{
    Config config;
    if (const char *env = std::getenv("SLO_QC_SEED");
        env != nullptr && *env != '\0') {
        config.seed = std::strtoull(env, nullptr, 0);
    }
    if (const char *env = std::getenv("SLO_QC_CASES");
        env != nullptr && *env != '\0') {
        const int cases = std::atoi(env);
        if (cases > 0)
            config.cases = cases;
    }
    return config;
}

std::mutex &
manifestMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** The manifest's "qc" node under construction (guarded by above). */
obs::Json &
manifestNode()
{
    static obs::Json node = obs::Json::object();
    return node;
}

/** Re-publish the qc node into the process run manifest. */
void
publishLocked()
{
    obs::RunManifest &manifest = obs::RunManifest::instance();
    if (!manifest.began())
        manifest.begin("qc");
    manifest.set("qc", manifestNode());
}

} // namespace

Config
configFromEnv()
{
    // Re-read every call: cheap, and tests legitimately flip
    // SLO_QC_SEED/SLO_QC_CASES mid-process.
    return parseEnvConfig();
}

std::string
Outcome::summary() const
{
    std::ostringstream out;
    if (ok) {
        out << "property '" << property << "' held for " << cases
            << " cases (seed " << seed << ")";
        return out.str();
    }
    out << "property '" << property << "' FALSIFIED\n"
        << "  case " << failedCase << " of " << cases << ", run seed "
        << seed << " (rerun: SLO_QC_SEED=" << seed << "), case seed "
        << failingCaseSeed << "\n"
        << "  minimal counterexample after " << shrinkSteps
        << " shrink(s): " << counterexample << "\n"
        << "  failure: " << (message.empty() ? "(none)" : message);
    return out.str();
}

namespace detail
{

std::uint64_t
hashName(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
caseSeed(std::uint64_t run_seed, std::string_view name, int index)
{
    // splitmix64 walk from (seed ^ name-hash); index+1 steps so case 0
    // does not reproduce the raw run seed.
    std::uint64_t state = run_seed ^ hashName(name);
    std::uint64_t out = 0;
    for (int i = 0; i <= index; ++i)
        out = splitmix64(state);
    return out;
}

void
announce(const std::string &property, const Config &config,
         const obs::Json &parameters)
{
    // The seed banner is the contract: every qc run must be
    // reproducible from its test log alone.
    std::printf("[qc] %s seed=%llu cases=%d\n", property.c_str(),
                static_cast<unsigned long long>(config.seed),
                config.cases);
    std::fflush(stdout);

    const std::lock_guard<std::mutex> lock(manifestMutex());
    obs::Json entry = obs::Json::object();
    entry["seed"] = config.seed;
    entry["cases"] = config.cases;
    if (!parameters.isNull())
        entry["parameters"] = parameters;
    manifestNode()["seed"] = configFromEnv().seed;
    manifestNode()["properties"][property] = std::move(entry);
    publishLocked();
}

void
emitFailure(const Outcome &outcome, const obs::Json &counterexample)
{
    obs::counter("qc.counterexamples").add();
    SLO_LOG_ERROR("qc", outcome.summary());

    obs::Json report = obs::Json::object();
    report["schema"] = "slo.qc-counterexample/1";
    report["property"] = outcome.property;
    report["seed"] = outcome.seed;
    report["case"] = outcome.failedCase;
    report["cases"] = outcome.cases;
    report["case_seed"] = outcome.failingCaseSeed;
    report["shrink_steps"] = outcome.shrinkSteps;
    report["message"] = outcome.message;
    report["counterexample"] = counterexample;
    obs::Json repro = obs::Json::object();
    repro["SLO_QC_SEED"] = std::to_string(outcome.seed);
    report["repro_env"] = std::move(repro);

    if (const std::string path = reportPath(); !path.empty()) {
        std::ofstream out(path);
        if (out)
            out << report.dump(2) << '\n';
    }

    const std::lock_guard<std::mutex> lock(manifestMutex());
    manifestNode()["counterexamples"].push(std::move(report));
    publishLocked();
}

} // namespace detail

} // namespace slo::qc
