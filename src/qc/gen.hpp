/**
 * @file
 * Seeded generators for sparse structures, with shrinking.
 *
 * Generators follow a *spec* pattern: an arbitrary* function draws a
 * small plain-data spec from an Rng, build* expands the spec into the
 * real structure (Csr/Coo/trace), and a shrinker proposes strictly
 * simpler specs. Shrinking specs instead of structures keeps
 * counterexamples reproducible (the spec embeds its own seed) and
 * trivially serializable into `slo.qc-counterexample/1` reports.
 *
 * Matrix specs span the repo's generator families (random, banded,
 * power-law, block-community) plus a Raw kind that covers everything
 * the family generators deliberately exclude: rectangular shapes, self
 * loops, duplicate coordinates, empty matrices and all-empty rows.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache.hpp"
#include "community/clustering.hpp"
#include "community/dendrogram.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"
#include "matrix/rng.hpp"
#include "obs/json.hpp"

namespace slo::qc
{

/** Structural family of a generated matrix. */
enum class MatrixKind
{
    Raw,            ///< uniform COO draws; may be rectangular/self-loop
    Random,         ///< gen::erdosRenyi
    Banded,         ///< gen::banded
    PowerLaw,       ///< gen::barabasiAlbert
    BlockCommunity, ///< gen::plantedPartition
};

/** Stable display name of @p kind. */
const char *matrixKindName(MatrixKind kind);

/** A reproducible recipe for one generated matrix. */
struct CsrSpec
{
    MatrixKind kind = MatrixKind::Raw;
    Index rows = 0;
    Index cols = 0;            ///< == rows for all non-Raw kinds
    double avgDegree = 0.0;    ///< target mean non-zeros per row
    Index halfBandwidth = 1;   ///< Banded only
    Index communities = 1;     ///< BlockCommunity only
    /** BlockCommunity: share of degree crossing communities (0 =
     * disconnected block-diagonal components). */
    double interFraction = 0.25;
    bool selfLoops = false;    ///< Raw only
    /** Raw only: force this share of entries onto the diagonal
     * (1.0 = self-loop-only matrix). Requires a square shape. */
    double selfLoopFraction = 0.0;
    bool duplicates = false;   ///< Raw only: emit duplicate coordinates
    std::uint64_t seed = 0;
};

/** Envelope arbitraryCsrSpec draws from (and shrinking respects). */
struct SpecBounds
{
    Index maxRows = 96;
    double maxAvgDegree = 8.0;
    bool squareOnly = false;  ///< Raw too stays square
    bool allowEmpty = true;   ///< permit rows/cols == 0
    bool rawOnly = false;     ///< only MatrixKind::Raw
    bool familiesOnly = false; ///< exclude Raw (symmetric, no loops)
    bool allowSelfLoops = true; ///< Raw may place diagonal entries
};

/** Draw a spec inside @p bounds. */
CsrSpec arbitraryCsrSpec(Rng &rng, const SpecBounds &bounds = {});

/** Expand @p spec to COO (duplicates preserved). */
Coo buildCoo(const CsrSpec &spec);

/** Expand @p spec to CSR (duplicate coordinates summed). */
Csr build(const CsrSpec &spec);

/**
 * Shrinker for CsrSpec honouring @p bounds (candidates never leave the
 * envelope the property generated from, so a shrunk counterexample is
 * still a valid input for the property). Pass the result as
 * PropertyOptions::shrink.
 */
std::function<std::vector<CsrSpec>(const CsrSpec &)>
csrSpecShrinker(const SpecBounds &bounds = {});

/** JSON rendering for counterexample reports. */
obs::Json describeCsrSpec(const CsrSpec &spec);

/** JSON rendering of @p bounds for manifest parameters. */
obs::Json describeBounds(const SpecBounds &bounds);

/** Uniformly random permutation of [0, n). */
Permutation arbitraryPermutation(Rng &rng, Index n);

/** Random (possibly non-dense-labelled) clustering of n vertices. */
community::Clustering arbitraryClustering(Rng &rng, Index n);

/** Random merge forest over n vertices (valid by construction). */
community::Dendrogram arbitraryDendrogram(Rng &rng, Index n);

/** A reproducible recipe for one synthetic byte-address trace. */
struct TraceSpec
{
    int length = 0;
    std::uint64_t addressSpace = 4096; ///< addresses lie in [0, this)
    double jumpProbability = 0.3; ///< else sequential 4-byte stride
    std::uint64_t seed = 0;
};

/** One generated cache-simulation input: a geometry plus a trace. */
struct CacheCase
{
    cache::CacheConfig config;
    TraceSpec trace;
};

/**
 * Draw a small cache geometry (line 16..128 B, 1..8 ways, 1..24 sets —
 * deliberately including non-power-of-two set counts) and a trace
 * sized to overflow it. @p allow_sectored adds sectored-line configs;
 * Belady comparisons need it off (simulateBelady rejects sectoring).
 */
CacheCase arbitraryCacheCase(Rng &rng, bool allow_sectored = true);

/** Expand the trace half of @p spec. */
std::vector<std::uint64_t> buildTrace(const TraceSpec &spec);

/** Shrink the trace (the geometry is left alone). */
std::vector<CacheCase> shrinkCacheCase(const CacheCase &value);

/** JSON rendering for counterexample reports. */
obs::Json describeCacheCase(const CacheCase &value);

} // namespace slo::qc
