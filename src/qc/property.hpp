/**
 * @file
 * Property-based test runner: seeded generation, shrinking, reporting.
 *
 * A property is a predicate that must hold for every value a generator
 * can produce. checkProperty draws `cases` values from per-case RNGs
 * derived from one run seed, evaluates the predicate, and on the first
 * failure shrinks the value to a minimal counterexample before
 * reporting it. Every run prints its seed, records it in the run
 * manifest, and emits failures as machine-readable
 * `slo.qc-counterexample/1` reports through slo::obs, so a red run is
 * reproducible with a single environment variable:
 *
 *     SLO_QC_SEED=<printed seed> ctest -L qc
 *
 * The runner is deliberately value-shape agnostic: generators return a
 * cheap *spec* (e.g. qc::CsrSpec) rather than the expensive structure,
 * and shrinking operates on the spec — see gen.hpp.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "matrix/rng.hpp"
#include "obs/json.hpp"

namespace slo::qc
{

/** Knobs of one checkProperty run (env-derived by default). */
struct Config
{
    /** Run seed; every case seed is derived from it (SLO_QC_SEED). */
    std::uint64_t seed = 0x51099c5eedULL;
    /** Number of generated cases per property (SLO_QC_CASES). */
    int cases = 100;
    /** Budget of candidate evaluations during shrinking. */
    int maxShrinkSteps = 500;

    /** Copy with cases capped at @p cap (for expensive properties). */
    Config
    withMaxCases(int cap) const
    {
        Config copy = *this;
        if (copy.cases > cap)
            copy.cases = cap;
        return copy;
    }
};

/**
 * The process-wide default configuration: seed from SLO_QC_SEED
 * (decimal or 0x-hex), case count from SLO_QC_CASES. Parsed once.
 */
Config configFromEnv();

/** Result of one checkProperty run. */
struct Outcome
{
    bool ok = true;
    std::string property;
    std::uint64_t seed = 0;        ///< run seed (rerun with this)
    std::uint64_t failingCaseSeed = 0; ///< derived seed of the failure
    int cases = 0;
    int failedCase = -1;
    int shrinkSteps = 0;           ///< successful shrink applications
    std::string message;           ///< predicate's failure description
    std::string counterexample;    ///< JSON text of the shrunk value

    /** Human-readable multi-line failure description (gtest output). */
    std::string summary() const;
};

/** Optional hooks for checkProperty (all may be left empty). */
template <typename T>
struct PropertyOptions
{
    /** Smaller candidate values; first still-failing one is taken. */
    std::function<std::vector<T>(const T &)> shrink;
    /** Render a value for reports; defaults to an opaque note. */
    std::function<obs::Json(const T &)> describe;
    /** Generator parameters, recorded in the run manifest. */
    obs::Json parameters;
    /** Config override; defaults to configFromEnv(). */
    std::optional<Config> config;
};

namespace detail
{

/** FNV-1a hash of @p text (names perturb the per-property seeds). */
std::uint64_t hashName(std::string_view text);

/** Seed of case @p index of property @p name under @p run_seed. */
std::uint64_t caseSeed(std::uint64_t run_seed, std::string_view name,
                       int index);

/** Print the seed banner and record the property in the manifest. */
void announce(const std::string &property, const Config &config,
              const obs::Json &parameters);

/** Log/count/report a falsified property (slo.qc-counterexample/1). */
void emitFailure(const Outcome &outcome, const obs::Json &counterexample);

/**
 * Evaluate @p holds on @p value. Supports bool(const T&) and
 * bool(const T&, std::string &message); a thrown std::exception counts
 * as a failure with its what() as the message.
 */
template <typename T, typename Holds>
bool
evalHolds(const Holds &holds, const T &value, std::string &message)
{
    try {
        if constexpr (std::is_invocable_r_v<bool, const Holds &,
                                            const T &, std::string &>) {
            return holds(value, message);
        } else {
            static_assert(
                std::is_invocable_r_v<bool, const Holds &, const T &>,
                "property must be callable as bool(const T&) or "
                "bool(const T&, std::string&)");
            return holds(value);
        }
    } catch (const std::exception &error) {
        message = std::string("exception: ") + error.what();
        return false;
    }
}

} // namespace detail

/**
 * Check that @p holds is true for @p config.cases values drawn from
 * @p generate. On the first failure the value is shrunk via
 * @p options.shrink (greedy: repeatedly replace the counterexample by
 * its first still-failing shrink candidate) and reported through
 * slo::obs. Deterministic in the run seed; each case re-seeds its Rng
 * from (seed, property name, case index) so cases are independent.
 *
 * @tparam T the generated value type (name it explicitly at the call
 *           site; it cannot be deduced from lambdas).
 */
template <typename T, typename Generate, typename Holds>
Outcome
checkProperty(std::string_view name, Generate &&generate, Holds &&holds,
              PropertyOptions<T> options = {})
{
    const Config config =
        options.config ? *options.config : configFromEnv();
    Outcome outcome;
    outcome.property = std::string(name);
    outcome.seed = config.seed;
    outcome.cases = config.cases;
    detail::announce(outcome.property, config, options.parameters);

    for (int index = 0; index < config.cases; ++index) {
        const std::uint64_t case_seed =
            detail::caseSeed(config.seed, name, index);
        Rng rng(case_seed);
        T value = generate(rng);
        std::string message;
        if (detail::evalHolds(holds, value, message))
            continue;

        outcome.ok = false;
        outcome.failedCase = index;
        outcome.failingCaseSeed = case_seed;

        // Greedy shrink within the step budget: each round scans the
        // candidate list for the first one that still fails and
        // restarts from it; stop when a round finds none.
        if (options.shrink) {
            int steps = 0;
            bool progressed = true;
            while (progressed && steps < config.maxShrinkSteps) {
                progressed = false;
                std::vector<T> candidates = options.shrink(value);
                for (T &candidate : candidates) {
                    if (++steps > config.maxShrinkSteps)
                        break;
                    std::string candidate_message;
                    if (!detail::evalHolds(holds, candidate,
                                           candidate_message)) {
                        value = std::move(candidate);
                        message = std::move(candidate_message);
                        ++outcome.shrinkSteps;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        outcome.message = message;
        const obs::Json described =
            options.describe ? options.describe(value)
                             : obs::Json("(no describer provided)");
        outcome.counterexample = described.dump();
        detail::emitFailure(outcome, described);
        return outcome;
    }
    return outcome;
}

} // namespace slo::qc
