/**
 * @file
 * Differential oracles: independent reference implementations.
 *
 * Each reference deliberately uses a *different* algorithm from the
 * production code it checks — double-precision row sums vs. the float
 * kernels, O(deg^2) membership scans vs. sorted merges, a map-based
 * LRU vs. the array-based CacheSim — so a bug in shared logic cannot
 * cancel out. References are allowed to be slow; properties run them
 * on qc-generated inputs only.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "matrix/csr.hpp"

namespace slo::qc
{

/** Scalar double-precision y = A*x (the SpMV ground truth). */
std::vector<double> referenceSpmv(const Csr &matrix,
                                  std::span<const Value> x);

/**
 * Scalar double-precision C = A*B for row-major dense B of
 * @p dense_cols columns (the SpMM ground truth).
 */
std::vector<double> referenceSpmm(const Csr &matrix,
                                  std::span<const Value> b,
                                  Index dense_cols);

/**
 * Map-based double-precision C = A*B for sparse B (the SpGEMM ground
 * truth). Deliberately not Gustavson: each output row is accumulated
 * in a column-keyed ordered map — no stamp arrays, no dense/sparse
 * accumulator split, no shared merge logic with kernels::spgemmCsr.
 * Returns one (sorted) map per output row.
 */
std::vector<std::vector<std::pair<Index, double>>>
referenceSpgemm(const Csr &a, const Csr &b);

/**
 * Compare a production SpGEMM product against referenceSpgemm's rows:
 * identical structure (row offsets + sorted column indices) and values
 * within |got - want| <= tolerance * max(1, |want|). On mismatch
 * returns false and, when @p message is non-null, describes the first
 * difference.
 */
bool spgemmNearlyEqual(
    const Csr &got,
    const std::vector<std::vector<std::pair<Index, double>>> &want,
    double tolerance, std::string *message = nullptr);

/**
 * Compare a float kernel result against a double reference:
 * |got - want| <= tolerance * max(1, |want|) elementwise. On mismatch
 * returns false and, when @p message is non-null, describes the first
 * offending element.
 */
bool nearlyEqual(std::span<const Value> got,
                 std::span<const double> want, double tolerance,
                 std::string *message = nullptr);

/** Naive re-implementations of reorder/locality_metrics.hpp. */
double referenceWindowLocalityScore(const Csr &matrix, int window);
double referenceAverageGapLines(const Csr &matrix, int elems_per_line);
double referenceSameLineFraction(const Csr &matrix, int elems_per_line);
double referenceDistinctLinesPerNonZero(const Csr &matrix,
                                        int elems_per_line);

/**
 * Tiny obviously-correct LRU simulator (per-set ordered maps, evicts
 * the minimum last-use line once a set holds `ways` lines), mirroring
 * CacheSim's contract bit-for-bit: sectored fills, irregular-region
 * accounting, and dead lines counted on eviction or at finish.
 */
cache::CacheStats referenceLru(const std::vector<std::uint64_t> &trace,
                               const cache::CacheConfig &config,
                               std::uint64_t irregular_lo = 1,
                               std::uint64_t irregular_hi = 0);

/**
 * Field-by-field comparison of two stat blocks. On mismatch returns
 * false and, when @p message is non-null, names the first field.
 */
bool statsEqual(const cache::CacheStats &a, const cache::CacheStats &b,
                std::string *message = nullptr);

} // namespace slo::qc
