/**
 * @file
 * Plain-text table / CSV reporting for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of one paper table or figure;
 * this keeps the formatting consistent and lets EXPERIMENTS.md quote the
 * output verbatim. CSV dumps (one per bench, optional) feed external
 * plotting.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slo::core
{

/** A fixed-width text table with headers. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    std::size_t numRows() const { return rows_.size(); }

    /** Render with column alignment (first column left, rest right). */
    void print(std::ostream &out) const;

    /** Write headers+rows as CSV. */
    void writeCsv(std::ostream &out) const;

    /** Write CSV to @p path (creating/truncating the file). */
    void writeCsvFile(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p precision digits after the decimal point. */
std::string fmt(double value, int precision = 2);

/** Format as the paper's "1.54x" style. */
std::string fmtX(double value, int precision = 2);

/** Format a [0,1] fraction as "54.3%". */
std::string fmtPct(double fraction, int precision = 1);

/** Print a section heading (bench output structure). */
void printHeading(std::ostream &out, const std::string &title);

} // namespace slo::core
