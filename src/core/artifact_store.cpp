#include "core/artifact_store.hpp"

#include <condition_variable>
#include <exception>
#include <utility>

#include "core/artifact_cache.hpp"
#include "obs/obs.hpp"

namespace slo::core
{

namespace
{

std::uint64_t
fnv1aHash(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

/** One in-process build flight; waiters block on the shard cv. */
struct ArtifactStore::Flight
{
    bool done = false;
    Payload result;
    std::exception_ptr error;
};

struct ArtifactStore::Shard
{
    mutable std::mutex mutex;
    std::condition_variable cv; ///< signalled when a flight completes
    /** LRU order: front = most recent, back = eviction candidate. */
    std::list<Entry> lru;
    std::map<std::string, std::list<Entry>::iterator> index;
    std::map<std::string, std::shared_ptr<Flight>> flights;
    std::size_t bytes = 0;
};

ArtifactStore::ArtifactStore() : ArtifactStore(Options()) {}

ArtifactStore::~ArtifactStore() = default;

ArtifactStore::ArtifactStore(Options options) : options_(options)
{
    if (options_.shards < 1)
        options_.shards = 1;
    if (options_.admitDivisor == 0)
        options_.admitDivisor = 1;
    shardBudget_ =
        options_.maxBytes / static_cast<std::size_t>(options_.shards);
    shards_.reserve(static_cast<std::size_t>(options_.shards));
    for (int i = 0; i < options_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ArtifactStore::Shard &
ArtifactStore::shardFor(const std::string &key)
{
    return *shards_[fnv1aHash(key) %
                    static_cast<std::uint64_t>(shards_.size())];
}

std::size_t
ArtifactStore::payloadBytes(const std::vector<Index> &vec)
{
    // Entry overhead (key, list/map nodes) is approximated with a
    // flat constant so tiny payloads still count against the budget.
    return vec.size() * sizeof(Index) + 64;
}

ArtifactStore::Payload
ArtifactStore::get(const std::string &key)
{
    Shard &shard = shardFor(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        obs::counter("artifact_store.misses").add();
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    obs::counter("artifact_store.hits").add();
    return it->second->payload;
}

void
ArtifactStore::admitLocked(Shard &shard, const std::string &key,
                           Payload payload, std::size_t bytes)
{
    const auto existing = shard.index.find(key);
    if (existing != shard.index.end()) {
        shard.bytes -= existing->second->bytes;
        shard.lru.erase(existing->second);
        shard.index.erase(existing);
    }
    shard.lru.push_front(Entry{key, std::move(payload), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    while (shard.bytes > shardBudget_ && shard.lru.size() > 1) {
        const Entry &victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        obs::counter("artifact_store.evictions").add();
    }
}

bool
ArtifactStore::put(const std::string &key, Payload payload)
{
    const std::size_t bytes = payloadBytes(*payload);
    if (bytes > options_.maxBytes / options_.admitDivisor ||
        bytes > shardBudget_) {
        obs::counter("artifact_store.admission_rejects").add();
        return false;
    }
    Shard &shard = shardFor(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    admitLocked(shard, key, std::move(payload), bytes);
    return true;
}

ArtifactStore::Payload
ArtifactStore::getOrBuild(const std::string &key, const Builder &build)
{
    Shard &shard = shardFor(key);
    std::shared_ptr<Flight> flight;
    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            obs::counter("artifact_store.hits").add();
            return it->second->payload;
        }
        obs::counter("artifact_store.misses").add();
        const auto inflight = shard.flights.find(key);
        if (inflight != shard.flights.end()) {
            // Another thread is already building this key: wait for
            // its flight instead of queueing on the cross-process
            // flock (cv.wait releases the shard lock while parked).
            obs::counter("artifact_store.coalesced_waits").add();
            const std::shared_ptr<Flight> theirs = inflight->second;
            shard.cv.wait(lock, [&] { return theirs->done; });
            if (theirs->error)
                std::rethrow_exception(theirs->error);
            return theirs->result;
        }
        flight = std::make_shared<Flight>();
        shard.flights[key] = flight;
    }

    Payload payload;
    std::exception_ptr error;
    try {
        // Cross-process single-flight: the per-key flock serializes
        // sibling daemons, and the disk read-through after acquiring
        // it turns the losers' builds into loads.
        const CacheKeyLock disk_lock(key);
        if (auto cached = tryLoadIndexVector(key)) {
            obs::counter("artifact_store.disk_hits").add();
            payload = std::make_shared<const std::vector<Index>>(
                *std::move(cached));
        } else {
            obs::counter("artifact_store.builds").add();
            payload =
                std::make_shared<const std::vector<Index>>(build());
            if (options_.diskWriteThrough)
                storeIndexVector(key, *payload);
        }
    } catch (...) {
        error = std::current_exception();
    }

    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        flight->done = true;
        flight->result = payload;
        flight->error = error;
        shard.flights.erase(key);
        if (!error) {
            const std::size_t bytes = payloadBytes(*payload);
            if (bytes <= options_.maxBytes / options_.admitDivisor &&
                bytes <= shardBudget_) {
                admitLocked(shard, key, payload, bytes);
            } else {
                obs::counter("artifact_store.admission_rejects").add();
            }
        }
    }
    shard.cv.notify_all();
    if (error)
        std::rethrow_exception(error);
    return payload;
}

void
ArtifactStore::clear()
{
    for (auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
        shard->bytes = 0;
    }
}

std::size_t
ArtifactStore::entryCount() const
{
    std::size_t n = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        n += shard->index.size();
    }
    return n;
}

std::size_t
ArtifactStore::byteCount() const
{
    std::size_t n = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        n += shard->bytes;
    }
    return n;
}

obs::Json
ArtifactStore::statsJson() const
{
    obs::Json doc = obs::Json::object();
    doc["entries"] = entryCount();
    doc["bytes"] = byteCount();
    doc["max_bytes"] = options_.maxBytes;
    doc["shards"] = options_.shards;
    for (const char *name :
         {"hits", "misses", "disk_hits", "builds", "evictions",
          "admission_rejects", "coalesced_waits"}) {
        doc[name] = obs::counter(std::string("artifact_store.") + name)
                        .value();
    }
    return doc;
}

} // namespace slo::core
