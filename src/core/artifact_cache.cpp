#include "core/artifact_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>

#include <sys/file.h>
#include <unistd.h>

#include <fcntl.h>

#include "check/checked_cast.hpp"
#include "matrix/binary_io.hpp"
#include "obs/obs.hpp"

namespace slo::core
{

namespace
{

constexpr char kVecMagic[4] = {'S', 'L', 'O', 'V'};

/** FNV-1a, for stable cache-key hashing. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hexOf(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/**
 * Per-process-unique temp path next to @p path. Two processes filling
 * the same cache slot must not share a temp file: interleaved writes
 * would produce a torn file that then gets renamed into place.
 */
std::filesystem::path
uniqueTmpPath(const std::filesystem::path &path)
{
    return path.string() + "." + std::to_string(::getpid()) + ".tmp";
}

/**
 * flock() re-entrancy bookkeeping: flock on a *second* descriptor of
 * the same file blocks even within one process, so a thread that
 * already holds a key's lock (e.g. rabbitArtifactsFor locking around
 * a loadOrBuild call) must not lock again.
 *
 * Keying the depth on the OS thread is sound only because
 * par::TaskGroup waiters help strictly with their *own group's*
 * tasks: everything that runs on this thread between acquire and
 * release is part of the same logical build (nested calls, or leaf
 * chunks of a parallelFor the build itself fanned out), never an
 * unrelated stolen task that would piggy-back on the held lock and
 * enter the critical section mid-build. The same group-scoped helping
 * is what keeps the blocking flock below deadlock-free: no thread ever
 * waits on one key's flock while holding a different key's flock
 * picked up through stealing.
 */
thread_local std::map<std::string, int> t_lock_depth;

} // namespace

CacheKeyLock::CacheKeyLock(const std::string &key)
{
    if (!cacheEnabled())
        return;
    stem_ = cacheFileStem(key);
    if (++t_lock_depth[stem_] > 1)
        return; // this thread already holds the flock
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) / (stem_ + ".lock");
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (fd_ < 0) {
        // Lock failure degrades to the pre-locking behaviour (possible
        // duplicate builds), never to a cache error.
        SLO_LOG_WARN("artifact_cache",
                     "cannot lock cache slot for " << key);
    }
}

CacheKeyLock::~CacheKeyLock()
{
    if (stem_.empty())
        return;
    if (--t_lock_depth[stem_] == 0) {
        t_lock_depth.erase(stem_);
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
}

std::string
cacheDir()
{
    const char *env = std::getenv("SLO_CACHE_DIR");
    std::filesystem::path dir =
        env != nullptr && *env != '\0'
            ? std::filesystem::path(env)
            : std::filesystem::temp_directory_path() /
                  "slo-artifact-cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir.string();
}

bool
cacheEnabled()
{
    const char *env = std::getenv("SLO_NO_CACHE");
    return env == nullptr || std::string(env) != "1";
}

std::string
cacheFileStem(const std::string &key)
{
    std::string stem;
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        stem.push_back(safe ? c : '_');
        if (stem.size() >= 80)
            break;
    }
    return stem + "-" + hexOf(fnv1a(key));
}

Csr
loadOrBuildCsr(const std::string &key, const std::function<Csr()> &build)
{
    if (!cacheEnabled())
        return build();
    const CacheKeyLock lock(key);
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".csr");
    if (std::filesystem::exists(path)) {
        try {
            Csr cached = io::readCsrBinaryFile(path.string());
            obs::counter("artifact_cache.csr_hits").add();
            return cached;
        } catch (const std::exception &) {
            // Corrupt cache entry: fall through and rebuild.
            SLO_LOG_WARN("artifact_cache",
                         "corrupt CSR cache entry for " << key
                                                        << "; rebuilding");
        }
    }
    obs::counter("artifact_cache.csr_misses").add();
    const obs::Span span("artifact_cache.build_csr");
    Csr matrix = build();
    const std::filesystem::path tmp = uniqueTmpPath(path);
    io::writeCsrBinaryFile(tmp.string(), matrix);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return matrix;
}

void
storeIndexVector(const std::string &key, const std::vector<Index> &vec)
{
    if (!cacheEnabled())
        return;
    const CacheKeyLock lock(key);
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".vec");
    const std::filesystem::path tmp = uniqueTmpPath(path);
    {
        std::ofstream out(tmp, std::ios::binary);
        const std::uint64_t size = vec.size();
        out.write(kVecMagic, sizeof(kVecMagic));
        out.write(reinterpret_cast<const char *>(&size), sizeof(size));
        out.write(reinterpret_cast<const char *>(vec.data()),
                  checkedCast<std::streamsize>(vec.size() *
                                               sizeof(Index)));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

std::optional<std::vector<Index>>
tryLoadIndexVector(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".vec");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // missing (or vanished) — not corrupt
    // Take the size from the stream we opened, not a separate stat: a
    // concurrent temp+rename can swap the inode between the two calls,
    // and a size from the other version would flag a healthy file as
    // corrupt.
    in.seekg(0, std::ios::end);
    const auto file_bytes = static_cast<std::uintmax_t>(in.tellg());
    in.seekg(0);
    char magic[4] = {};
    std::uint64_t size = 0;
    in.read(magic, sizeof(magic));
    in.read(reinterpret_cast<char *>(&size), sizeof(size));
    // A corrupt size field must not allocate gigabytes before the
    // read fails: the payload must fit in the file.
    constexpr std::uintmax_t header_bytes =
        sizeof(kVecMagic) + sizeof(std::uint64_t);
    const bool size_sane =
        file_bytes >= header_bytes &&
        size <= (file_bytes - header_bytes) / sizeof(Index);
    if (in && size_sane && std::equal(magic, magic + 4, kVecMagic)) {
        std::vector<Index> vec(checkedCast<std::size_t>(size));
        in.read(reinterpret_cast<char *>(vec.data()),
                checkedCast<std::streamsize>(vec.size() *
                                             sizeof(Index)));
        if (in)
            return vec;
    }
    SLO_LOG_WARN("artifact_cache",
                 "corrupt vector cache entry for " << key
                                                   << "; rebuilding");
    return std::nullopt;
}

std::vector<Index>
loadOrBuildIndexVector(const std::string &key,
                       const std::function<std::vector<Index>()> &build)
{
    const CacheKeyLock lock(key);
    if (auto cached = tryLoadIndexVector(key)) {
        obs::counter("artifact_cache.vec_hits").add();
        return *std::move(cached);
    }
    obs::counter("artifact_cache.vec_misses").add();
    std::vector<Index> vec = build();
    storeIndexVector(key, vec);
    return vec;
}

Permutation
loadOrBuildPerm(const std::string &key,
                const std::function<Permutation()> &build)
{
    return Permutation(loadOrBuildIndexVector(
        key, [&build] { return build().newIds(); }));
}

} // namespace slo::core
