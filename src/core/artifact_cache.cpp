#include "core/artifact_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "check/checked_cast.hpp"
#include "matrix/binary_io.hpp"
#include "obs/obs.hpp"

namespace slo::core
{

namespace
{

constexpr char kVecMagic[4] = {'S', 'L', 'O', 'V'};

/** FNV-1a, for stable cache-key hashing. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hexOf(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace

std::string
cacheDir()
{
    const char *env = std::getenv("SLO_CACHE_DIR");
    std::filesystem::path dir =
        env != nullptr && *env != '\0'
            ? std::filesystem::path(env)
            : std::filesystem::temp_directory_path() /
                  "slo-artifact-cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir.string();
}

bool
cacheEnabled()
{
    const char *env = std::getenv("SLO_NO_CACHE");
    return env == nullptr || std::string(env) != "1";
}

std::string
cacheFileStem(const std::string &key)
{
    std::string stem;
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        stem.push_back(safe ? c : '_');
        if (stem.size() >= 80)
            break;
    }
    return stem + "-" + hexOf(fnv1a(key));
}

Csr
loadOrBuildCsr(const std::string &key, const std::function<Csr()> &build)
{
    if (!cacheEnabled())
        return build();
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".csr");
    if (std::filesystem::exists(path)) {
        try {
            Csr cached = io::readCsrBinaryFile(path.string());
            obs::counter("artifact_cache.csr_hits").add();
            return cached;
        } catch (const std::exception &) {
            // Corrupt cache entry: fall through and rebuild.
            SLO_LOG_WARN("artifact_cache",
                         "corrupt CSR cache entry for " << key
                                                        << "; rebuilding");
        }
    }
    obs::counter("artifact_cache.csr_misses").add();
    const obs::Span span("artifact_cache.build_csr");
    Csr matrix = build();
    const std::filesystem::path tmp = path.string() + ".tmp";
    io::writeCsrBinaryFile(tmp.string(), matrix);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return matrix;
}

void
storeIndexVector(const std::string &key, const std::vector<Index> &vec)
{
    if (!cacheEnabled())
        return;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".vec");
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        const std::uint64_t size = vec.size();
        out.write(kVecMagic, sizeof(kVecMagic));
        out.write(reinterpret_cast<const char *>(&size), sizeof(size));
        out.write(reinterpret_cast<const char *>(vec.data()),
                  checkedCast<std::streamsize>(vec.size() *
                                               sizeof(Index)));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

std::vector<Index>
loadOrBuildIndexVector(const std::string &key,
                       const std::function<std::vector<Index>()> &build)
{
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".vec");
    if (cacheEnabled() && std::filesystem::exists(path)) {
        std::error_code size_ec;
        const std::uintmax_t file_bytes =
            std::filesystem::file_size(path, size_ec);
        std::ifstream in(path, std::ios::binary);
        char magic[4] = {};
        std::uint64_t size = 0;
        in.read(magic, sizeof(magic));
        in.read(reinterpret_cast<char *>(&size), sizeof(size));
        // A corrupt size field must not allocate gigabytes before the
        // read fails: the payload must fit in the file.
        constexpr std::uintmax_t header_bytes =
            sizeof(kVecMagic) + sizeof(std::uint64_t);
        const bool size_sane =
            !size_ec && file_bytes >= header_bytes &&
            size <= (file_bytes - header_bytes) / sizeof(Index);
        if (in && size_sane &&
            std::equal(magic, magic + 4, kVecMagic)) {
            std::vector<Index> vec(checkedCast<std::size_t>(size));
            in.read(reinterpret_cast<char *>(vec.data()),
                    checkedCast<std::streamsize>(vec.size() *
                                                 sizeof(Index)));
            if (in) {
                obs::counter("artifact_cache.vec_hits").add();
                return vec;
            }
        }
        // Corrupt entry: rebuild below.
        SLO_LOG_WARN("artifact_cache",
                     "corrupt vector cache entry for " << key
                                                       << "; rebuilding");
    }
    obs::counter("artifact_cache.vec_misses").add();
    std::vector<Index> vec = build();
    storeIndexVector(key, vec);
    return vec;
}

Permutation
loadOrBuildPerm(const std::string &key,
                const std::function<Permutation()> &build)
{
    return Permutation(loadOrBuildIndexVector(
        key, [&build] { return build().newIds(); }));
}

} // namespace slo::core
