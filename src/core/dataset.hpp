/**
 * @file
 * The evaluation corpus and the paper's input-selection process
 * (Sec. III).
 *
 * The paper curates 50 matrices from three repositories (SuiteSparse,
 * Konect, Web Data Commons) with explicit bias-avoiding rules:
 *
 *   1. square matrices whose input-vector footprint exceeds the L2
 *      (paper: >= 1.5M rows vs 6 MB; here scaled, see GpuSpec),
 *   2. a non-zero cap set by GPU memory (paper: 2.5B; here scaled),
 *   3. one matrix per publisher *group* (the largest), except the
 *      SNAP and DIMACS10 groups which are aggregates and run in full.
 *
 * We reproduce the *process* over a pool of ~60 synthetic candidates
 * whose families mirror the paper's source domains (DESIGN.md,
 * "Substitutions"). Candidate metadata (declared rows/nnz) drives
 * curation exactly the way SuiteSparse's collection metadata would.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpu/gpu_spec.hpp"
#include "matrix/csr.hpp"

namespace slo::core
{

/** Corpus scale; selected by REPRO_SCALE=small|medium|large. */
enum class Scale
{
    Small,
    Medium,
    Large,
};

/** Parse REPRO_SCALE (default Small). */
Scale scaleFromEnv();

/** Row multiplier relative to Small: 1, 4, 16. */
int scaleFactor(Scale scale);

/** Human-readable scale name. */
std::string scaleName(Scale scale);

/**
 * The modelled GPU for a corpus scale: a full A6000 with its 6 MB L2
 * scaled to 64 KiB / 256 KiB / 1 MiB so footprint/L2 matches the
 * paper's regime.
 */
gpu::GpuSpec specForScale(Scale scale);

/** The publisher-visible ORIGINAL ordering of a candidate. */
enum class OriginalOrder
{
    Natural,            ///< generator order (grids, meshes, bands)
    Shuffled,           ///< random ids (hashed crawl ids etc.)
    PublisherCommunity, ///< publisher applied a community ordering
                        ///< (sk-2005's LLP in the paper)
    PublisherBfs,       ///< publisher applied a BFS/RCM-style ordering
};

/** One corpus candidate. */
struct DatasetEntry
{
    std::string name;
    std::string group;      ///< publisher group (SuiteSparse semantics)
    std::string repository; ///< "suitesparse" | "konect" | "wdc"
    std::string domain;     ///< source domain, for reporting
    OriginalOrder originalOrder = OriginalOrder::Natural;
    Index baseRows = 0;     ///< rows at Scale::Small
    double avgDegree = 0.0; ///< approximate stored entries per row

    /** Build the matrix in *natural* order at @p rows target size. */
    std::function<Csr(Index rows, std::uint64_t seed)> generate;

    std::uint64_t seed = 0;

    /**
     * Bumped when an entry's generator/parameters change, so cached
     * artifacts regenerate for that entry only.
     */
    int generatorVersion = 1;

    /** Declared rows at @p scale (collection metadata). */
    Index rowsAt(Scale scale) const;

    /** Declared non-zero estimate at @p scale. */
    Offset nnzEstimateAt(Scale scale) const;

    /**
     * Generate the matrix at @p scale and apply the publisher's
     * ORIGINAL ordering. Results are cached on disk (artifact_cache).
     */
    Csr build(Scale scale) const;

    /** Stable cache key for this entry at @p scale. */
    std::string cacheKey(Scale scale) const;
};

/** Selection rules of Sec. III. */
struct CurationCriteria
{
    Index minRows = 0;  ///< input-vector footprint must exceed L2
    Offset maxNnz = 0;  ///< GPU memory cap
    bool largestPerGroup = true;
    std::vector<std::string> exceptionGroups = {"SNAP", "DIMACS10"};
};

/** The paper's criteria instantiated for @p scale. */
CurationCriteria paperCriteria(Scale scale);

/** The full candidate pool (~60 entries across three repositories). */
std::vector<DatasetEntry> candidatePool();

/** Apply the selection process to @p pool. */
std::vector<DatasetEntry> curate(const std::vector<DatasetEntry> &pool,
                                 const CurationCriteria &criteria,
                                 Scale scale);

/** candidatePool() curated with paperCriteria(): the 50-matrix corpus. */
std::vector<DatasetEntry> paperCorpus(Scale scale);

} // namespace slo::core
