/**
 * @file
 * Deterministic parallel fan-out over an experiment grid.
 *
 * Every bench in this repo walks the same shape: for each corpus
 * matrix, for each reordering technique, run the pipeline cell and
 * print a row. runGrid parallelizes that double loop on the global
 * par::ThreadPool while keeping the *gathering* deterministic: results
 * land in a matrix-major table indexed by (matrixIndex, techniqueIndex)
 * regardless of which worker finished first, so a bench that formats
 * rows from the table produces byte-identical output at any
 * SLO_THREADS value.
 *
 * Attribution: each cell runs with the thread-local
 * obs::context("matrix") set to its matrix name, so pipeline stages
 * that attribute implicitly (simulateOrdered, recordPhase callers)
 * keep working inside a cell. The context is scoped to the cell and
 * restored afterwards, so a cell run inline on a helping or serial
 * thread cannot leave its name behind in the surrounding work. Code
 * that needs to attribute *across* cells passes names explicitly
 * (core::simulateOrderedAs).
 */

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "reorder/reorder.hpp"

namespace slo::core
{

/** One (matrix, technique) cell of an experiment grid. */
struct GridCell
{
    std::size_t matrixIndex = 0;
    std::size_t techniqueIndex = 0;
    const CorpusMatrix *matrix = nullptr; ///< never null inside runGrid
    reorder::Technique technique{};
};

/**
 * Run @p fn over every (matrix, technique) cell and gather the results
 * into `table[matrixIndex][techniqueIndex]`. Cells execute concurrently
 * (grain 1 — each cell is coarse); the table layout is independent of
 * execution order. @p fn's result type must be default-constructible
 * and is move-assigned into the table.
 *
 * With SLO_THREADS=1 the cells run inline in row-major order, exactly
 * like the serial double loop this replaces.
 */
template <typename Fn>
auto
runGrid(const std::vector<CorpusMatrix> &corpus,
        const std::vector<reorder::Technique> &techniques, Fn &&fn)
    -> std::vector<
        std::vector<decltype(fn(std::declval<const GridCell &>()))>>
{
    using Result = decltype(fn(std::declval<const GridCell &>()));
    std::vector<std::vector<Result>> table(corpus.size());
    for (std::vector<Result> &row : table)
        row.resize(techniques.size());
    const std::size_t width = techniques.size();
    par::parallelFor(
        std::size_t{0}, corpus.size() * width,
        [&](std::size_t cell) {
            const GridCell c{cell / width, cell % width,
                             &corpus[cell / width],
                             techniques[cell % width]};
            // Scoped, not sticky: a cell can run inline on a thread
            // that is mid-way through other attributed work (the
            // caller helping during wait, or SLO_THREADS=1), and its
            // matrix name must not leak into that work.
            const obs::ScopedContext ctx("matrix",
                                         c.matrix->entry.name);
            table[c.matrixIndex][c.techniqueIndex] = fn(c);
        },
        par::ForOptions{1});
    return table;
}

} // namespace slo::core
