/**
 * @file
 * Summary statistics used by the paper's analysis: arithmetic/geometric
 * means over the corpus and the Pearson correlations of Sec. V
 * (insularity vs community size: -0.472; insularity vs skew: -0.721).
 */

#pragma once

#include <span>
#include <vector>

namespace slo::core
{

/** Arithmetic mean (0 for empty input). */
double mean(std::span<const double> values);

/** Geometric mean (0 for empty input; requires positive values). */
double geomean(std::span<const double> values);

/** Minimum / maximum (0 for empty input). */
double minOf(std::span<const double> values);
double maxOf(std::span<const double> values);

/**
 * Pearson correlation coefficient between two equally-sized samples.
 * Returns 0 when either sample has zero variance.
 */
double pearson(std::span<const double> xs, std::span<const double> ys);

/**
 * Spearman rank correlation: Pearson on the ranks (average ranks for
 * ties). Robust against the outliers that distort Pearson (e.g. the
 * mawi anomaly in the Sec. V analysis).
 */
double spearman(std::span<const double> xs, std::span<const double> ys);

/** p-th percentile (0 <= p <= 100) by linear interpolation. */
double percentile(std::vector<double> values, double p);

} // namespace slo::core
