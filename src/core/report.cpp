#include "core/report.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "matrix/types.hpp"

namespace slo::core
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "Table::addRow: cell count mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c == 0) {
                out << std::left << std::setw(
                    static_cast<int>(widths[c])) << row[c];
            } else {
                out << "  " << std::right << std::setw(
                    static_cast<int>(widths[c])) << row[c];
            }
        }
        out << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::writeCsv(std::ostream &out) const
{
    auto write_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out << ',';
            const bool quote =
                row[c].find(',') != std::string::npos ||
                row[c].find('"') != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
        }
        out << '\n';
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    require(out.is_open(), "Table::writeCsvFile: cannot open " + path);
    writeCsv(out);
}

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
fmtX(double value, int precision)
{
    return fmt(value, precision) + "x";
}

std::string
fmtPct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

void
printHeading(std::ostream &out, const std::string &title)
{
    out << '\n' << "== " << title << " ==\n\n";
}

} // namespace slo::core
