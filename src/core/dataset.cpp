#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "core/artifact_cache.hpp"
#include "matrix/generators.hpp"
#include "obs/obs.hpp"
#include "reorder/rabbit.hpp"
#include "reorder/rcm.hpp"

namespace slo::core
{

namespace
{

using Gen = std::function<Csr(Index, std::uint64_t)>;

/** FNV-1a for per-entry seeds. */
std::uint64_t
seedOf(const std::string &name)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

int
log2Ceil(Index n)
{
    int scale = 0;
    while ((Index{1} << scale) < n)
        ++scale;
    return scale;
}

// ---- generator family adaptors -------------------------------------

Gen
er(double deg)
{
    return [deg](Index n, std::uint64_t seed) {
        return gen::erdosRenyi(n, deg, seed);
    };
}

Gen
rmatG(double a, double b, double c, double deg)
{
    return [a, b, c, deg](Index n, std::uint64_t seed) {
        return gen::rmat(log2Ceil(n), deg, a, b, c, seed);
    };
}

Gen
planted(Index comms, double intra, double inter)
{
    return [comms, intra, inter](Index n, std::uint64_t seed) {
        return gen::plantedPartition(n, comms, intra, inter, seed);
    };
}

Gen
hier(int branching, int levels, double deg, double decay)
{
    return [branching, levels, deg, decay](Index n,
                                           std::uint64_t seed) {
        return gen::hierarchicalCommunity(n, branching, levels, deg,
                                          decay, seed);
    };
}

Gen
ba(Index m)
{
    return [m](Index n, std::uint64_t seed) {
        return gen::barabasiAlbert(n, m, seed);
    };
}

Gen
grid(double shortcut)
{
    return [shortcut](Index n, std::uint64_t seed) {
        const auto w = static_cast<Index>(
            std::floor(std::sqrt(static_cast<double>(n))));
        const Index h = n / w;
        return gen::grid2d(w, h, shortcut, seed);
    };
}

Gen
stencil(int points)
{
    return [points](Index n, std::uint64_t seed) {
        const auto s = static_cast<Index>(
            std::llround(std::cbrt(static_cast<double>(n))));
        return gen::stencil3d(s, s, s, points, seed);
    };
}

Gen
band(Index hb, double fill)
{
    return [hb, fill](Index n, std::uint64_t seed) {
        return gen::banded(n, hb, fill, seed);
    };
}

Gen
chain(double branch)
{
    return [branch](Index n, std::uint64_t seed) {
        return gen::chainWithBranches(n, branch, seed);
    };
}

Gen
mawi(Index hubs, double coverage, double tail)
{
    return [hubs, coverage, tail](Index n, std::uint64_t seed) {
        return gen::hubStar(n, hubs, coverage, tail, seed);
    };
}

Gen
temporal(Index comms, double intra, double hub_frac, double hub_deg)
{
    return [comms, intra, hub_frac, hub_deg](Index n,
                                             std::uint64_t seed) {
        return gen::temporalInteraction(n, comms, intra, hub_frac,
                                        hub_deg, seed);
    };
}

/**
 * Planted communities overlaid with an RMAT hub layer: real social /
 * citation / crawl graphs have *both* community structure and a
 * skewed degree distribution (n must be a power of two).
 */
Gen
socialMix(Index comms, double intra, double inter, double rmat_deg)
{
    return [comms, intra, inter, rmat_deg](Index n,
                                           std::uint64_t seed) {
        Csr base = gen::plantedPartition(n, comms, intra, inter, seed);
        Csr hubs = gen::rmatSocial(log2Ceil(n), rmat_deg,
                                   seed ^ 0x50c1a1);
        require(hubs.numRows() == n,
                "socialMix: n must be a power of two");
        return gen::overlay(base, hubs);
    };
}

/** Banded core + random overlay (circuit-style). */
Gen
circuitMix(Index hb, double fill, double er_deg)
{
    return [hb, fill, er_deg](Index n, std::uint64_t seed) {
        return gen::overlay(gen::banded(n, hb, fill, seed),
                            gen::erdosRenyi(n, er_deg, seed ^ 0x9e37));
    };
}

/**
 * Embed the generated matrix into a larger id space of isolated nodes
 * (wiki-Talk-like: 93% empty rows).
 */
Gen
isolatedPad(Gen inner, double active_fraction)
{
    return [inner = std::move(inner), active_fraction](
               Index n, std::uint64_t seed) {
        const auto active = std::max<Index>(
            2, static_cast<Index>(static_cast<double>(n) *
                                  active_fraction));
        const Csr core = inner(active, seed);
        std::vector<Offset> offsets(static_cast<std::size_t>(n) + 1,
                                    core.numNonZeros());
        for (Index r = 0; r <= core.numRows(); ++r)
            offsets[static_cast<std::size_t>(r)] =
                core.rowOffsets()[static_cast<std::size_t>(r)];
        return Csr(n, n, std::move(offsets), core.colIndices(),
                   core.values());
    };
}

// ---- pool construction ----------------------------------------------

struct PoolBuilder
{
    std::vector<DatasetEntry> entries;

    void
    add(std::string name, std::string group, std::string repository,
        std::string domain, OriginalOrder order, Index base_rows,
        double avg_degree, Gen generate, int generator_version = 1)
    {
        DatasetEntry entry;
        entry.generatorVersion = generator_version;
        entry.name = std::move(name);
        entry.group = std::move(group);
        entry.repository = std::move(repository);
        entry.domain = std::move(domain);
        entry.originalOrder = order;
        entry.baseRows = base_rows;
        entry.avgDegree = avg_degree;
        entry.generate = std::move(generate);
        entry.seed = seedOf(entry.name);
        entries.push_back(std::move(entry));
    }
};

} // namespace

Scale
scaleFromEnv()
{
    const char *env = std::getenv("REPRO_SCALE");
    if (env == nullptr)
        return Scale::Small;
    const std::string value(env);
    if (value == "small" || value.empty())
        return Scale::Small;
    if (value == "medium")
        return Scale::Medium;
    if (value == "large")
        return Scale::Large;
    fatal("REPRO_SCALE must be small|medium|large, got: " + value);
}

int
scaleFactor(Scale scale)
{
    switch (scale) {
      case Scale::Small: return 1;
      case Scale::Medium: return 4;
      case Scale::Large: return 16;
    }
    fatal("scaleFactor: bad scale");
}

std::string
scaleName(Scale scale)
{
    switch (scale) {
      case Scale::Small: return "small";
      case Scale::Medium: return "medium";
      case Scale::Large: return "large";
    }
    fatal("scaleName: bad scale");
}

gpu::GpuSpec
specForScale(Scale scale)
{
    // L2 scaled with the corpus: min corpus rows (16Ki at Small) x 4B
    // equals the L2 capacity, the paper's selection boundary.
    switch (scale) {
      case Scale::Small:
        return gpu::GpuSpec::a6000ScaledL2(64ULL * 1024);
      case Scale::Medium:
        return gpu::GpuSpec::a6000ScaledL2(256ULL * 1024);
      case Scale::Large:
        return gpu::GpuSpec::a6000ScaledL2(1024ULL * 1024);
    }
    fatal("specForScale: bad scale");
}

Index
DatasetEntry::rowsAt(Scale scale) const
{
    return baseRows * scaleFactor(scale);
}

Offset
DatasetEntry::nnzEstimateAt(Scale scale) const
{
    return static_cast<Offset>(static_cast<double>(rowsAt(scale)) *
                               avgDegree);
}

std::string
DatasetEntry::cacheKey(Scale scale) const
{
    return "corpus-v1-" + name + "-g" +
           std::to_string(generatorVersion) + "-" + scaleName(scale);
}

Csr
DatasetEntry::build(Scale scale) const
{
    return loadOrBuildCsr(cacheKey(scale), [this, scale] {
        const obs::Span span("corpus.generate:" + name);
        Csr matrix = generate(rowsAt(scale), seed);
        switch (originalOrder) {
          case OriginalOrder::Natural:
            break;
          case OriginalOrder::Shuffled:
            matrix = matrix.permutedSymmetric(
                Permutation::random(matrix.numRows(), seed ^ 0x5A5A));
            break;
          case OriginalOrder::PublisherCommunity:
            matrix = matrix.permutedSymmetric(
                slo::reorder::rabbitOrder(matrix).perm);
            break;
          case OriginalOrder::PublisherBfs:
            matrix = matrix.permutedSymmetric(
                slo::reorder::rcmOrder(matrix));
            break;
        }
        return matrix;
    });
}

CurationCriteria
paperCriteria(Scale scale)
{
    CurationCriteria criteria;
    // Input-vector footprint must exceed the (scaled) L2: paper's 1.5M
    // rows vs 6 MB becomes 16Ki rows vs 64 KiB at Small.
    criteria.minRows = static_cast<Index>(
        specForScale(scale).l2.capacityBytes / kElemBytes);
    // Non-zero cap (paper: 2.5B, GPU memory): scaled to the corpus.
    criteria.maxNnz = Offset{4'000'000} * scaleFactor(scale);
    return criteria;
}

std::vector<DatasetEntry>
candidatePool()
{
    PoolBuilder pool;
    const std::string ss = "suitesparse";
    const std::string ko = "konect";
    const std::string wd = "wdc";
    using O = OriginalOrder;

    // --- DIMACS10 (aggregate group: run all) -------------------------
    pool.add("road-usa-like", "DIMACS10", ss, "road network",
             O::Natural, 65536, 3.0, grid(0.02));
    pool.add("road-central-like", "DIMACS10", ss, "road network",
             O::Natural, 32768, 3.1, grid(0.05));
    pool.add("delaunay-like", "DIMACS10", ss, "triangulation",
             O::Natural, 24576, 3.0, grid(0.0));
    pool.add("rgg-like", "DIMACS10", ss, "random geometric",
             O::Natural, 49152, 3.0, grid(0.01));
    pool.add("hugetric-like", "DIMACS10", ss, "triangulation",
             O::Natural, 98304, 3.0, grid(0.0));
    pool.add("kron-g500-like", "DIMACS10", ss, "synthetic kronecker",
             O::Shuffled, 32768, 16.0, rmatG(0.57, 0.19, 0.19, 16));
    pool.add("er-fact-like", "DIMACS10", ss, "uniform random",
             O::Natural, 32768, 8.0, er(8.0));

    // --- SNAP (aggregate group: run all) ------------------------------
    pool.add("com-lj-like", "SNAP", ss, "social network", O::Shuffled,
             65536, 13.0, temporal(256, 12, 0.01, 50));
    pool.add("com-orkut-like", "SNAP", ss, "social network",
             O::Shuffled, 32768, 42.0, temporal(64, 30, 0.02, 220),
             2);
    pool.add("soc-pokec-like", "SNAP", ss, "social network",
             O::Shuffled, 131072, 15.0, socialMix(1024, 8, 1, 6), 2);
    pool.add("wiki-talk-like", "SNAP", ss, "communication graph",
             O::Shuffled, 65536, 0.8,
             isolatedPad(mawi(8, 0.5, 2.0), 0.07));
    pool.add("sx-stack-like", "SNAP", ss, "temporal interactions",
             O::Shuffled, 49152, 13.0, temporal(384, 8, 0.02, 120));
    pool.add("email-eu-like", "SNAP", ss, "communication graph",
             O::Shuffled, 16384, 28.0, temporal(32, 20, 0.03, 150),
             2);
    pool.add("cit-patents-like", "SNAP", ss, "citation graph",
             O::Shuffled, 65536, 12.0, socialMix(512, 7, 1, 4), 2);
    pool.add("web-berkstan-like", "SNAP", ss, "web crawl",
             O::PublisherBfs, 40960, 12.0, hier(8, 4, 12, 0.25));

    // --- one-per-group SuiteSparse candidates -------------------------
    pool.add("web-sk-like", "LAW", ss, "web crawl",
             O::PublisherCommunity, 98304, 20.0, hier(10, 4, 20, 0.2));
    pool.add("web-it-like", "LAW", ss, "web crawl",
             O::PublisherCommunity, 49152, 18.0, hier(10, 4, 18, 0.2));
    pool.add("wb-edu-like", "Gleich", ss, "web crawl",
             O::PublisherBfs, 49152, 14.0, hier(8, 4, 14, 0.25));
    pool.add("webbase-like", "WebBase", ss, "web crawl",
             O::PublisherBfs, 114688, 18.0, hier(12, 4, 18, 0.15));
    pool.add("kmer-v1r-like", "GenBank", ss, "protein k-mer",
             O::Shuffled, 131072, 2.1, chain(0.03));
    pool.add("kmer-a2a-like", "GenBank", ss, "protein k-mer",
             O::Shuffled, 49152, 2.1, chain(0.03));
    pool.add("cage15-like", "vanHeukelum", ss, "DNA electrophoresis",
             O::Natural, 32768, 10.0, band(64, 0.08));
    pool.add("cage12-like", "vanHeukelum", ss, "DNA electrophoresis",
             O::Natural, 12288, 10.0, band(64, 0.08));
    pool.add("nlpkkt-like", "Schenk", ss, "nonlinear optimization",
             O::Natural, 65536, 10.2, band(128, 0.04));
    pool.add("circuit5M-like", "Freescale", ss, "circuit simulation",
             O::Natural, 49152, 10.0, circuitMix(8, 0.5, 2.0));
    pool.add("ml-geer-like", "Janna", ss, "structural mechanics",
             O::Natural, 27000, 26.0, stencil(27));
    pool.add("thermal-like", "Botonakis", ss, "thermal FEM",
             O::Natural, 65536, 6.9, stencil(7));
    pool.add("atmosmodd-like", "Bourchtein", ss, "atmospheric model",
             O::Natural, 74088, 6.9, stencil(7));
    pool.add("dielfilter-like", "Dziekonski", ss, "electromagnetics",
             O::Natural, 24576, 26.0, stencil(27));
    pool.add("mawi-like", "MAWI", ss, "packet trace", O::Shuffled,
             65536, 2.0, mawi(1, 0.95, 0.05));
    pool.add("hollywood-like", "Stanford", ss, "collaboration",
             O::Shuffled, 65536, 23.0, socialMix(512, 16, 2, 5), 2);
    pool.add("patents-main-like", "Pajek", ss, "citation graph",
             O::Shuffled, 32768, 10.0, socialMix(256, 6, 1, 3), 2);
    pool.add("as-skitter-like", "Newman", ss, "internet topology",
             O::Shuffled, 40960, 11.5, ba(6));
    pool.add("citeseer-like", "CiteSeer", ss, "citation graph",
             O::Shuffled, 36864, 14.0, temporal(256, 10, 0.02, 120),
             2);
    pool.add("human-gene-like", "Belcastro", ss, "gene network",
             O::Shuffled, 16384, 50.0, temporal(64, 40, 0.02, 250),
             2);
    pool.add("ecology-like", "McRae", ss, "landscape ecology",
             O::Natural, 73728, 3.0, grid(0.0));
    pool.add("apache-like", "GHS_psdef", ss, "structural FEM",
             O::Natural, 54872, 6.9, stencil(7));
    pool.add("g3-circuit-like", "AMD", ss, "circuit simulation",
             O::Natural, 90000, 3.0, grid(0.005));
    pool.add("memchip-like", "Hamm", ss, "circuit simulation",
             O::Natural, 40960, 9.9, band(16, 0.3));
    pool.add("rajat-like", "Rajat", ss, "circuit simulation",
             O::Natural, 28672, 5.8, circuitMix(4, 0.6, 1.0));
    pool.add("ldoor-like", "INPRO", ss, "structural FEM",
             O::Natural, 21952, 26.0, stencil(27));
    pool.add("af-shell-like", "Schenk_AFE", ss, "sheet metal FEM",
             O::Natural, 39304, 26.0, stencil(27));
    pool.add("bone010-like", "Oberwolfach", ss, "bone micro-FEM",
             O::Natural, 29791, 26.0, stencil(27));
    pool.add("channel-like", "VLSI", ss, "channel routing",
             O::Natural, 65536, 3.0, grid(0.002));
    pool.add("zeros-like", "VanVelzen", ss, "knowledge base",
             O::Shuffled, 53248, 11.0, temporal(128, 8, 0.02, 100),
             2);
    // Candidates the criteria are designed to exclude:
    pool.add("uk-union-like", "UK", ss, "web crawl (too dense)",
             O::Shuffled, 65536, 96.0, hier(10, 4, 96, 0.2));
    pool.add("small-web-like", "TinyWeb", ss, "web crawl (too small)",
             O::Shuffled, 8192, 12.0, hier(8, 3, 12, 0.25));

    // --- Konect-like repository ---------------------------------------
    pool.add("flickr-like", "KonectFlickr", ko, "social network",
             O::Shuffled, 40960, 16.0, ba(8));
    pool.add("lj-links-like", "KonectLJ", ko, "social network",
             O::Shuffled, 73728, 11.0, temporal(512, 10, 0.015, 60));
    pool.add("orkut-links-like", "KonectOrkut", ko, "social network",
             O::Shuffled, 57344, 40.0, temporal(128, 24, 0.025, 250),
             2);
    pool.add("actor-collab-like", "KonectActor", ko, "collaboration",
             O::Shuffled, 32768, 20.0, planted(512, 18, 2));
    pool.add("dbpedia-like", "KonectDbpedia", ko, "knowledge base",
             O::Shuffled, 65536, 8.0, socialMix(512, 4, 0.5, 3.5), 2);
    pool.add("wordnet-like", "KonectWordnet", ko, "lexical network",
             O::Shuffled, 24576, 7.0, hier(6, 4, 7, 0.3));
    pool.add("topology-like", "KonectTopo", ko, "internet topology",
             O::Shuffled, 20480, 8.0, ba(4));
    pool.add("konect-small-like", "KonectSmall", ko,
             "social network (too small)", O::Shuffled, 8192, 10.0,
             planted(16, 6, 4));

    // --- Web Data Commons-like repository ------------------------------
    pool.add("wdc-pld-arc-like", "WDCPld", wd, "hyperlink graph",
             O::Shuffled, 131072, 24.0, socialMix(2048, 16, 2, 6), 2);
    pool.add("wdc-hyperlink-like", "WDCHyper", wd, "hyperlink graph",
             O::Shuffled, 131072, 24.0, hier(16, 4, 24, 0.18));

    return pool.entries;
}

std::vector<DatasetEntry>
curate(const std::vector<DatasetEntry> &pool,
       const CurationCriteria &criteria, Scale scale)
{
    // Size filters first (collection metadata).
    std::vector<DatasetEntry> eligible;
    for (const DatasetEntry &entry : pool) {
        if (entry.rowsAt(scale) < criteria.minRows)
            continue;
        if (criteria.maxNnz > 0 &&
            entry.nnzEstimateAt(scale) > criteria.maxNnz) {
            continue;
        }
        eligible.push_back(entry);
    }
    if (!criteria.largestPerGroup)
        return eligible;

    // One (largest) candidate per repository+group, except exception
    // groups which are aggregated from different sources.
    auto is_exception = [&criteria](const std::string &group) {
        return std::find(criteria.exceptionGroups.begin(),
                         criteria.exceptionGroups.end(),
                         group) != criteria.exceptionGroups.end();
    };
    std::unordered_map<std::string, std::size_t> best;
    std::vector<bool> keep(eligible.size(), false);
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        const DatasetEntry &entry = eligible[i];
        if (is_exception(entry.group)) {
            keep[i] = true;
            continue;
        }
        const std::string key = entry.repository + "/" + entry.group;
        const auto it = best.find(key);
        if (it == best.end()) {
            best[key] = i;
        } else if (entry.rowsAt(scale) >
                   eligible[it->second].rowsAt(scale)) {
            it->second = i;
        }
    }
    for (const auto &[key, index] : best)
        keep[index] = true;

    std::vector<DatasetEntry> result;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
        if (keep[i])
            result.push_back(eligible[i]);
    }
    return result;
}

std::vector<DatasetEntry>
paperCorpus(Scale scale)
{
    return curate(candidatePool(), paperCriteria(scale), scale);
}

} // namespace slo::core
