#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/types.hpp"

namespace slo::core
{

double
mean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
geomean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_total = 0.0;
    for (double v : values) {
        require(v > 0.0, "geomean: values must be positive");
        log_total += std::log(v);
    }
    return std::exp(log_total / static_cast<double>(values.size()));
}

double
minOf(std::span<const double> values)
{
    return values.empty()
               ? 0.0
               : *std::min_element(values.begin(), values.end());
}

double
maxOf(std::span<const double> values)
{
    return values.empty()
               ? 0.0
               : *std::max_element(values.begin(), values.end());
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    require(xs.size() == ys.size(), "pearson: size mismatch");
    const auto n = static_cast<double>(xs.size());
    if (xs.empty())
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    (void)n;
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

namespace
{

/** Average ranks (1-based; ties share their mean rank). */
std::vector<double>
ranksOf(std::span<const double> values)
{
    std::vector<std::size_t> order(values.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&values](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });
    std::vector<double> ranks(values.size());
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() &&
               values[order[j + 1]] == values[order[i]]) {
            ++j;
        }
        const double rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
            1.0;
        for (std::size_t t = i; t <= j; ++t)
            ranks[order[t]] = rank;
        i = j + 1;
    }
    return ranks;
}

} // namespace

double
spearman(std::span<const double> xs, std::span<const double> ys)
{
    require(xs.size() == ys.size(), "spearman: size mismatch");
    const std::vector<double> rx = ranksOf(xs);
    const std::vector<double> ry = ranksOf(ys);
    return pearson(rx, ry);
}

double
percentile(std::vector<double> values, double p)
{
    require(p >= 0.0 && p <= 100.0, "percentile: p out of range");
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace slo::core
