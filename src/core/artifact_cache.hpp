/**
 * @file
 * On-disk cache for generated matrices and computed orderings.
 *
 * The bench harness is one binary per paper table/figure; without a
 * cache every binary would regenerate the 50-matrix corpus and recompute
 * every ordering. Artifacts are keyed by a caller-provided string that
 * encodes the generator parameters and scale, and stored under
 * $SLO_CACHE_DIR (default: <tmp>/slo-artifact-cache). Set SLO_NO_CACHE=1
 * to disable.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::core
{

/** Cache root directory (created on demand). */
std::string cacheDir();

/** @return false when SLO_NO_CACHE=1. */
bool cacheEnabled();

/** Sanitized, collision-safe filename stem for @p key. */
std::string cacheFileStem(const std::string &key);

/** Load the CSR cached under @p key, or build and cache it. */
Csr loadOrBuildCsr(const std::string &key,
                   const std::function<Csr()> &build);

/** Load the index vector cached under @p key, or build and cache it. */
std::vector<Index> loadOrBuildIndexVector(
    const std::string &key,
    const std::function<std::vector<Index>()> &build);

/** Unconditionally (over)write the index vector cached under @p key. */
void storeIndexVector(const std::string &key,
                      const std::vector<Index> &vec);

/** Load the permutation cached under @p key, or build and cache it. */
Permutation loadOrBuildPerm(const std::string &key,
                            const std::function<Permutation()> &build);

} // namespace slo::core
