/**
 * @file
 * On-disk cache for generated matrices and computed orderings.
 *
 * The bench harness is one binary per paper table/figure; without a
 * cache every binary would regenerate the 50-matrix corpus and recompute
 * every ordering. Artifacts are keyed by a caller-provided string that
 * encodes the generator parameters and scale, and stored under
 * $SLO_CACHE_DIR (default: <tmp>/slo-artifact-cache). Set SLO_NO_CACHE=1
 * to disable.
 */

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"

namespace slo::core
{

/** Cache root directory (created on demand). */
std::string cacheDir();

/** @return false when SLO_NO_CACHE=1. */
bool cacheEnabled();

/** Sanitized, collision-safe filename stem for @p key. */
std::string cacheFileStem(const std::string &key);

/**
 * Exclusive advisory lock on @p key's cache slot (flock on a sidecar
 * .lock file), held for the object's lifetime. Excludes both other
 * processes and other threads of this process (each holder opens its
 * own descriptor), so concurrent benches build a missing artifact once
 * instead of racing; writers pair it with write-to-temp + rename so a
 * reader never sees a torn file. No-op when the cache is disabled.
 */
class CacheKeyLock
{
  public:
    explicit CacheKeyLock(const std::string &key);
    ~CacheKeyLock();

    CacheKeyLock(const CacheKeyLock &) = delete;
    CacheKeyLock &operator=(const CacheKeyLock &) = delete;

  private:
    std::string stem_;
    int fd_ = -1;
};

/** Load the CSR cached under @p key, or build and cache it. */
Csr loadOrBuildCsr(const std::string &key,
                   const std::function<Csr()> &build);

/**
 * Load the index vector cached under @p key if present and intact
 * (nullopt when missing, corrupt, or the cache is disabled). Callers
 * that need multi-artifact coherence hold a CacheKeyLock across the
 * loads and stores.
 */
std::optional<std::vector<Index>> tryLoadIndexVector(
    const std::string &key);

/** Load the index vector cached under @p key, or build and cache it. */
std::vector<Index> loadOrBuildIndexVector(
    const std::string &key,
    const std::function<std::vector<Index>()> &build);

/** Unconditionally (over)write the index vector cached under @p key. */
void storeIndexVector(const std::string &key,
                      const std::vector<Index> &vec);

/** Load the permutation cached under @p key, or build and cache it. */
Permutation loadOrBuildPerm(const std::string &key,
                            const std::function<Permutation()> &build);

} // namespace slo::core
