/**
 * @file
 * In-memory artifact store: sharded, size-bounded, LRU-evicting.
 *
 * The on-disk artifact cache (artifact_cache.hpp) makes repeat *runs*
 * cheap; a long-lived server additionally needs repeat *requests* to be
 * cheap without a filesystem round trip, and needs its memory use
 * bounded under arbitrary traffic. `ArtifactStore` is that promotion:
 * payloads (permutation index vectors) are held in N independently
 * locked shards, each shard keeps an LRU list and evicts from the cold
 * end whenever its byte budget is exceeded, and an admission filter
 * rejects payloads so large that caching them would evict a whole
 * shard's working set.
 *
 * `getOrBuild` is single-flight at two levels, reusing the existing
 * per-key machinery:
 *
 *   - in-process: a per-key build registration + condition variable, so
 *     concurrent threads asking for one missing key run the builder
 *     exactly once (the rest wait for the result, they never spin on
 *     the disk cache);
 *   - cross-process: the builder runs under `CacheKeyLock` (flock) with
 *     read-through/write-through to the on-disk cache, so concurrent
 *     *daemons* sharing SLO_CACHE_DIR also build exactly once.
 *
 * Payloads are returned as shared_ptr-to-const: eviction never
 * invalidates a result a caller is still holding.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "obs/json.hpp"

namespace slo::core
{

class ArtifactStore
{
  public:
    using Payload = std::shared_ptr<const std::vector<Index>>;
    using Builder = std::function<std::vector<Index>()>;

    struct Options
    {
        /** Total byte budget across all shards. */
        std::size_t maxBytes = 64ull << 20;
        /** Shard count (clamped to >= 1); keys hash to shards. */
        int shards = 8;
        /**
         * Admission control: a payload larger than maxBytes /
         * admitDivisor is served but never cached (caching it would
         * evict a whole shard's worth of hot entries).
         */
        std::size_t admitDivisor = 8;
        /** Mirror builds into the on-disk artifact cache. */
        bool diskWriteThrough = true;
    };

    ArtifactStore(); ///< default Options
    explicit ArtifactStore(Options options);
    ~ArtifactStore(); ///< out-of-line: Shard is incomplete here

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Look up @p key; on a miss run @p build exactly once per key
     * across this process's threads (and, via CacheKeyLock + the disk
     * cache, across processes) and admit the result. A builder
     * exception propagates to every waiter of that flight.
     */
    Payload getOrBuild(const std::string &key, const Builder &build);

    /** Memory-only lookup (touches LRU); nullptr on miss. */
    Payload get(const std::string &key);

    /**
     * Admission-controlled insert (takes LRU headroom by evicting).
     * @return false when the payload failed admission.
     */
    bool put(const std::string &key, Payload payload);

    /** Drop every cached entry (keeps counters). */
    void clear();

    std::size_t entryCount() const;
    std::size_t byteCount() const;
    const Options &options() const { return options_; }

    /**
     * {"entries","bytes","max_bytes","shards","hits","misses",
     *  "disk_hits","builds","evictions","admission_rejects",
     *  "coalesced_waits"} — lifetime totals (also exported as
     *  `artifact_store.*` obs counters).
     */
    obs::Json statsJson() const;

  private:
    struct Entry
    {
        std::string key;
        Payload payload;
        std::size_t bytes = 0;
    };

    /** One in-process build flight; waiters block on the shard cv. */
    struct Flight;

    struct Shard;

    Shard &shardFor(const std::string &key);

    /** Insert under the shard lock; evicts from the LRU cold end. */
    void admitLocked(Shard &shard, const std::string &key,
                     Payload payload, std::size_t bytes);

    static std::size_t payloadBytes(const std::vector<Index> &vec);

    Options options_;
    std::size_t shardBudget_ = 0; ///< maxBytes / shard count
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace slo::core
