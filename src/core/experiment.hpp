/**
 * @file
 * Experiment runner shared by the benchmark harnesses.
 *
 * Wraps the full pipeline — corpus construction, ordering computation
 * (with on-disk caching of permutations and measured reorder times),
 * community analysis, matrix permutation, and GPU simulation — behind a
 * handful of calls so each bench binary reads like the experiment it
 * reproduces.
 */

#pragma once

#include <chrono>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "community/clustering.hpp"
#include "core/dataset.hpp"
#include "gpu/simulate.hpp"
#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"
#include "reorder/reorder.hpp"

namespace slo::core
{

/** Simple wall-clock timer. */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedSeconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** A corpus matrix materialized at some scale. */
struct CorpusMatrix
{
    DatasetEntry entry;
    Csr original;
};

/**
 * Build (or load from cache) the whole corpus at @p scale. Progress is
 * logged to @p progress when non-null (corpus generation can take a
 * minute cold).
 */
std::vector<CorpusMatrix> loadCorpus(Scale scale,
                                     std::ostream *progress = nullptr);

/** An ordering together with its measured pre-processing cost. */
struct TimedOrdering
{
    Permutation perm;
    double reorderSeconds = 0.0;
};

/**
 * Compute (or load from cache) the ordering of @p technique for a
 * corpus matrix. The measured reordering time is cached alongside the
 * permutation so repeat runs report the original measurement.
 */
TimedOrdering orderingFor(const DatasetEntry &entry, const Csr &original,
                          Scale scale, reorder::Technique technique,
                          const reorder::ReorderOptions &options = {});

/** RABBIT artifacts needed by the Sec. V / VI analyses. */
struct RabbitArtifacts
{
    Permutation perm;
    community::Clustering clustering;
    double reorderSeconds = 0.0;
    double insularity = 0.0; ///< of `clustering` on the matrix
};

/** Compute (or load) the RABBIT ordering + communities + insularity. */
RabbitArtifacts rabbitArtifactsFor(const DatasetEntry &entry,
                                   const Csr &original, Scale scale);

/**
 * Permute @p original by @p perm and simulate @p sim_options on
 * @p spec. The permuted matrix is built on the fly (cheap relative to
 * simulation).
 */
gpu::SimReport simulateOrdered(const Csr &original,
                               const Permutation &perm,
                               const gpu::GpuSpec &spec,
                               const gpu::SimOptions &sim_options = {});

} // namespace slo::core
