/**
 * @file
 * Experiment runner shared by the benchmark harnesses.
 *
 * Wraps the full pipeline — corpus construction, ordering computation
 * (with on-disk caching of permutations and measured reorder times),
 * community analysis, matrix permutation, and GPU simulation — behind a
 * handful of calls so each bench binary reads like the experiment it
 * reproduces.
 */

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "community/clustering.hpp"
#include "core/dataset.hpp"
#include "gpu/simulate.hpp"
#include "matrix/csr.hpp"
#include "matrix/permutation.hpp"
#include "reorder/reorder.hpp"

namespace slo::core
{

/** A corpus matrix materialized at some scale. */
struct CorpusMatrix
{
    DatasetEntry entry;
    Csr original;
};

/** Optional pre-build corpus selection (REPRO_LIMIT/REPRO_MATRICES). */
struct CorpusFilter
{
    std::size_t limit = 0;          ///< 0 = no limit
    std::vector<std::string> names; ///< empty = all
};

/**
 * Build (or load from cache) the corpus at @p scale, restricted to
 * @p filter *before* any matrix is built (so a limited run never pays
 * generation cost for matrices it will not use). Progress is logged
 * through the obs logger (`SLO_LOG`), and per-matrix build times are
 * recorded in the run manifest.
 */
std::vector<CorpusMatrix> loadCorpus(Scale scale,
                                     const CorpusFilter &filter = {});

/** An ordering together with its measured pre-processing cost. */
struct TimedOrdering
{
    Permutation perm;
    double reorderSeconds = 0.0;
};

/**
 * Compute (or load from cache) the ordering of @p technique for a
 * corpus matrix. The measured reordering time is cached alongside the
 * permutation so repeat runs report the original measurement.
 */
TimedOrdering orderingFor(const DatasetEntry &entry, const Csr &original,
                          Scale scale, reorder::Technique technique,
                          const reorder::ReorderOptions &options = {});

/** RABBIT artifacts needed by the Sec. V / VI analyses. */
struct RabbitArtifacts
{
    Permutation perm;
    community::Clustering clustering;
    double reorderSeconds = 0.0;
    double insularity = 0.0; ///< of `clustering` on the matrix
};

/** Compute (or load) the RABBIT ordering + communities + insularity. */
RabbitArtifacts rabbitArtifactsFor(const DatasetEntry &entry,
                                   const Csr &original, Scale scale);

/**
 * Permute @p original by @p perm and simulate @p sim_options on
 * @p spec. The permuted matrix is built on the fly (cheap relative to
 * simulation). The report is attributed in the run manifest to the
 * sticky (thread-local) `obs::context("matrix")`; parallel callers
 * should prefer simulateOrderedAs, which takes the matrix explicitly.
 */
gpu::SimReport simulateOrdered(const Csr &original,
                               const Permutation &perm,
                               const gpu::GpuSpec &spec,
                               const gpu::SimOptions &sim_options = {});

/**
 * simulateOrdered with explicit manifest attribution to @p matrix
 * (empty = unattributed). This is the form core::runGrid cells use:
 * thread-local sticky context does not survive hand-off between pool
 * workers, so fan-out code passes the matrix name through instead.
 */
gpu::SimReport simulateOrderedAs(const std::string &matrix,
                                 const Csr &original,
                                 const Permutation &perm,
                                 const gpu::GpuSpec &spec,
                                 const gpu::SimOptions &sim_options = {});

} // namespace slo::core
