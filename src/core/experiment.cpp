#include "core/experiment.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "community/metrics.hpp"
#include "core/artifact_cache.hpp"
#include "reorder/rabbit.hpp"

namespace slo::core
{

namespace
{

/** Load a cached double (measured time) if present. */
std::optional<double>
loadCachedDouble(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    std::ifstream in(path);
    double value = 0.0;
    if (in >> value)
        return value;
    return std::nullopt;
}

void
storeCachedDouble(const std::string &key, double value)
{
    if (!cacheEnabled())
        return;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    std::ofstream out(path);
    out.precision(17);
    out << value << '\n';
}

/** Cache-key suffix identifying the option values a technique uses. */
std::string
optionSuffix(reorder::Technique technique,
             const reorder::ReorderOptions &options)
{
    using reorder::Technique;
    switch (technique) {
      case Technique::Random:
        return "-seed" + std::to_string(options.seed);
      case Technique::Gorder:
        return "-w" + std::to_string(options.gorderWindow) + "-cap" +
               std::to_string(options.gorderHubCap);
      case Technique::SlashBurn:
        return "-k" + std::to_string(options.slashburnK);
      case Technique::Partition:
        return "-p" + std::to_string(options.partitionParts) + "-seed" +
               std::to_string(options.seed);
      case Technique::RabbitPlusPlus:
        return std::string("-gi") +
               (options.groupInsular ? "1" : "0") + "-ht" +
               std::to_string(static_cast<int>(options.hubTreatment)) +
               "-hf" + std::to_string(options.hubDegreeFactor);
      default:
        return "";
    }
}

} // namespace

std::vector<CorpusMatrix>
loadCorpus(Scale scale, std::ostream *progress)
{
    std::vector<CorpusMatrix> corpus;
    for (const DatasetEntry &entry : paperCorpus(scale)) {
        if (progress != nullptr)
            *progress << "[corpus] building " << entry.name << "...\n";
        Csr matrix = entry.build(scale);
        corpus.push_back({entry, std::move(matrix)});
    }
    return corpus;
}

TimedOrdering
orderingFor(const DatasetEntry &entry, const Csr &original, Scale scale,
            reorder::Technique technique,
            const reorder::ReorderOptions &options)
{
    const std::string key = entry.cacheKey(scale) + "-perm-" +
                            reorder::techniqueName(technique) +
                            optionSuffix(technique, options);
    TimedOrdering result;
    double measured = -1.0;
    result.perm = loadOrBuildPerm(key, [&] {
        const Timer timer;
        Permutation perm =
            reorder::computeOrdering(technique, original, options);
        measured = timer.elapsedSeconds();
        return perm;
    });
    if (measured >= 0.0) {
        storeCachedDouble(key + "-time", measured);
        result.reorderSeconds = measured;
    } else {
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    }
    return result;
}

RabbitArtifacts
rabbitArtifactsFor(const DatasetEntry &entry, const Csr &original,
                   Scale scale)
{
    const std::string key =
        entry.cacheKey(scale) + "-perm-RABBIT";
    RabbitArtifacts result;
    double measured = -1.0;
    std::vector<Index> labels;
    result.perm = loadOrBuildPerm(key, [&] {
        const Timer timer;
        reorder::RabbitResult rabbit = reorder::rabbitOrder(original);
        measured = timer.elapsedSeconds();
        labels = rabbit.clustering.labels();
        return rabbit.perm;
    });
    if (!labels.empty()) {
        // Fresh run: persist the labels and time too (overwriting any
        // stale leftovers from an interrupted earlier run).
        storeIndexVector(key + "-labels", labels);
        storeCachedDouble(key + "-time", measured);
        result.reorderSeconds = measured;
        result.clustering = community::Clustering(std::move(labels));
    } else {
        result.clustering =
            community::Clustering(loadOrBuildIndexVector(
                key + "-labels", [&] {
                    // Cache miss on labels only: recompute.
                    return reorder::rabbitOrder(original)
                        .clustering.labels();
                }));
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    }
    result.insularity =
        community::insularity(original, result.clustering);
    return result;
}

gpu::SimReport
simulateOrdered(const Csr &original, const Permutation &perm,
                const gpu::GpuSpec &spec,
                const gpu::SimOptions &sim_options)
{
    const Csr reordered = original.permutedSymmetric(perm);
    return gpu::simulateKernel(reordered, spec, sim_options);
}

} // namespace slo::core
