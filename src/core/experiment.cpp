#include "core/experiment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "community/metrics.hpp"
#include "core/artifact_cache.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "prof/prof.hpp"
#include "reorder/rabbit.hpp"

namespace slo::core
{

namespace
{

/** Load a cached double (measured time) if present. */
std::optional<double>
loadCachedDouble(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    std::ifstream in(path);
    double value = 0.0;
    if (in >> value)
        return value;
    return std::nullopt;
}

void
storeCachedDouble(const std::string &key, double value)
{
    if (!cacheEnabled())
        return;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    // Write-to-temp + rename so a concurrent reader never sees a torn
    // value; the pid suffix keeps racing processes off each other's tmp.
    const std::filesystem::path tmp =
        path.string() + "." + std::to_string(::getpid()) + ".tmp";
    {
        std::ofstream out(tmp);
        out.precision(17);
        out << value << '\n';
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

/** Cache-key suffix identifying the option values a technique uses. */
std::string
optionSuffix(reorder::Technique technique,
             const reorder::ReorderOptions &options)
{
    using reorder::Technique;
    switch (technique) {
      case Technique::Random:
        return "-seed" + std::to_string(options.seed);
      case Technique::Gorder:
        return "-w" + std::to_string(options.gorderWindow) + "-cap" +
               std::to_string(options.gorderHubCap);
      case Technique::SlashBurn:
        return "-k" + std::to_string(options.slashburnK);
      case Technique::Partition:
        return "-p" + std::to_string(options.partitionParts) + "-seed" +
               std::to_string(options.seed);
      case Technique::RabbitPlusPlus:
        return std::string("-gi") +
               (options.groupInsular ? "1" : "0") + "-ht" +
               std::to_string(static_cast<int>(options.hubTreatment)) +
               "-hf" + std::to_string(options.hubDegreeFactor);
      default:
        return "";
    }
}

} // namespace

std::vector<CorpusMatrix>
loadCorpus(Scale scale, const CorpusFilter &filter)
{
    SLO_SPAN("corpus.load");
    std::vector<DatasetEntry> entries = paperCorpus(scale);
    if (!filter.names.empty()) {
        std::vector<DatasetEntry> selected;
        for (DatasetEntry &entry : entries) {
            if (std::find(filter.names.begin(), filter.names.end(),
                          entry.name) != filter.names.end())
                selected.push_back(std::move(entry));
        }
        entries = std::move(selected);
    }
    if (filter.limit > 0 && filter.limit < entries.size())
        entries.resize(filter.limit);

    // Build concurrently, gather by index: the returned corpus order is
    // the dataset order no matter how many threads ran. grain=1 because
    // each build is coarse (matrix generation or cache read).
    std::vector<CorpusMatrix> corpus(entries.size());
    par::parallelFor(
        std::size_t{0}, entries.size(),
        [&](std::size_t i) {
            DatasetEntry &entry = entries[i];
            SLO_LOG_INFO("corpus", "building " << entry.name << "...");
            obs::setContext("matrix", entry.name);
            const obs::Span span("corpus.build:" + entry.name);
            Csr matrix = [&] {
                const prof::ScopedCounters counters(entry.name,
                                                    "corpus.build");
                return entry.build(scale);
            }();
            obs::RunManifest::instance().recordPhase(
                entry.name, "corpus.build", span.elapsedSeconds());
            corpus[i] = {std::move(entry), std::move(matrix)};
        },
        par::ForOptions{1});
    return corpus;
}

TimedOrdering
orderingFor(const DatasetEntry &entry, const Csr &original, Scale scale,
            reorder::Technique technique,
            const reorder::ReorderOptions &options)
{
    const std::string technique_name = reorder::techniqueName(technique);
    const std::string key = entry.cacheKey(scale) + "-perm-" +
                            technique_name +
                            optionSuffix(technique, options);
    obs::setContext("matrix", entry.name);
    SLO_SPAN("reorder.ordering_for:" + technique_name);
    // One lock spans the perm and its companion time entry so a reader
    // never pairs a fresh permutation with a stale measurement.
    const CacheKeyLock lock(key);
    TimedOrdering result;
    double measured = -1.0;
    result.perm = loadOrBuildPerm(key, [&] {
        const obs::Span span("reorder.compute:" + technique_name);
        const prof::ScopedCounters counters(
            entry.name, "reorder." + technique_name);
        Permutation perm =
            reorder::computeOrdering(technique, original, options);
        measured = span.elapsedSeconds();
        prof::latencyHistogram("reorder.seconds").record(measured);
        return perm;
    });
    if (measured >= 0.0) {
        obs::counter("perm_cache.misses").add();
        storeCachedDouble(key + "-time", measured);
        result.reorderSeconds = measured;
    } else {
        obs::counter("perm_cache.hits").add();
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    }
    obs::RunManifest::instance().recordPhase(
        entry.name, "reorder." + technique_name, result.reorderSeconds);
    return result;
}

RabbitArtifacts
rabbitArtifactsFor(const DatasetEntry &entry, const Csr &original,
                   Scale scale)
{
    const std::string key =
        entry.cacheKey(scale) + "-perm-RABBIT";
    obs::setContext("matrix", entry.name);
    SLO_SPAN("reorder.rabbit_artifacts");
    RabbitArtifacts result;
    // The perm, labels, and time entries describe one computation and
    // are only meaningful together: hold the key lock across all three
    // so a miss on any of them triggers exactly one recomputation whose
    // results replace the whole trio atomically (each store is
    // temp+rename, so readers see old-or-new, never torn).
    const CacheKeyLock lock(key);
    std::optional<std::vector<Index>> perm_ids = tryLoadIndexVector(key);
    std::optional<std::vector<Index>> labels =
        tryLoadIndexVector(key + "-labels");
    if (perm_ids.has_value() && labels.has_value()) {
        obs::counter("perm_cache.hits").add();
        result.perm = Permutation(*std::move(perm_ids));
        result.clustering = community::Clustering(*std::move(labels));
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    } else {
        obs::counter("perm_cache.misses").add();
        const obs::Span span("reorder.compute:RABBIT");
        reorder::RabbitResult rabbit = [&] {
            const prof::ScopedCounters counters(entry.name,
                                                "reorder.RABBIT");
            return reorder::rabbitOrder(original);
        }();
        result.reorderSeconds = span.elapsedSeconds();
        prof::latencyHistogram("reorder.seconds")
            .record(result.reorderSeconds);
        storeIndexVector(key, rabbit.perm.newIds());
        storeIndexVector(key + "-labels", rabbit.clustering.labels());
        storeCachedDouble(key + "-time", result.reorderSeconds);
        result.perm = std::move(rabbit.perm);
        result.clustering = std::move(rabbit.clustering);
    }
    obs::RunManifest::instance().recordPhase(
        entry.name, "reorder.RABBIT", result.reorderSeconds);
    {
        SLO_SPAN("community.insularity");
        result.insularity =
            community::insularity(original, result.clustering);
    }
    obs::gauge("rabbit.communities")
        .set(static_cast<double>(result.clustering.numCommunities()));
    return result;
}

gpu::SimReport
simulateOrderedAs(const std::string &matrix, const Csr &original,
                  const Permutation &perm, const gpu::GpuSpec &spec,
                  const gpu::SimOptions &sim_options)
{
    const obs::Span span("simulate.ordered");
    const prof::ScopedCounters counters(matrix, "simulate");
    Csr reordered = [&] {
        SLO_SPAN("simulate.permute");
        return original.permutedSymmetric(perm);
    }();
    const gpu::SimReport report = [&] {
        const prof::ScopedLatency timed(
            prof::latencyHistogram("simulate.seconds"));
        return gpu::simulateKernel(reordered, spec, sim_options);
    }();
    if (!matrix.empty()) {
        obs::RunManifest::instance().recordPhase(
            matrix, "simulate", span.elapsedSeconds());
        obs::RunManifest::instance().addSimulation(
            matrix, gpu::simReportJson(report));
    }
    return report;
}

gpu::SimReport
simulateOrdered(const Csr &original, const Permutation &perm,
                const gpu::GpuSpec &spec,
                const gpu::SimOptions &sim_options)
{
    // Attribute the report to the matrix the calling thread last
    // touched (sticky context set by loadCorpus/orderingFor); benches
    // that simulate outside the per-matrix loop go unattributed.
    return simulateOrderedAs(obs::context("matrix"), original, perm,
                             spec, sim_options);
}

} // namespace slo::core
