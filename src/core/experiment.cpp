#include "core/experiment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "community/metrics.hpp"
#include "core/artifact_cache.hpp"
#include "obs/obs.hpp"
#include "reorder/rabbit.hpp"

namespace slo::core
{

namespace
{

/** Load a cached double (measured time) if present. */
std::optional<double>
loadCachedDouble(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    std::ifstream in(path);
    double value = 0.0;
    if (in >> value)
        return value;
    return std::nullopt;
}

void
storeCachedDouble(const std::string &key, double value)
{
    if (!cacheEnabled())
        return;
    const std::filesystem::path path =
        std::filesystem::path(cacheDir()) /
        (cacheFileStem(key) + ".txt");
    std::ofstream out(path);
    out.precision(17);
    out << value << '\n';
}

/** Cache-key suffix identifying the option values a technique uses. */
std::string
optionSuffix(reorder::Technique technique,
             const reorder::ReorderOptions &options)
{
    using reorder::Technique;
    switch (technique) {
      case Technique::Random:
        return "-seed" + std::to_string(options.seed);
      case Technique::Gorder:
        return "-w" + std::to_string(options.gorderWindow) + "-cap" +
               std::to_string(options.gorderHubCap);
      case Technique::SlashBurn:
        return "-k" + std::to_string(options.slashburnK);
      case Technique::Partition:
        return "-p" + std::to_string(options.partitionParts) + "-seed" +
               std::to_string(options.seed);
      case Technique::RabbitPlusPlus:
        return std::string("-gi") +
               (options.groupInsular ? "1" : "0") + "-ht" +
               std::to_string(static_cast<int>(options.hubTreatment)) +
               "-hf" + std::to_string(options.hubDegreeFactor);
      default:
        return "";
    }
}

} // namespace

std::vector<CorpusMatrix>
loadCorpus(Scale scale, const CorpusFilter &filter)
{
    SLO_SPAN("corpus.load");
    std::vector<DatasetEntry> entries = paperCorpus(scale);
    if (!filter.names.empty()) {
        std::vector<DatasetEntry> selected;
        for (DatasetEntry &entry : entries) {
            if (std::find(filter.names.begin(), filter.names.end(),
                          entry.name) != filter.names.end())
                selected.push_back(std::move(entry));
        }
        entries = std::move(selected);
    }
    if (filter.limit > 0 && filter.limit < entries.size())
        entries.resize(filter.limit);

    std::vector<CorpusMatrix> corpus;
    corpus.reserve(entries.size());
    for (DatasetEntry &entry : entries) {
        SLO_LOG_INFO("corpus", "building " << entry.name << "...");
        obs::setContext("matrix", entry.name);
        const obs::Span span("corpus.build:" + entry.name);
        Csr matrix = entry.build(scale);
        obs::RunManifest::instance().recordPhase(
            entry.name, "corpus.build", span.elapsedSeconds());
        corpus.push_back({std::move(entry), std::move(matrix)});
    }
    return corpus;
}

TimedOrdering
orderingFor(const DatasetEntry &entry, const Csr &original, Scale scale,
            reorder::Technique technique,
            const reorder::ReorderOptions &options)
{
    const std::string technique_name = reorder::techniqueName(technique);
    const std::string key = entry.cacheKey(scale) + "-perm-" +
                            technique_name +
                            optionSuffix(technique, options);
    obs::setContext("matrix", entry.name);
    SLO_SPAN("reorder.ordering_for:" + technique_name);
    TimedOrdering result;
    double measured = -1.0;
    result.perm = loadOrBuildPerm(key, [&] {
        const obs::Span span("reorder.compute:" + technique_name);
        Permutation perm =
            reorder::computeOrdering(technique, original, options);
        measured = span.elapsedSeconds();
        return perm;
    });
    if (measured >= 0.0) {
        obs::counter("perm_cache.misses").add();
        storeCachedDouble(key + "-time", measured);
        result.reorderSeconds = measured;
    } else {
        obs::counter("perm_cache.hits").add();
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    }
    obs::RunManifest::instance().recordPhase(
        entry.name, "reorder." + technique_name, result.reorderSeconds);
    return result;
}

RabbitArtifacts
rabbitArtifactsFor(const DatasetEntry &entry, const Csr &original,
                   Scale scale)
{
    const std::string key =
        entry.cacheKey(scale) + "-perm-RABBIT";
    obs::setContext("matrix", entry.name);
    SLO_SPAN("reorder.rabbit_artifacts");
    RabbitArtifacts result;
    double measured = -1.0;
    std::vector<Index> labels;
    result.perm = loadOrBuildPerm(key, [&] {
        const obs::Span span("reorder.compute:RABBIT");
        reorder::RabbitResult rabbit = reorder::rabbitOrder(original);
        measured = span.elapsedSeconds();
        labels = rabbit.clustering.labels();
        return rabbit.perm;
    });
    if (!labels.empty()) {
        // Fresh run: persist the labels and time too (overwriting any
        // stale leftovers from an interrupted earlier run).
        obs::counter("perm_cache.misses").add();
        storeIndexVector(key + "-labels", labels);
        storeCachedDouble(key + "-time", measured);
        result.reorderSeconds = measured;
        result.clustering = community::Clustering(std::move(labels));
    } else {
        obs::counter("perm_cache.hits").add();
        result.clustering =
            community::Clustering(loadOrBuildIndexVector(
                key + "-labels", [&] {
                    // Cache miss on labels only: recompute.
                    return reorder::rabbitOrder(original)
                        .clustering.labels();
                }));
        result.reorderSeconds =
            loadCachedDouble(key + "-time").value_or(0.0);
    }
    obs::RunManifest::instance().recordPhase(
        entry.name, "reorder.RABBIT", result.reorderSeconds);
    {
        SLO_SPAN("community.insularity");
        result.insularity =
            community::insularity(original, result.clustering);
    }
    obs::gauge("rabbit.communities")
        .set(static_cast<double>(result.clustering.numCommunities()));
    return result;
}

gpu::SimReport
simulateOrdered(const Csr &original, const Permutation &perm,
                const gpu::GpuSpec &spec,
                const gpu::SimOptions &sim_options)
{
    const obs::Span span("simulate.ordered");
    Csr reordered = [&] {
        SLO_SPAN("simulate.permute");
        return original.permutedSymmetric(perm);
    }();
    const gpu::SimReport report =
        gpu::simulateKernel(reordered, spec, sim_options);
    // Attribute the report to the matrix the pipeline last touched
    // (sticky context set by loadCorpus/orderingFor); benches that
    // simulate outside the per-matrix loop simply go unattributed.
    const std::string matrix = obs::context("matrix");
    if (!matrix.empty()) {
        obs::RunManifest::instance().recordPhase(
            matrix, "simulate", span.elapsedSeconds());
        obs::RunManifest::instance().addSimulation(
            matrix, gpu::simReportJson(report));
    }
    return report;
}

} // namespace slo::core
