#include "check/check.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace slo::check
{

namespace
{

Level
levelFromEnv()
{
    const char *env = std::getenv("SLO_CHECK_LEVEL");
    if (env == nullptr)
        return Level::Cheap;
    return parseLevel(env, Level::Cheap);
}

std::atomic<Level> &
activeLevel()
{
    static std::atomic<Level> level{levelFromEnv()};
    return level;
}

/** Where the JSON violation report goes, or "" for nowhere. */
std::string
reportPath()
{
    const char *report = std::getenv("SLO_CHECK_REPORT");
    if (report != nullptr && *report != '\0')
        return report;
    const char *dir = std::getenv("SLO_OBS_DIR");
    if (dir != nullptr && *dir != '\0')
        return std::string(dir) + "/check_violation.json";
    return {};
}

} // namespace

Level
level()
{
    return activeLevel().load(std::memory_order_relaxed);
}

void
setLevel(Level level)
{
    activeLevel().store(level, std::memory_order_relaxed);
}

Level
parseLevel(std::string_view text, Level fallback)
{
    if (text == "off" || text == "0")
        return Level::Off;
    if (text == "cheap" || text == "1")
        return Level::Cheap;
    if (text == "full" || text == "2")
        return Level::Full;
    return fallback;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Off: return "off";
      case Level::Cheap: return "cheap";
      case Level::Full: return "full";
    }
    return "cheap";
}

Context &
Context::add(std::string key, std::int64_t value)
{
    entries_.emplace_back(std::move(key), obs::Json(value).dump());
    return *this;
}

Context &
Context::add(std::string key, std::uint64_t value)
{
    entries_.emplace_back(std::move(key), obs::Json(value).dump());
    return *this;
}

Context &
Context::add(std::string key, double value)
{
    entries_.emplace_back(std::move(key), obs::Json(value).dump());
    return *this;
}

Context &
Context::add(std::string key, std::string value)
{
    entries_.emplace_back(std::move(key),
                          obs::Json(std::move(value)).dump());
    return *this;
}

std::string
Context::toJson() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i != 0)
            out += ",";
        out += obs::Json(entries_[i].first).dump();
        out += ":";
        out += entries_[i].second;
    }
    out += "}";
    return out;
}

ContractViolation::ContractViolation(std::string what, std::string file,
                                     int line)
    : std::invalid_argument(std::move(what)), file_(std::move(file)),
      line_(line)
{
}

void
fail(const char *file, int line, const char *expr,
     std::string_view component, const std::string &message,
     const Context &context)
{
    obs::counter("check.violations").add();

    std::ostringstream what;
    what << "contract violation [" << component << "] " << message
         << " (" << expr << ") at " << file << ":" << line;
    if (!context.empty())
        what << " context=" << context.toJson();

    SLO_LOG_ERROR(component, what.str());

    // Machine-readable report for tooling (check_smoke schema-checks it).
    if (const std::string path = reportPath(); !path.empty()) {
        obs::Json report = obs::Json::object();
        report["schema"] = "slo.check-violation/1";
        report["component"] = std::string(component);
        report["file"] = file;
        report["line"] = line;
        report["expression"] = expr;
        report["message"] = message;
        report["check_level"] = levelName(level());
        obs::Json ctx = obs::Json::object();
        for (const auto &[key, encoded] : context.entries()) {
            if (auto value = obs::Json::parse(encoded))
                ctx[key] = *value;
        }
        report["context"] = std::move(ctx);
        std::ofstream out(path);
        if (out)
            out << report.dump(2) << '\n';
    }

    throw ContractViolation(what.str(), file, line);
}

} // namespace slo::check
