/**
 * @file
 * Contract validators for the library's core data structures.
 *
 * These operate on the raw arrays (spans) rather than the owning
 * classes so the check layer stays at the bottom of the dependency
 * graph: matrix/community/reorder code hands in its members and tags
 * the call with a `where` string that ends up in the violation report.
 *
 * Each validator is gated on check::level():
 *   off    return immediately
 *   cheap  linear non-allocating scans (sizes, ranges, monotonicity)
 *   full   allocating/deep validation (bijection mark arrays, per-row
 *          sortedness, label density, forest acyclicity)
 */

#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "check/check.hpp"
#include "matrix/types.hpp"

namespace slo::check
{

/**
 * Validate a destination-form permutation array (new_ids[old] == new).
 * cheap: size (against @p expected_size unless -1), ids in [0, n),
 * and — because a corrupt bijection silently reshuffles every
 * downstream traffic number — duplicate detection via a mark array.
 */
void checkPermutation(std::span<const Index> new_ids,
                      Index expected_size, std::string_view where);

/**
 * Validate CSR arrays.
 * cheap: row_offsets has num_rows+1 entries starting at 0 and ending
 * at nnz, monotone; col_indices in [0, num_cols); values length == nnz.
 * full: additionally requires ascending column ids per row when
 * @p require_sorted_rows.
 */
void checkCsr(Index num_rows, Index num_cols,
              std::span<const Offset> row_offsets,
              std::span<const Index> col_indices,
              std::size_t num_values, std::string_view where,
              bool require_sorted_rows = false);

/**
 * Validate COO arrays: parallel lengths, coordinates within
 * [0, num_rows) x [0, num_cols).
 */
void checkCoo(Index num_rows, Index num_cols,
              std::span<const Index> rows, std::span<const Index> cols,
              std::size_t num_values, std::string_view where);

/**
 * Validate a clustering label array.
 * cheap: labels in [0, num_communities).
 * full: when @p require_dense, every label in [0, num_communities)
 * occurs at least once (compacted clusterings promise density).
 */
void checkClustering(std::span<const Index> labels,
                     Index num_communities, std::string_view where,
                     bool require_dense = false);

/**
 * Validate a dendrogram parent array (parent[v], -1 for roots).
 * cheap: parents in [-1, n), no self-parent.
 * full: the parent pointers form a forest (acyclic).
 */
void checkDendrogram(std::span<const Index> parents,
                     std::string_view where);

} // namespace slo::check
