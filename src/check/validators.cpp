#include "check/validators.hpp"

#include <string>
#include <vector>

namespace slo::check
{

namespace
{

/** Standard context preamble shared by all validators. */
Context
baseContext(std::string_view where)
{
    Context ctx;
    ctx.add("where", std::string(where));
    return ctx;
}

} // namespace

void
checkPermutation(std::span<const Index> new_ids, Index expected_size,
                 std::string_view where)
{
    if (!enabled(Level::Cheap))
        return;
    const auto n = new_ids.size();
    Context ctx = baseContext(where);
    ctx.add("size", n);
    if (expected_size >= 0) {
        ctx.add("expected_size", expected_size);
        SLO_CHECK_CTX(n == static_cast<std::size_t>(expected_size),
                      "check.permutation", ctx,
                      where << ": permutation size mismatch");
    }
    std::vector<bool> seen(n, false);
    for (std::size_t old = 0; old < n; ++old) {
        const Index id = new_ids[old];
        if (id < 0 || static_cast<std::size_t>(id) >= n) {
            ctx.add("old_id", old);
            ctx.add("new_id", id);
            SLO_CHECK_CTX(false, "check.permutation", ctx,
                          where << ": new id out of range [0, " << n
                                << ")");
        }
        if (seen[static_cast<std::size_t>(id)]) {
            ctx.add("old_id", old);
            ctx.add("new_id", id);
            SLO_CHECK_CTX(false, "check.permutation", ctx,
                          where << ": duplicate new id (not a "
                                   "bijection)");
        }
        seen[static_cast<std::size_t>(id)] = true;
    }
}

void
checkCsr(Index num_rows, Index num_cols,
         std::span<const Offset> row_offsets,
         std::span<const Index> col_indices, std::size_t num_values,
         std::string_view where, bool require_sorted_rows)
{
    if (!enabled(Level::Cheap))
        return;
    Context ctx = baseContext(where);
    ctx.add("num_rows", num_rows);
    ctx.add("num_cols", num_cols);
    ctx.add("nnz", col_indices.size());
    SLO_CHECK_CTX(num_rows >= 0 && num_cols >= 0, "check.csr", ctx,
                  where << ": dimensions must be non-negative");
    SLO_CHECK_CTX(row_offsets.size() ==
                      static_cast<std::size_t>(num_rows) + 1,
                  "check.csr", ctx,
                  where << ": row_offsets must have num_rows+1 entries, "
                           "got "
                        << row_offsets.size());
    SLO_CHECK_CTX(row_offsets.front() == 0, "check.csr", ctx,
                  where << ": row_offsets[0] must be 0, got "
                        << row_offsets.front());
    SLO_CHECK_CTX(row_offsets.back() ==
                      static_cast<Offset>(col_indices.size()),
                  "check.csr", ctx,
                  where << ": row_offsets must end at nnz, got "
                        << row_offsets.back());
    SLO_CHECK_CTX(num_values == col_indices.size(), "check.csr", ctx,
                  where << ": values/col_indices length mismatch ("
                        << num_values << " vs " << col_indices.size()
                        << ")");
    for (std::size_t r = 0; r + 1 < row_offsets.size(); ++r) {
        if (row_offsets[r] > row_offsets[r + 1]) {
            ctx.add("row", r);
            ctx.add("offset", row_offsets[r]);
            ctx.add("next_offset", row_offsets[r + 1]);
            SLO_CHECK_CTX(false, "check.csr", ctx,
                          where << ": row_offsets not monotone at row "
                                << r);
        }
    }
    for (std::size_t i = 0; i < col_indices.size(); ++i) {
        const Index col = col_indices[i];
        if (col < 0 || col >= num_cols) {
            ctx.add("entry", i);
            ctx.add("col", col);
            SLO_CHECK_CTX(false, "check.csr", ctx,
                          where << ": column index out of range [0, "
                                << num_cols << ")");
        }
    }
    if (!enabled(Level::Full) || !require_sorted_rows)
        return;
    for (Index r = 0; r < num_rows; ++r) {
        const auto begin =
            static_cast<std::size_t>(row_offsets[static_cast<std::size_t>(r)]);
        const auto end = static_cast<std::size_t>(
            row_offsets[static_cast<std::size_t>(r) + 1]);
        for (std::size_t i = begin + 1; i < end; ++i) {
            if (col_indices[i - 1] > col_indices[i]) {
                ctx.add("row", r);
                ctx.add("entry", i);
                SLO_CHECK_CTX(false, "check.csr", ctx,
                              where << ": row " << r
                                    << " column ids not sorted");
            }
        }
    }
}

void
checkCoo(Index num_rows, Index num_cols, std::span<const Index> rows,
         std::span<const Index> cols, std::size_t num_values,
         std::string_view where)
{
    if (!enabled(Level::Cheap))
        return;
    Context ctx = baseContext(where);
    ctx.add("num_rows", num_rows);
    ctx.add("num_cols", num_cols);
    ctx.add("num_entries", rows.size());
    SLO_CHECK_CTX(num_rows >= 0 && num_cols >= 0, "check.coo", ctx,
                  where << ": dimensions must be non-negative");
    SLO_CHECK_CTX(rows.size() == cols.size() &&
                      rows.size() == num_values,
                  "check.coo", ctx,
                  where << ": row/col/value arrays must have equal "
                           "length");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] < 0 || rows[i] >= num_rows || cols[i] < 0 ||
            cols[i] >= num_cols) {
            ctx.add("entry", i);
            ctx.add("row", rows[i]);
            ctx.add("col", cols[i]);
            SLO_CHECK_CTX(false, "check.coo", ctx,
                          where << ": coordinate out of bounds");
        }
    }
}

void
checkClustering(std::span<const Index> labels, Index num_communities,
                std::string_view where, bool require_dense)
{
    if (!enabled(Level::Cheap))
        return;
    Context ctx = baseContext(where);
    ctx.add("num_nodes", labels.size());
    ctx.add("num_communities", num_communities);
    SLO_CHECK_CTX(num_communities >= 0, "check.clustering", ctx,
                  where << ": negative community count");
    SLO_CHECK_CTX(!(labels.empty() && num_communities > 0),
                  "check.clustering", ctx,
                  where << ": communities without nodes");
    for (std::size_t v = 0; v < labels.size(); ++v) {
        if (labels[v] < 0 || labels[v] >= num_communities) {
            ctx.add("node", v);
            ctx.add("label", labels[v]);
            SLO_CHECK_CTX(false, "check.clustering", ctx,
                          where << ": label out of range [0, "
                                << num_communities << ")");
        }
    }
    if (!enabled(Level::Full) || !require_dense)
        return;
    std::vector<bool> used(static_cast<std::size_t>(num_communities),
                           false);
    for (const Index label : labels)
        used[static_cast<std::size_t>(label)] = true;
    for (std::size_t label = 0; label < used.size(); ++label) {
        if (!used[label]) {
            ctx.add("unused_label", label);
            SLO_CHECK_CTX(false, "check.clustering", ctx,
                          where << ": labels not dense (label " << label
                                << " unused)");
        }
    }
}

void
checkDendrogram(std::span<const Index> parents, std::string_view where)
{
    if (!enabled(Level::Cheap))
        return;
    const auto n = parents.size();
    Context ctx = baseContext(where);
    ctx.add("num_nodes", n);
    for (std::size_t v = 0; v < n; ++v) {
        const Index p = parents[v];
        const bool valid =
            p == -1 || (p >= 0 && static_cast<std::size_t>(p) < n &&
                        p != static_cast<Index>(v));
        if (!valid) {
            ctx.add("node", v);
            ctx.add("parent", p);
            SLO_CHECK_CTX(false, "check.dendrogram", ctx,
                          where << ": invalid parent pointer");
        }
    }
    if (!enabled(Level::Full))
        return;
    // Acyclicity: follow parent chains, marking nodes whose path to a
    // root is already proven. 0 = unvisited, 1 = on current path,
    // 2 = proven.
    std::vector<unsigned char> state(n, 0);
    std::vector<Index> path;
    for (std::size_t start = 0; start < n; ++start) {
        if (state[start] != 0)
            continue;
        path.clear();
        Index v = static_cast<Index>(start);
        while (v != -1 && state[static_cast<std::size_t>(v)] == 0) {
            state[static_cast<std::size_t>(v)] = 1;
            path.push_back(v);
            v = parents[static_cast<std::size_t>(v)];
        }
        if (v != -1 && state[static_cast<std::size_t>(v)] == 1) {
            ctx.add("node", v);
            SLO_CHECK_CTX(false, "check.dendrogram", ctx,
                          where << ": parent pointers contain a cycle "
                                   "through node "
                                << v);
        }
        for (const Index u : path)
            state[static_cast<std::size_t>(u)] = 2;
    }
}

} // namespace slo::check
