/**
 * @file
 * Runtime contract checking for the pipeline's structural invariants.
 *
 * Every traffic number in the experiments rests on invariants the code
 * used to take on faith: permutations are bijections, CSR arrays are
 * coherent, dendrograms are forests, the cache simulator's state is
 * consistent. This header is the one place those contracts are stated
 * and enforced:
 *
 *   SLO_CHECK(perm.size() == n, "reorder", "permutation size "
 *                                              << perm.size());
 *   SLO_CHECK_CTX(ok, "csr", ctx, "row_ptr not monotone");
 *
 * A violated contract throws check::ContractViolation (derived from
 * std::invalid_argument so existing catch sites keep working) carrying
 * file:line, the failed expression, and a structured key/value context.
 * Before throwing, the failure is logged through slo::obs at error
 * level and — when SLO_CHECK_REPORT or SLO_OBS_DIR is set — dumped as
 * a machine-readable `slo.check-violation/1` JSON report.
 *
 * Cost control via the SLO_CHECK_LEVEL environment variable:
 *   off    validators return immediately (macros still fire — a
 *          reached SLO_CHECK is a stated contract, not a sample)
 *   cheap  O(1)..O(n) non-allocating scans (default)
 *   full   deep validation: bijection mark arrays, per-row sortedness,
 *          acyclicity, LRU-stack uniqueness (O(n log n) worst case)
 */

#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slo::check
{

/** How much validation the validators perform. */
enum class Level
{
    Off = 0,   ///< validators are no-ops
    Cheap = 1, ///< linear non-allocating scans (default)
    Full = 2,  ///< deep structural validation
};

/** Active level (first call parses SLO_CHECK_LEVEL). */
Level level();

/** Override the active level (wins over the environment). */
void setLevel(Level level);

/** Parse a level name ("off"/"cheap"/"full"); @p fallback otherwise. */
Level parseLevel(std::string_view text, Level fallback);

/** Lower-case level name. */
const char *levelName(Level level);

/** Would validators at @p min_level run right now? */
inline bool
enabled(Level min_level)
{
    return level() >= min_level;
}

/** Ordered key/value pairs attached to a contract violation. */
class Context
{
  public:
    Context() = default;

    Context &add(std::string key, std::int64_t value);
    Context &add(std::string key, std::uint64_t value);
    Context &add(std::string key, double value);
    Context &add(std::string key, std::string value);

    /** Convenience for Index/Offset and other integrals. */
    template <typename T>
        requires std::is_integral_v<T>
    Context &
    add(std::string key, T value)
    {
        if constexpr (std::is_signed_v<T>)
            return add(std::move(key),
                       static_cast<std::int64_t>(value));
        else
            return add(std::move(key),
                       static_cast<std::uint64_t>(value));
    }

    /** Render as a compact JSON object string. */
    std::string toJson() const;

    bool empty() const { return entries_.empty(); }

    const std::vector<std::pair<std::string, std::string>> &
    entries() const
    {
        return entries_;
    }

  private:
    /** (key, JSON-encoded value) in insertion order. */
    std::vector<std::pair<std::string, std::string>> entries_;
};

/** Thrown when a contract is violated. */
class ContractViolation : public std::invalid_argument
{
  public:
    ContractViolation(std::string what, std::string file, int line);

    /** Source file of the failed SLO_CHECK. */
    const std::string &file() const { return file_; }
    /** Source line of the failed SLO_CHECK. */
    int line() const { return line_; }

  private:
    std::string file_;
    int line_;
};

/**
 * Report a contract violation and throw ContractViolation.
 *
 * Logs `component: message (expr) at file:line` through slo::obs at
 * error level, bumps the `check.violations` counter, writes a
 * `slo.check-violation/1` JSON report (to $SLO_CHECK_REPORT when set,
 * else $SLO_OBS_DIR/check_violation.json when SLO_OBS_DIR is set),
 * then throws.
 */
[[noreturn]] void fail(const char *file, int line, const char *expr,
                       std::string_view component,
                       const std::string &message,
                       const Context &context = {});

} // namespace slo::check

/**
 * Enforce a contract: if @p expr_ is false, report through slo::obs
 * and throw check::ContractViolation with file:line. Always active —
 * level gating happens at validator granularity, not per check.
 */
#define SLO_CHECK(expr_, component_, stream_expr_)                        \
    do {                                                                  \
        if (!(expr_)) [[unlikely]] {                                      \
            std::ostringstream slo_check_stream_;                         \
            slo_check_stream_ << stream_expr_;                            \
            ::slo::check::fail(__FILE__, __LINE__, #expr_, component_,    \
                               slo_check_stream_.str());                  \
        }                                                                 \
    } while (0)

/** SLO_CHECK with an attached check::Context dumped into the report. */
#define SLO_CHECK_CTX(expr_, component_, context_, stream_expr_)          \
    do {                                                                  \
        if (!(expr_)) [[unlikely]] {                                      \
            std::ostringstream slo_check_stream_;                         \
            slo_check_stream_ << stream_expr_;                            \
            ::slo::check::fail(__FILE__, __LINE__, #expr_, component_,    \
                               slo_check_stream_.str(), context_);        \
        }                                                                 \
    } while (0)
