/**
 * @file
 * Range-checked integral conversions.
 *
 * The library keeps a deliberate 32/64-bit split — Index is 32-bit, the
 * non-zero Offset is 64-bit because the paper's corpus reaches 2B
 * non-zeros — which makes every Offset -> Index (or size_t -> Index)
 * conversion a live overflow hazard. slo::checkedCast<> replaces the
 * bare static_casts on those seams: same syntax, but a value outside
 * the destination range throws check::ContractViolation instead of
 * silently wrapping.
 */

#pragma once

#include <type_traits>
#include <utility>

#include "check/check.hpp"

namespace slo
{

/**
 * static_cast<To> that throws check::ContractViolation when @p value
 * does not fit in To. Both types must be integral.
 */
template <typename To, typename From>
    requires std::is_integral_v<To> && std::is_integral_v<From>
To
checkedCast(From value)
{
    if (!std::in_range<To>(value)) [[unlikely]] {
        check::Context ctx;
        ctx.add("value", value);
        ctx.add("to_bits", static_cast<int>(sizeof(To) * 8));
        ctx.add("to_signed", std::is_signed_v<To> ? "yes" : "no");
        check::fail(__FILE__, __LINE__, "std::in_range<To>(value)",
                    "checked_cast",
                    "integral value out of destination range", ctx);
    }
    return static_cast<To>(value);
}

} // namespace slo
