/**
 * @file
 * Fixed-memory log-bucketed latency histogram (HDR-style).
 *
 * `LatencyHistogram` records durations in nanoseconds into
 * power-of-two segments split into 32 sub-buckets each, so every
 * bucket's width is at most 1/32 of its value (kRelativeError) and the
 * whole 64-bit range fits in a fixed ~15 KiB table — no allocation on
 * the record path, no unbounded memory under heavy traffic.
 *
 * Recording goes to a per-thread shard (one relaxed atomic increment
 * after a thread-local lookup), so concurrent recorders never contend.
 * `snapshot()` merges the shards by summing counts — integer addition
 * is order-independent, so the merged histogram is deterministic at
 * any `SLO_THREADS`, which the qc suite checks.
 *
 * Quantiles come from the merged counts: `quantileNanos(q)` returns
 * the representative (midpoint) value of the bucket holding the
 * nearest-rank sample, exact min/max are tracked on the side. This is
 * the latency primitive the serving work (ROADMAP item 3) will consume
 * for p50/p99 under load; today the pipeline feeds it per-phase and
 * per-simulation durations.
 *
 * Named histograms live in a process-wide registry
 * (`prof::latencyHistogram("simulate.seconds")`) and are written into
 * the run manifest's `latency` section and the metrics JSONL at
 * emission time.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace slo::prof
{

class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two segment (2^5 = 32). */
    static constexpr int kSubBucketBits = 5;
    static constexpr std::size_t kSubBuckets = std::size_t{1}
                                               << kSubBucketBits;
    /** Total bucket count covering the full 64-bit nanosecond range. */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;
    /** Worst-case relative bucket width (1/32 ≈ 3.1%). */
    static constexpr double kRelativeError =
        1.0 / static_cast<double>(kSubBuckets);

    LatencyHistogram();
    ~LatencyHistogram();

    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

    /** Record one duration; negatives clamp to zero. */
    void record(double seconds);
    void recordNanos(std::uint64_t nanos);

    /** Deterministic merge of every thread shard. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sumNanos = 0;
        std::uint64_t minNanos = 0; ///< exact (0 when count == 0)
        std::uint64_t maxNanos = 0; ///< exact (0 when count == 0)
        std::vector<std::uint64_t> counts; ///< kBuckets merged counts

        /**
         * Nearest-rank quantile, q in [0, 1]: the representative value
         * of the bucket holding sample ceil(q * count), clamped to the
         * exact [min, max]. 0 when empty.
         */
        double quantileNanos(double q) const;
        double quantileSeconds(double q) const;
    };

    Snapshot snapshot() const;

    /** {"count","sum_seconds","min/max_seconds","p50..p999_seconds"}. */
    obs::Json toJson() const;

    /** Bucket of @p nanos (exact below kSubBuckets, log above). */
    static std::size_t bucketIndex(std::uint64_t nanos);
    /** Midpoint representative of @p bucket (inverse of bucketIndex). */
    static double bucketValueNanos(std::size_t bucket);

    /** One thread's counts (public for the thread-local shard cache). */
    struct Shard;

  private:
    Shard &localShard();

    const std::uint64_t id_; ///< process-unique (thread cache key)
    mutable std::mutex mutex_; ///< guards shard registration only
    std::vector<std::unique_ptr<Shard>> shards_;
};

/**
 * Process-wide named histogram; the reference stays valid for the
 * process. Names follow the metrics convention (`layer.thing`), with a
 * `_seconds`-style unit suffix.
 */
LatencyHistogram &latencyHistogram(const std::string &name);

/** {"<name>": toJson(), ...} for every registered histogram. */
obs::Json latencyRegistryJson();

/** Drop every registered histogram (tests only). */
void latencyRegistryReset();

/** RAII: time the enclosing scope into @p histogram. */
class ScopedLatency
{
  public:
    explicit ScopedLatency(LatencyHistogram &histogram);
    ~ScopedLatency();

    ScopedLatency(const ScopedLatency &) = delete;
    ScopedLatency &operator=(const ScopedLatency &) = delete;

  private:
    LatencyHistogram &histogram_;
    std::uint64_t startNanos_;
};

} // namespace slo::prof
