/**
 * @file
 * Umbrella for the profiling layer: hardware counters with graceful
 * degradation (counters.hpp) and fixed-memory latency histograms
 * (histogram.hpp). Sits directly above obs — it feeds the run
 * manifest's `prof`/`latency` sections through pre-emission hooks and
 * depends on nothing else in src/.
 */

#pragma once

#include "prof/counters.hpp"
#include "prof/histogram.hpp"
