#include "prof/counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SLO_PROF_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#else
#define SLO_PROF_HAVE_PERF 0
#endif

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/histogram.hpp"

namespace slo::prof
{

namespace
{

std::mutex g_state_mutex;
bool g_probed = false;
Backend g_backend = Backend::Off;
std::string g_reason;
/** Bumped by setBackendForTest so thread-local sets reopen. */
std::atomic<std::uint64_t> g_generation{1};

#if SLO_PROF_HAVE_PERF

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr
makeAttr(std::uint32_t type, std::uint64_t config, bool leader)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = type;
    attr.size = sizeof attr;
    attr.config = config;
    attr.disabled = leader ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING | PERF_FORMAT_ID;
    return attr;
}

constexpr std::uint64_t
hwCacheConfig(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

#endif // SLO_PROF_HAVE_PERF

std::string
errnoName(int err)
{
    switch (err) {
      case EPERM:
        return "EPERM";
      case EACCES:
        return "EACCES";
      case ENOENT:
        return "ENOENT";
      case ENOSYS:
        return "ENOSYS";
      case ENODEV:
        return "ENODEV";
      case EINVAL:
        return "EINVAL";
      default:
        return "errno " + std::to_string(err);
    }
}

/** Probe: can this process open a cycles counter on itself? */
Backend
probeBackend(std::string &reason)
{
#if SLO_PROF_HAVE_PERF
    perf_event_attr attr =
        makeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true);
    const long fd = perfEventOpen(&attr, 0, -1, -1, 0);
    if (fd >= 0) {
        close(static_cast<int>(fd));
        reason.clear();
        return Backend::Perf;
    }
    reason = "perf_event_open failed: " + errnoName(errno) + " (" +
             std::strerror(errno) + ")";
    return Backend::Rusage;
#else
    reason = "perf events not available on this platform";
    return Backend::Rusage;
#endif
}

void
probeLocked()
{
    if (g_probed)
        return;
    const char *forced = std::getenv("SLO_PROF_BACKEND");
    if (forced != nullptr && *forced != '\0') {
        const std::string value = forced;
        if (value == "off" || value == "0") {
            g_backend = Backend::Off;
            g_reason = "forced by SLO_PROF_BACKEND=" + value;
        } else if (value == "rusage") {
            g_backend = Backend::Rusage;
            g_reason = "forced by SLO_PROF_BACKEND=rusage";
        } else {
            // "perf" (or anything else): try perf, degrade honestly.
            g_backend = probeBackend(g_reason);
        }
    } else {
        g_backend = probeBackend(g_reason);
    }
    g_probed = true;
}

void
readRusageInto(CounterSample &sample)
{
#ifdef RUSAGE_THREAD
    constexpr int kWho = RUSAGE_THREAD;
#else
    constexpr int kWho = RUSAGE_SELF;
#endif
    rusage usage{};
    if (getrusage(kWho, &usage) != 0)
        return;
    sample.utimeSeconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    sample.stimeSeconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
    sample.minorFaults = static_cast<std::uint64_t>(usage.ru_minflt);
    sample.majorFaults = static_cast<std::uint64_t>(usage.ru_majflt);
    sample.voluntaryCtxSwitches =
        static_cast<std::uint64_t>(usage.ru_nvcsw);
    sample.involuntaryCtxSwitches =
        static_cast<std::uint64_t>(usage.ru_nivcsw);
}

std::uint64_t
clampedDelta(std::uint64_t end, std::uint64_t start)
{
    return end >= start ? end - start : 0;
}

double
clampedDelta(double end, double start)
{
    return end >= start ? end - start : 0.0;
}

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Perf:
        return "perf";
      case Backend::Rusage:
        return "rusage";
      default:
        return "off";
    }
}

Backend
activeBackend()
{
    const std::lock_guard<std::mutex> lock(g_state_mutex);
    probeLocked();
    return g_backend;
}

std::string
degradationReason()
{
    const std::lock_guard<std::mutex> lock(g_state_mutex);
    probeLocked();
    return g_reason;
}

void
setBackendForTest(const char *backend)
{
    {
        const std::lock_guard<std::mutex> lock(g_state_mutex);
        if (backend == nullptr) {
            g_probed = false;
        } else {
            const std::string value = backend;
            if (value == "perf") {
                g_backend = probeBackend(g_reason);
            } else if (value == "rusage") {
                g_backend = Backend::Rusage;
                g_reason = "forced by SLO_PROF_BACKEND=rusage";
            } else {
                g_backend = Backend::Off;
                g_reason = "forced by SLO_PROF_BACKEND=off";
            }
            g_probed = true;
        }
    }
    g_generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        std::istringstream fields(line.substr(6));
        std::uint64_t kib = 0;
        fields >> kib;
        return kib;
    }
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0)
        return static_cast<std::uint64_t>(usage.ru_maxrss);
    return 0;
}

CounterSample
CounterSample::deltaSince(const CounterSample &start) const
{
    CounterSample delta = *this;
    delta.cycles = clampedDelta(cycles, start.cycles);
    delta.instructions = clampedDelta(instructions, start.instructions);
    delta.llcLoads = clampedDelta(llcLoads, start.llcLoads);
    delta.llcMisses = clampedDelta(llcMisses, start.llcMisses);
    delta.branchMisses = clampedDelta(branchMisses, start.branchMisses);
    delta.timeEnabledSeconds =
        clampedDelta(timeEnabledSeconds, start.timeEnabledSeconds);
    delta.timeRunningSeconds =
        clampedDelta(timeRunningSeconds, start.timeRunningSeconds);
    delta.utimeSeconds = clampedDelta(utimeSeconds, start.utimeSeconds);
    delta.stimeSeconds = clampedDelta(stimeSeconds, start.stimeSeconds);
    delta.minorFaults = clampedDelta(minorFaults, start.minorFaults);
    delta.majorFaults = clampedDelta(majorFaults, start.majorFaults);
    delta.voluntaryCtxSwitches =
        clampedDelta(voluntaryCtxSwitches, start.voluntaryCtxSwitches);
    delta.involuntaryCtxSwitches = clampedDelta(
        involuntaryCtxSwitches, start.involuntaryCtxSwitches);
    return delta;
}

obs::Json
CounterSample::toJson() const
{
    obs::Json j = obs::Json::object();
    if (backend == Backend::Perf) {
        if (hasCycles)
            j["cycles"] = cycles;
        if (hasInstructions)
            j["instructions"] = instructions;
        if (hasLlcLoads)
            j["llc_loads"] = llcLoads;
        if (hasLlcMisses)
            j["llc_misses"] = llcMisses;
        if (hasBranchMisses)
            j["branch_misses"] = branchMisses;
        j["time_enabled_seconds"] = timeEnabledSeconds;
        j["time_running_seconds"] = timeRunningSeconds;
    } else if (backend == Backend::Rusage) {
        j["utime_seconds"] = utimeSeconds;
        j["stime_seconds"] = stimeSeconds;
        j["minor_faults"] = minorFaults;
        j["major_faults"] = majorFaults;
        j["voluntary_ctx_switches"] = voluntaryCtxSwitches;
        j["involuntary_ctx_switches"] = involuntaryCtxSwitches;
    }
    return j;
}

/** The grouped perf fds of one thread (Perf backend only). */
struct CounterSet::PerfGroup
{
#if SLO_PROF_HAVE_PERF
    struct Member
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::uint64_t CounterSample::*field = nullptr;
        bool CounterSample::*flag = nullptr;
    };

    int leaderFd = -1;
    std::vector<Member> members;

    ~PerfGroup()
    {
        for (const Member &member : members) {
            if (member.fd >= 0)
                close(member.fd);
        }
    }

    bool
    open()
    {
        struct Spec
        {
            std::uint32_t type;
            std::uint64_t config;
            std::uint64_t CounterSample::*field;
            bool CounterSample::*flag;
        };
        const Spec specs[] = {
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
             &CounterSample::cycles, &CounterSample::hasCycles},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
             &CounterSample::instructions,
             &CounterSample::hasInstructions},
            {PERF_TYPE_HW_CACHE,
             hwCacheConfig(PERF_COUNT_HW_CACHE_LL,
                           PERF_COUNT_HW_CACHE_OP_READ,
                           PERF_COUNT_HW_CACHE_RESULT_ACCESS),
             &CounterSample::llcLoads, &CounterSample::hasLlcLoads},
            {PERF_TYPE_HW_CACHE,
             hwCacheConfig(PERF_COUNT_HW_CACHE_LL,
                           PERF_COUNT_HW_CACHE_OP_READ,
                           PERF_COUNT_HW_CACHE_RESULT_MISS),
             &CounterSample::llcMisses, &CounterSample::hasLlcMisses},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
             &CounterSample::branchMisses,
             &CounterSample::hasBranchMisses},
        };
        for (const Spec &spec : specs) {
            const bool leader = leaderFd < 0;
            perf_event_attr attr =
                makeAttr(spec.type, spec.config, leader);
            const long fd =
                perfEventOpen(&attr, 0, -1, leader ? -1 : leaderFd, 0);
            if (fd < 0) {
                if (leader)
                    return false; // no leader, no group
                continue; // follower unsupported: skip that counter
            }
            Member member;
            member.fd = static_cast<int>(fd);
            if (ioctl(member.fd, PERF_EVENT_IOC_ID, &member.id) != 0) {
                close(member.fd);
                if (leader)
                    return false;
                continue;
            }
            member.field = spec.field;
            member.flag = spec.flag;
            if (leader)
                leaderFd = member.fd;
            members.push_back(member);
        }
        if (leaderFd < 0)
            return false;
        ioctl(leaderFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(leaderFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        return true;
    }

    void
    read(CounterSample &sample) const
    {
        // struct read_format { u64 nr, time_enabled, time_running;
        //                      struct { u64 value, id; } values[nr]; };
        std::vector<std::uint64_t> buffer(3 + 2 * members.size());
        const ssize_t wanted = static_cast<ssize_t>(
            buffer.size() * sizeof(std::uint64_t));
        const ssize_t got = ::read(leaderFd, buffer.data(),
                                   static_cast<std::size_t>(wanted));
        if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
            return;
        const std::uint64_t nr = buffer[0];
        const std::uint64_t enabled = buffer[1];
        const std::uint64_t running = buffer[2];
        sample.timeEnabledSeconds = static_cast<double>(enabled) / 1e9;
        sample.timeRunningSeconds = static_cast<double>(running) / 1e9;
        // Scale for multiplexing: with more events than hardware
        // counters the kernel time-slices the group; enabled/running
        // extrapolates to the full window.
        const double scale =
            running > 0 ? static_cast<double>(enabled) /
                              static_cast<double>(running)
                        : 1.0;
        for (std::uint64_t i = 0; i < nr; ++i) {
            const std::uint64_t value = buffer[3 + 2 * i];
            const std::uint64_t id = buffer[3 + 2 * i + 1];
            for (const Member &member : members) {
                if (member.id != id)
                    continue;
                sample.*(member.field) = static_cast<std::uint64_t>(
                    static_cast<double>(value) * scale);
                sample.*(member.flag) = true;
                break;
            }
        }
    }
#else
    bool
    open()
    {
        return false;
    }

    void
    read(CounterSample &) const
    {
    }
#endif // SLO_PROF_HAVE_PERF
};

CounterSet::CounterSet() : backend_(activeBackend())
{
    if (backend_ != Backend::Perf)
        return;
    auto group = std::make_unique<PerfGroup>();
    if (group->open()) {
        perf_ = group.release();
    } else {
        // The probe passed but this thread's group failed (fd limits,
        // races with the paranoid setting): degrade just this set.
        backend_ = Backend::Rusage;
    }
}

CounterSet::~CounterSet()
{
    delete perf_;
}

bool
CounterSet::usable() const
{
    return backend_ != Backend::Off;
}

CounterSample
CounterSet::read() const
{
    CounterSample sample;
    sample.backend = backend_;
    if (backend_ == Backend::Perf && perf_ != nullptr)
        perf_->read(sample);
    else if (backend_ == Backend::Rusage)
        readRusageInto(sample);
    return sample;
}

CounterSet &
CounterSet::forCurrentThread()
{
    thread_local std::unique_ptr<CounterSet> t_set;
    thread_local std::uint64_t t_generation = 0;
    const std::uint64_t generation =
        g_generation.load(std::memory_order_relaxed);
    if (t_set == nullptr || t_generation != generation) {
        t_set = std::make_unique<CounterSet>();
        t_generation = generation;
    }
    return *t_set;
}

ScopedCounters::ScopedCounters(std::string matrix, std::string phase)
    : matrix_(std::move(matrix)), phase_(std::move(phase))
{
    initProcess();
    start_ = CounterSet::forCurrentThread().read();
}

ScopedCounters::~ScopedCounters()
{
    const CounterSet &set = CounterSet::forCurrentThread();
    if (!set.usable())
        return;
    const CounterSample end = set.read();
    const CounterSample delta = end.deltaSince(start_);
    if (!matrix_.empty()) {
        obs::RunManifest::instance().recordPhaseCounters(
            matrix_, phase_, delta.toJson());
    }
    if (delta.backend == Backend::Perf) {
        obs::counter("prof.cycles").add(delta.cycles);
        obs::counter("prof.instructions").add(delta.instructions);
        obs::counter("prof.llc_loads").add(delta.llcLoads);
        obs::counter("prof.llc_misses").add(delta.llcMisses);
        obs::counter("prof.branch_misses").add(delta.branchMisses);
        // Cumulative per-thread samples make monotonic counter tracks
        // in the trace viewer, aligned with the enclosing span.
        obs::emitCounter("prof.cycles",
                         static_cast<double>(end.cycles));
        obs::emitCounter("prof.llc_misses",
                         static_cast<double>(end.llcMisses));
    } else if (delta.backend == Backend::Rusage) {
        obs::counter("prof.cpu_nanos")
            .add(static_cast<std::uint64_t>(
                (delta.utimeSeconds + delta.stimeSeconds) * 1e9));
        obs::counter("prof.minor_faults").add(delta.minorFaults);
        obs::counter("prof.major_faults").add(delta.majorFaults);
        obs::counter("prof.ctx_switches")
            .add(delta.voluntaryCtxSwitches +
                 delta.involuntaryCtxSwitches);
        obs::emitCounter("prof.cpu_seconds",
                         end.utimeSeconds + end.stimeSeconds);
        obs::emitCounter("prof.minor_faults",
                         static_cast<double>(end.minorFaults));
    }
}

void
writeManifestSections()
{
    obs::Json prof = obs::Json::object();
    const Backend backend = activeBackend();
    prof["backend"] = backendName(backend);
    prof["degraded"] = backend != Backend::Perf;
    prof["degradation_reason"] = degradationReason();
    prof["peak_rss_kb"] = peakRssKb();
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        prof["utime_seconds"] =
            static_cast<double>(usage.ru_utime.tv_sec) +
            static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
        prof["stime_seconds"] =
            static_cast<double>(usage.ru_stime.tv_sec) +
            static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
        prof["minor_faults"] =
            static_cast<std::uint64_t>(usage.ru_minflt);
        prof["major_faults"] =
            static_cast<std::uint64_t>(usage.ru_majflt);
        prof["voluntary_ctx_switches"] =
            static_cast<std::uint64_t>(usage.ru_nvcsw);
        prof["involuntary_ctx_switches"] =
            static_cast<std::uint64_t>(usage.ru_nivcsw);
    }
    obs::RunManifest::instance().set("prof", std::move(prof));
    obs::RunManifest::instance().set("latency", latencyRegistryJson());
    obs::gauge("prof.peak_rss_kb")
        .set(static_cast<double>(peakRssKb()));
}

void
initProcess()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const Backend backend = activeBackend();
        if (backend != Backend::Perf) {
            SLO_LOG_INFO("prof",
                         "hardware counters unavailable, backend="
                             << backendName(backend) << " ("
                             << degradationReason() << ")");
        }
        obs::addPreEmissionHook(writeManifestSections);
    });
}

} // namespace slo::prof
