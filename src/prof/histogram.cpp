#include "prof/histogram.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "obs/trace.hpp"

namespace slo::prof
{

/**
 * One thread's counts. Plain relaxed atomics: the owning thread is the
 * only incrementer, but snapshot() may read concurrently, and relaxed
 * loads/increments keep that race benign (and TSan-clean) without
 * contended cache lines.
 */
struct LatencyHistogram::Shard
{
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sumNanos{0};
    std::atomic<std::uint64_t> minNanos{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> maxNanos{0};
};

namespace
{

/**
 * Each histogram gets a process-unique id and threads cache their
 * shard per id; ids are never reused, so a stale cache entry for a
 * destroyed histogram can never alias a new one.
 */
std::atomic<std::uint64_t> g_next_id{1};

thread_local std::unordered_map<std::uint64_t, LatencyHistogram::Shard *>
    t_shards;

void
atomicMin(std::atomic<std::uint64_t> &slot, std::uint64_t value)
{
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    while (value < current &&
           !slot.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t value)
{
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    while (value > current &&
           !slot.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

LatencyHistogram::LatencyHistogram()
    : id_(g_next_id.fetch_add(1, std::memory_order_relaxed))
{
}

LatencyHistogram::~LatencyHistogram() = default;

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t nanos)
{
    if (nanos < kSubBuckets)
        return static_cast<std::size_t>(nanos);
    const int exponent = 63 - std::countl_zero(nanos);
    const int shift = exponent - kSubBucketBits;
    const std::size_t sub =
        static_cast<std::size_t>(nanos >> shift) - kSubBuckets;
    return static_cast<std::size_t>(shift + 1) * kSubBuckets + sub;
}

double
LatencyHistogram::bucketValueNanos(std::size_t bucket)
{
    if (bucket < 2 * kSubBuckets)
        return static_cast<double>(bucket);
    const std::size_t block = bucket / kSubBuckets;
    const std::size_t sub = bucket % kSubBuckets;
    const int shift = static_cast<int>(block) - 1;
    const double lo = std::ldexp(
        static_cast<double>(kSubBuckets + sub), shift);
    const double width = std::ldexp(1.0, shift);
    return lo + width / 2.0;
}

LatencyHistogram::Shard &
LatencyHistogram::localShard()
{
    Shard *&cached = t_shards[id_];
    if (cached == nullptr) {
        const std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        cached = shards_.back().get();
    }
    return *cached;
}

void
LatencyHistogram::recordNanos(std::uint64_t nanos)
{
    Shard &shard = localShard();
    shard.counts[bucketIndex(nanos)].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sumNanos.fetch_add(nanos, std::memory_order_relaxed);
    atomicMin(shard.minNanos, nanos);
    atomicMax(shard.maxNanos, nanos);
}

void
LatencyHistogram::record(double seconds)
{
    if (!(seconds > 0.0)) {
        recordNanos(0);
        return;
    }
    recordNanos(static_cast<std::uint64_t>(seconds * 1e9));
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    Snapshot merged;
    merged.counts.assign(kBuckets, 0);
    std::uint64_t min_nanos = std::numeric_limits<std::uint64_t>::max();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (std::size_t b = 0; b < kBuckets; ++b) {
            merged.counts[b] +=
                shard->counts[b].load(std::memory_order_relaxed);
        }
        merged.count += shard->count.load(std::memory_order_relaxed);
        merged.sumNanos +=
            shard->sumNanos.load(std::memory_order_relaxed);
        min_nanos = std::min(
            min_nanos, shard->minNanos.load(std::memory_order_relaxed));
        merged.maxNanos = std::max(
            merged.maxNanos,
            shard->maxNanos.load(std::memory_order_relaxed));
    }
    merged.minNanos = merged.count == 0 ? 0 : min_nanos;
    return merged;
}

double
LatencyHistogram::Snapshot::quantileNanos(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        cumulative += counts[b];
        if (cumulative >= rank) {
            const double value = bucketValueNanos(b);
            return std::clamp(value, static_cast<double>(minNanos),
                              static_cast<double>(maxNanos));
        }
    }
    return static_cast<double>(maxNanos);
}

double
LatencyHistogram::Snapshot::quantileSeconds(double q) const
{
    return quantileNanos(q) / 1e9;
}

obs::Json
LatencyHistogram::toJson() const
{
    const Snapshot snap = snapshot();
    obs::Json j = obs::Json::object();
    j["count"] = snap.count;
    j["sum_seconds"] = static_cast<double>(snap.sumNanos) / 1e9;
    j["min_seconds"] = static_cast<double>(snap.minNanos) / 1e9;
    j["max_seconds"] = static_cast<double>(snap.maxNanos) / 1e9;
    const std::pair<const char *, double> points[] = {
        {"p50_seconds", 0.50},
        {"p90_seconds", 0.90},
        {"p99_seconds", 0.99},
        {"p999_seconds", 0.999}};
    for (const auto &[label, q] : points)
        j[label] = snap.quantileSeconds(q);
    return j;
}

namespace
{

struct LatencyRegistry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;

    static LatencyRegistry &
    instance()
    {
        // Intentionally leaked: the registry is created lazily by the
        // first record mid-run, which would order its destructor
        // *before* the atexit manifest emission that reads it. A
        // never-destroyed heap instance is immune to that ordering.
        static LatencyRegistry *registry = new LatencyRegistry();
        return *registry;
    }
};

} // namespace

LatencyHistogram &
latencyHistogram(const std::string &name)
{
    LatencyRegistry &registry = LatencyRegistry::instance();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    auto &slot = registry.histograms[name];
    if (slot == nullptr)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

obs::Json
latencyRegistryJson()
{
    LatencyRegistry &registry = LatencyRegistry::instance();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    obs::Json j = obs::Json::object();
    for (const auto &[name, histogram] : registry.histograms)
        j[name] = histogram->toJson();
    return j;
}

void
latencyRegistryReset()
{
    LatencyRegistry &registry = LatencyRegistry::instance();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    registry.histograms.clear();
}

ScopedLatency::ScopedLatency(LatencyHistogram &histogram)
    : histogram_(histogram), startNanos_(obs::monotonicNanos())
{
}

ScopedLatency::~ScopedLatency()
{
    histogram_.recordNanos(obs::monotonicNanos() - startNanos_);
}

} // namespace slo::prof
