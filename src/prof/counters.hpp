/**
 * @file
 * Hardware-counter profiling with graceful degradation.
 *
 * `CounterSet` opens one grouped `perf_event_open` descriptor per
 * thread (leader: cycles; followers: instructions, LLC loads/misses,
 * branch misses) so all counters start and stop together and a single
 * group read yields a coherent sample. Where perf events are
 * unavailable — containers and CI commonly deny the syscall with
 * EPERM/EACCES, seccomp filters surface ENOSYS/ENOENT, and
 * `perf_event_paranoid` can forbid it — the whole layer degrades to a
 * `getrusage(RUSAGE_THREAD)` fallback (utime/stime, minor/major
 * faults, context switches) and records *why* in the manifest's `prof`
 * section. Degradation is never a failure: the same pipeline runs on a
 * perf-capable workstation and a locked-down CI runner, emitting
 * whichever counters the host can supply.
 *
 * `ScopedCounters` is the pipeline-facing RAII: it samples on entry
 * and exit and attaches the delta to the run manifest's per-phase
 * counters (`matrices.<m>.counters.<phase>`), to process-wide metrics
 * (`prof.cycles`, ...), and — when tracing — to the enclosing span's
 * thread track as Chrome-trace counter samples.
 *
 * Environment knobs:
 *   SLO_PROF_BACKEND=perf|rusage|off  force a backend; `perf` still
 *                                     falls back when unavailable,
 *                                     `off` disables scoped counters
 *                                     entirely (wall-clock phases keep
 *                                     working through obs).
 */

#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace slo::prof
{

enum class Backend
{
    Perf,   ///< grouped perf_event_open hardware counters
    Rusage, ///< getrusage/procfs software counters
    Off,    ///< scoped counters disabled
};

const char *backendName(Backend backend);

/**
 * The process's active backend, probed once on first use: the forced
 * SLO_PROF_BACKEND if set, else Perf when a probe group opens, else
 * Rusage. Thread-safe.
 */
Backend activeBackend();

/**
 * Why the perf backend is not active ("" when it is): the errno name
 * from the probe, "forced by SLO_PROF_BACKEND", or "not linux".
 */
std::string degradationReason();

/** Peak resident set size (VmHWM) in KiB; 0 when procfs hides it. */
std::uint64_t peakRssKb();

/**
 * One cumulative sample; subtract two to get a phase delta. Fields of
 * the inactive backend stay zero; `has*` flags say which perf
 * counters actually opened (LLC events are frequently unsupported).
 */
struct CounterSample
{
    Backend backend = Backend::Off;

    // Perf (scaled for multiplexing by enabled/running at read time).
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcLoads = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t branchMisses = 0;
    double timeEnabledSeconds = 0.0;
    double timeRunningSeconds = 0.0;
    bool hasCycles = false;
    bool hasInstructions = false;
    bool hasLlcLoads = false;
    bool hasLlcMisses = false;
    bool hasBranchMisses = false;

    // Rusage (calling thread).
    double utimeSeconds = 0.0;
    double stimeSeconds = 0.0;
    std::uint64_t minorFaults = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t voluntaryCtxSwitches = 0;
    std::uint64_t involuntaryCtxSwitches = 0;

    /** Member-wise delta (this - start); clamps at zero. */
    CounterSample deltaSince(const CounterSample &start) const;

    /** Numeric fields of the active backend only (manifest shape). */
    obs::Json toJson() const;
};

/**
 * The calling thread's counter group. Opened lazily on first use and
 * kept for the thread's lifetime; reads are cumulative since open.
 * Never throws: a set that failed to open reports `usable() == false`
 * and samples as all-zero.
 */
class CounterSet
{
  public:
    /** Opens according to activeBackend(). */
    CounterSet();
    ~CounterSet();

    CounterSet(const CounterSet &) = delete;
    CounterSet &operator=(const CounterSet &) = delete;

    Backend backend() const { return backend_; }
    bool usable() const;

    /** Cumulative sample since the set opened. */
    CounterSample read() const;

    /** The calling thread's set (one per thread, lazily opened). */
    static CounterSet &forCurrentThread();

  private:
    struct PerfGroup;

    Backend backend_ = Backend::Off;
    PerfGroup *perf_ = nullptr; ///< owned; non-null only for Perf
};

/**
 * RAII phase profiler: records the counter delta of the enclosing
 * scope under matrices.<matrix>.counters.<phase> in the run manifest,
 * bumps the process-wide `prof.*` metrics, and emits Chrome-trace
 * counter samples on the calling thread's track. An empty @p matrix
 * skips the manifest attribution (metrics still accumulate). No-op
 * under SLO_PROF_BACKEND=off.
 */
class ScopedCounters
{
  public:
    ScopedCounters(std::string matrix, std::string phase);
    ~ScopedCounters();

    ScopedCounters(const ScopedCounters &) = delete;
    ScopedCounters &operator=(const ScopedCounters &) = delete;

  private:
    std::string matrix_;
    std::string phase_;
    CounterSample start_;
};

/**
 * Probe the backend, register the manifest pre-emission hook (the
 * `prof` + `latency` sections) and log the degradation reason once.
 * Benches call this from loadEnv; ScopedCounters calls it lazily.
 */
void initProcess();

/**
 * Write the `prof` and `latency` sections into the run manifest now.
 * Called by the pre-emission hook; callable directly from tests.
 */
void writeManifestSections();

/**
 * Force a backend and re-run the probe (tests only — not thread-safe
 * against concurrent ScopedCounters). Pass nullptr to re-read the
 * environment.
 */
void setBackendForTest(const char *backend);

} // namespace slo::prof
