/**
 * @file
 * Async batch scheduler: the daemon's admission + execution pipeline.
 *
 * Cold requests become *jobs* keyed by artifact key and run on the
 * `slo::par` work-stealing pool. The scheduler provides the three
 * serving behaviours the IO loop itself must never block on:
 *
 *   - **Coalescing**: a submit for a key that already has a job in
 *     flight joins that job's waiter list instead of spawning a second
 *     build — duplicate concurrent cold requests trigger exactly one
 *     build (the store underneath adds the cross-process guarantee).
 *   - **Backpressure**: at most `queueLimit` distinct keys may be in
 *     flight; a submit beyond that returns false immediately and the
 *     caller answers with an explicit 429-style `rejected` response in
 *     bounded time, instead of letting queue delay grow p99 without
 *     bound.
 *   - **Deadlines**: every waiter carries an absolute deadline
 *     (obs::monotonicNanos). A job whose waiters have *all* expired by
 *     the time a worker picks it up is cancelled without building;
 *     otherwise the build runs and each waiter is completed with `Ok`
 *     or `DeadlineExceeded` according to its own clock. Cancellation
 *     is graceful by design: a build in progress is never interrupted
 *     (it is cached work every future request benefits from).
 *
 * Completions run on the worker thread that finished the job (inline
 * on the submitter for a serial pool); they must be quick and
 * non-blocking — the server's completion just enqueues a response
 * frame and wakes the poll loop.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifact_store.hpp"
#include "matrix/csr.hpp"
#include "obs/json.hpp"
#include "par/par.hpp"

namespace slo::serve
{

class BatchScheduler
{
  public:
    struct Options
    {
        /** Max distinct keys in flight before submits are rejected. */
        std::size_t queueLimit = 256;
        /** Deadline applied when a submit passes deadlineNanos = 0. */
        std::uint64_t defaultDeadlineNanos = 30ull * 1000 * 1000 * 1000;
    };

    enum class Outcome
    {
        Ok,
        DeadlineExceeded,
        Error,
    };

    struct Result
    {
        Outcome outcome = Outcome::Error;
        core::ArtifactStore::Payload payload; ///< set when Ok
        std::string error;                    ///< set when Error
    };

    using Builder = std::function<std::vector<Index>()>;
    using Completion = std::function<void(const Result &)>;

    BatchScheduler(Options options, core::ArtifactStore &store,
                   par::ThreadPool &pool = par::ThreadPool::global());

    /** Blocks until every in-flight job has delivered. */
    ~BatchScheduler();

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /**
     * Enqueue a build for @p key (or join the in-flight one).
     * @p deadlineNanos is absolute on the obs::monotonicNanos clock
     * (0 = now + default deadline). @p completion fires exactly once
     * from a pool thread — unless the submit is rejected, in which
     * case the scheduler takes nothing and returns false.
     */
    bool submit(const std::string &key, std::uint64_t deadlineNanos,
                Builder builder, Completion completion);

    /** Block until no job is in flight (drained queue). */
    void drain();

    std::size_t inflight() const;

    /** {"queue_limit","inflight","submitted","coalesced","rejected",
     *  "cancelled","deadline_exceeded","errors","completed"}. */
    obs::Json statsJson() const;

  private:
    struct Waiter
    {
        std::uint64_t deadlineNanos = 0;
        Completion completion;
    };

    struct Job
    {
        Builder builder;
        std::vector<Waiter> waiters;
    };

    void runJob(const std::string &key);

    Options options_;
    core::ArtifactStore &store_;
    par::ThreadPool &pool_;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    std::map<std::string, std::shared_ptr<Job>> jobs_;
    /** Jobs erased from jobs_ whose completions are still running. */
    std::size_t delivering_ = 0;
};

} // namespace slo::serve
