#include "serve/scheduler.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace slo::serve
{

BatchScheduler::BatchScheduler(Options options,
                               core::ArtifactStore &store,
                               par::ThreadPool &pool)
    : options_(options), store_(store), pool_(pool)
{
    if (options_.queueLimit < 1)
        options_.queueLimit = 1;
}

BatchScheduler::~BatchScheduler() { drain(); }

bool
BatchScheduler::submit(const std::string &key,
                       std::uint64_t deadlineNanos, Builder builder,
                       Completion completion)
{
    if (deadlineNanos == 0)
        deadlineNanos =
            obs::monotonicNanos() + options_.defaultDeadlineNanos;
    Waiter waiter{deadlineNanos, std::move(completion)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = jobs_.find(key);
        if (it != jobs_.end()) {
            it->second->waiters.push_back(std::move(waiter));
            obs::counter("serve.scheduler.coalesced").add();
            obs::counter("serve.scheduler.submitted").add();
            return true;
        }
        if (jobs_.size() >= options_.queueLimit) {
            obs::counter("serve.scheduler.rejected").add();
            return false;
        }
        auto job = std::make_shared<Job>();
        job->builder = std::move(builder);
        job->waiters.push_back(std::move(waiter));
        jobs_[key] = std::move(job);
        obs::counter("serve.scheduler.submitted").add();
    }
    // Outside the lock: on a serial pool submit runs the job (and its
    // completions) inline before returning.
    pool_.submit([this, key] { runJob(key); });
    return true;
}

void
BatchScheduler::runJob(const std::string &key)
{
    std::shared_ptr<Job> job;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = jobs_.find(key);
        if (it == jobs_.end())
            return;
        job = it->second;
    }

    // Graceful cancellation: if every waiter expired while the job sat
    // in the queue, skip the build entirely. Once a build starts it is
    // never interrupted — the result is cached work.
    bool anyAlive = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const std::uint64_t now = obs::monotonicNanos();
        for (const Waiter &waiter : job->waiters) {
            if (waiter.deadlineNanos > now) {
                anyAlive = true;
                break;
            }
        }
    }

    Result result;
    if (!anyAlive) {
        result.outcome = Outcome::DeadlineExceeded;
        obs::counter("serve.scheduler.cancelled").add();
    } else {
        try {
            result.payload = store_.getOrBuild(key, job->builder);
            result.outcome = Outcome::Ok;
        } catch (const std::exception &e) {
            result.outcome = Outcome::Error;
            result.error = e.what();
            obs::counter("serve.scheduler.errors").add();
        } catch (...) {
            result.outcome = Outcome::Error;
            result.error = "unknown build error";
            obs::counter("serve.scheduler.errors").add();
        }
    }

    std::vector<Waiter> waiters;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        waiters = std::move(job->waiters);
        jobs_.erase(key);
        ++delivering_;
    }

    const std::uint64_t doneAt = obs::monotonicNanos();
    for (Waiter &waiter : waiters) {
        Result each = result;
        if (each.outcome == Outcome::Ok &&
            waiter.deadlineNanos <= doneAt) {
            each.outcome = Outcome::DeadlineExceeded;
            each.payload = nullptr;
        }
        if (each.outcome == Outcome::DeadlineExceeded)
            obs::counter("serve.scheduler.deadline_exceeded").add();
        else if (each.outcome == Outcome::Ok)
            obs::counter("serve.scheduler.completed").add();
        waiter.completion(each);
    }

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        --delivering_;
        if (jobs_.empty() && delivering_ == 0)
            drained_.notify_all();
    }
}

void
BatchScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock,
                  [&] { return jobs_.empty() && delivering_ == 0; });
}

std::size_t
BatchScheduler::inflight() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

obs::Json
BatchScheduler::statsJson() const
{
    obs::Json doc = obs::Json::object();
    doc["queue_limit"] = options_.queueLimit;
    doc["inflight"] = inflight();
    for (const char *name :
         {"submitted", "coalesced", "rejected", "cancelled",
          "deadline_exceeded", "errors", "completed"}) {
        doc[name] =
            obs::counter(std::string("serve.scheduler.") + name)
                .value();
    }
    return doc;
}

} // namespace slo::serve
