/**
 * @file
 * The reordering daemon: a unix-domain-socket server over the batch
 * scheduler and the in-memory artifact store.
 *
 * Threading model (keep it this way — see CONTRIBUTING):
 *
 *   - **One IO thread**: the caller of run() owns the poll() loop, all
 *     socket reads/writes, and every Connection object. No other
 *     thread may touch a socket.
 *   - **Builds run on the slo::par pool** via BatchScheduler. With
 *     SLO_THREADS=1 the pool is serial and builds run inline on the IO
 *     thread in submission order — the determinism baseline.
 *   - **Completions cross back** by pushing the finished response
 *     frame onto a mutex-guarded done-queue and writing one byte to a
 *     self-pipe the poll loop watches. Completions never write to
 *     sockets directly.
 *
 * Responses on a connection are delivered in *request order* (each
 * accepted request reserves a slot; frames are flushed only up to the
 * first unfinished slot), so a fixed request trace produces
 * byte-identical output at any SLO_THREADS.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifact_store.hpp"
#include "core/dataset.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace slo::serve
{

class Server
{
  public:
    struct Options
    {
        /** Filesystem path of the listening unix socket. */
        std::string socketPath = "slo_serve.sock";
        /** Max distinct keys in flight (scheduler backpressure). */
        std::size_t queueLimit = 64;
        /** Deadline for requests that do not carry one. */
        std::uint64_t defaultDeadlineMs = 30000;
        /** ArtifactStore byte budget. */
        std::size_t cacheBytes = 64ull << 20;
    };

    /**
     * Defaults overridden by SLO_SERVE_SOCKET, SLO_SERVE_QUEUE,
     * SLO_SERVE_DEADLINE_MS, SLO_SERVE_CACHE_BYTES.
     */
    static Options optionsFromEnv();

    /**
     * Bind + listen (unlinks a stale socket at the path first).
     * Serves reorder requests against paperCorpus(@p scale).
     * @throws std::runtime_error when the socket cannot be bound.
     */
    Server(Options options, core::Scale scale);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Poll loop; returns 0 after a clean stop (shutdown op or
     * requestStop). On stop, drains in-flight builds and flushes
     * pending responses before closing.
     */
    int run();

    /** Async-signal-safe stop request (atomic flag + self-pipe). */
    void requestStop();

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** The `slo.serve-stats/1` document (stats op, final manifest). */
    obs::Json statsJson() const;

  private:
    /** An in-order response slot (see file comment). */
    struct Slot
    {
        bool ready = false;
        std::string frame;
    };

    struct Connection
    {
        int fd = -1;
        FrameSplitter splitter;
        std::deque<Slot> slots;
        std::uint64_t baseSeq = 0; ///< sequence of slots.front()
        std::uint64_t nextSeq = 0; ///< sequence of the next request
        std::size_t writeOffset = 0;
    };

    /** A finished completion waiting for the IO thread. */
    struct Done
    {
        std::uint64_t connId = 0;
        std::uint64_t seq = 0;
        std::string frame;
    };

    void acceptPending();
    void readPending(std::uint64_t conn_id);
    bool flushPending(Connection &conn); ///< false = connection broke
    void closeConnection(std::uint64_t conn_id);
    void handleFrame(std::uint64_t conn_id, const std::string &payload);
    void handleReorder(std::uint64_t conn_id, std::uint64_t seq,
                       const Request &request, std::uint64_t arrival);
    /** Fill @p seq on @p conn_id (IO thread only). */
    void fillSlot(std::uint64_t conn_id, std::uint64_t seq,
                  std::string frame);
    /** Thread-safe: enqueue a done frame and wake the poll loop. */
    void postDone(std::uint64_t conn_id, std::uint64_t seq,
                  std::string frame);
    void drainDoneQueue();

    Options options_;
    core::Scale scale_;
    std::map<std::string, core::DatasetEntry> corpus_;

    core::ArtifactStore store_;
    std::unique_ptr<BatchScheduler> scheduler_;

    int listenFd_ = -1;
    int wakeReadFd_ = -1;
    int wakeWriteFd_ = -1;
    std::atomic<bool> stop_{false};

    std::uint64_t nextConnId_ = 1;
    std::map<std::uint64_t, Connection> connections_;

    std::mutex doneMutex_;
    std::deque<Done> doneQueue_;
};

} // namespace slo::serve
