/**
 * @file
 * Blocking client + daemon process management for the reordering
 * service. Used by the load bench, the serve tests, and anything else
 * that wants to talk to (or spawn) `slo_served`.
 *
 * `Client` is a plain blocking unix-socket connection: `call` does one
 * synchronous request/response round trip; `sendFrame`/`recvFrame`
 * expose the raw framing for pipelined traffic (the saturation and
 * coalescing bench legs keep many requests in flight on one
 * connection and rely on the server's in-order delivery).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace slo::serve
{

class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Blocking connect to @p socket_path. @return false on failure. */
    bool connect(const std::string &socket_path);

    void close();
    bool connected() const { return fd_ >= 0; }

    /** The raw socket fd (for poll()-based multi-connection reads). */
    int rawFd() const { return fd_; }

    /** One request/response round trip (blocking). */
    std::optional<Response> call(const Request &request);

    /** Raw frame send (pipelining). @return false on EOF/error. */
    bool sendFrame(const std::string &payload);

    /** Raw frame receive; nullopt on clean EOF. */
    std::optional<std::string> recvFrame();

    /** `stats` round trip returning the slo.serve-stats/1 document. */
    std::optional<obs::Json> stats();

  private:
    int fd_ = -1;
    std::uint64_t nextId_ = 1;
};

/**
 * The daemon binary: $SLO_SERVE_BIN if set, else `slo_served` next to
 * /proc/self/exe, else `../src/serve/slo_served` relative to it.
 * Empty string when none of those exists.
 */
std::string resolveDaemonBinary();

/**
 * Poll-connect-ping until the daemon at @p socket_path answers.
 * @return false when @p timeout_ms elapses first.
 */
bool waitForServer(const std::string &socket_path, int timeout_ms);

/** A spawned `slo_served` child (fork/exec). */
struct DaemonProcess
{
    int pid = -1;
    std::string socketPath;

    bool running() const { return pid > 0; }
};

/**
 * Fork/exec @p binary serving @p socket_path, with each "NAME=VALUE"
 * of @p extra_env exported into the child. Does NOT wait for
 * readiness — pair with waitForServer. @return pid -1 on failure.
 */
DaemonProcess spawnDaemon(const std::string &binary,
                          const std::string &socket_path,
                          const std::vector<std::string> &extra_env);

/**
 * Graceful stop: `shutdown` op, then waitpid with a deadline, then
 * SIGKILL as a last resort. @return the child's exit status, or -1.
 */
int stopDaemon(DaemonProcess &daemon, int timeout_ms);

} // namespace slo::serve
