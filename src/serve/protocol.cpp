#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

namespace slo::serve
{

namespace
{

/** Retrying full write on a blocking fd. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t wrote = ::write(fd, data + done, size - done);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(wrote);
    }
    return true;
}

/** Retrying full read on a blocking fd. @return bytes read (< size on EOF). */
std::size_t
readAll(int fd, char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t got = ::read(fd, data + done, size - done);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            break;
        done += static_cast<std::size_t>(got);
    }
    return done;
}

std::string
hexOf(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/** Read a required uint field; @return false (filling @p error) if bad. */
bool
takeUint(const obs::Json &doc, const std::string &field,
         std::uint64_t *out, std::string *error, bool required)
{
    if (!doc.contains(field)) {
        if (required && error)
            *error = "missing field: " + field;
        return !required;
    }
    const obs::Json &value = doc.at(field);
    if (!value.isNumber()) {
        if (error)
            *error = "field is not a number: " + field;
        return false;
    }
    *out = value.asUint();
    return true;
}

bool
takeString(const obs::Json &doc, const std::string &field,
           std::string *out, std::string *error, bool required)
{
    if (!doc.contains(field)) {
        if (required && error)
            *error = "missing field: " + field;
        return !required;
    }
    const obs::Json &value = doc.at(field);
    if (!value.isString()) {
        if (error)
            *error = "field is not a string: " + field;
        return false;
    }
    *out = value.asString();
    return true;
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::string frame(4, '\0');
    frame[0] = static_cast<char>(size & 0xff);
    frame[1] = static_cast<char>((size >> 8) & 0xff);
    frame[2] = static_cast<char>((size >> 16) & 0xff);
    frame[3] = static_cast<char>((size >> 24) & 0xff);
    frame += payload;
    return frame;
}

bool
writeFrame(int fd, const std::string &payload)
{
    const std::string frame = encodeFrame(payload);
    return writeAll(fd, frame.data(), frame.size());
}

std::optional<std::string>
readFrame(int fd)
{
    unsigned char prefix[4];
    const std::size_t got =
        readAll(fd, reinterpret_cast<char *>(prefix), sizeof(prefix));
    if (got == 0)
        return std::nullopt; // clean EOF between frames
    if (got < sizeof(prefix))
        throw std::runtime_error("serve: truncated frame prefix");
    const std::uint32_t size =
        static_cast<std::uint32_t>(prefix[0]) |
        static_cast<std::uint32_t>(prefix[1]) << 8 |
        static_cast<std::uint32_t>(prefix[2]) << 16 |
        static_cast<std::uint32_t>(prefix[3]) << 24;
    if (size > kMaxFrameBytes)
        throw std::runtime_error("serve: oversized frame");
    std::string payload(size, '\0');
    if (readAll(fd, payload.data(), size) != size)
        throw std::runtime_error("serve: truncated frame payload");
    return payload;
}

void
FrameSplitter::feed(const char *data, std::size_t size)
{
    buffer_.append(data, size);
}

std::optional<std::string>
FrameSplitter::next()
{
    if (buffer_.size() < 4)
        return std::nullopt;
    const auto *prefix =
        reinterpret_cast<const unsigned char *>(buffer_.data());
    const std::uint32_t size =
        static_cast<std::uint32_t>(prefix[0]) |
        static_cast<std::uint32_t>(prefix[1]) << 8 |
        static_cast<std::uint32_t>(prefix[2]) << 16 |
        static_cast<std::uint32_t>(prefix[3]) << 24;
    if (size > kMaxFrameBytes)
        throw std::runtime_error("serve: oversized frame");
    if (buffer_.size() < 4u + size)
        return std::nullopt;
    std::string payload = buffer_.substr(4, size);
    buffer_.erase(0, 4u + size);
    return payload;
}

obs::Json
Request::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc["schema"] = kRequestSchema;
    doc["id"] = id;
    doc["op"] = op;
    if (op == "reorder") {
        doc["matrix"] = matrix;
        doc["technique"] = technique;
        doc["seed"] = seed;
    }
    if (deadlineMs != 0)
        doc["deadline_ms"] = deadlineMs;
    return doc;
}

std::optional<Request>
Request::parse(const std::string &text, std::string *error)
{
    const std::optional<obs::Json> doc = obs::Json::parse(text, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject() || !doc->contains("schema") ||
        !doc->at("schema").isString() ||
        doc->at("schema").asString() != kRequestSchema) {
        if (error)
            *error = std::string("not a ") + kRequestSchema +
                     " document";
        return std::nullopt;
    }
    Request request;
    if (!takeUint(*doc, "id", &request.id, error, true) ||
        !takeString(*doc, "op", &request.op, error, true) ||
        !takeUint(*doc, "seed", &request.seed, error, false) ||
        !takeUint(*doc, "deadline_ms", &request.deadlineMs, error,
                  false))
        return std::nullopt;
    if (request.op == "reorder") {
        if (!takeString(*doc, "matrix", &request.matrix, error, true) ||
            !takeString(*doc, "technique", &request.technique, error,
                        true))
            return std::nullopt;
    } else if (request.op != "ping" && request.op != "stats" &&
               request.op != "shutdown") {
        if (error)
            *error = "unknown op: " + request.op;
        return std::nullopt;
    }
    return request;
}

obs::Json
Response::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc["schema"] = kResponseSchema;
    doc["id"] = id;
    doc["status"] = status;
    if (!key.empty())
        doc["key"] = key;
    if (status == "ok" && !digest.empty()) {
        doc["rows"] = rows;
        doc["digest"] = digest;
    }
    if (!error.empty())
        doc["error"] = error;
    return doc;
}

std::string
Response::serialize() const
{
    return toJson().dump();
}

std::optional<Response>
Response::parse(const std::string &text, std::string *error)
{
    const std::optional<obs::Json> doc = obs::Json::parse(text, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject() || !doc->contains("schema") ||
        !doc->at("schema").isString() ||
        doc->at("schema").asString() != kResponseSchema) {
        if (error)
            *error = std::string("not a ") + kResponseSchema +
                     " document";
        return std::nullopt;
    }
    Response response;
    if (!takeUint(*doc, "id", &response.id, error, true) ||
        !takeString(*doc, "status", &response.status, error, true) ||
        !takeString(*doc, "key", &response.key, error, false) ||
        !takeUint(*doc, "rows", &response.rows, error, false) ||
        !takeString(*doc, "digest", &response.digest, error, false) ||
        !takeString(*doc, "error", &response.error, error, false))
        return std::nullopt;
    return response;
}

std::string
payloadDigest(const std::vector<Index> &vec)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(vec.data());
    const std::size_t size = vec.size() * sizeof(Index);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hexOf(hash);
}

} // namespace slo::serve
