#include "serve/client.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/trace.hpp"

namespace slo::serve
{

bool
Client::connect(const std::string &socket_path)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendFrame(const std::string &payload)
{
    return fd_ >= 0 && writeFrame(fd_, payload);
}

std::optional<std::string>
Client::recvFrame()
{
    if (fd_ < 0)
        return std::nullopt;
    return readFrame(fd_);
}

std::optional<Response>
Client::call(const Request &request)
{
    Request sent = request;
    if (sent.id == 0)
        sent.id = nextId_++;
    if (!sendFrame(sent.toJson().dump()))
        return std::nullopt;
    const std::optional<std::string> frame = recvFrame();
    if (!frame)
        return std::nullopt;
    return Response::parse(*frame, nullptr);
}

std::optional<obs::Json>
Client::stats()
{
    Request request;
    request.id = nextId_++;
    request.op = "stats";
    if (!sendFrame(request.toJson().dump()))
        return std::nullopt;
    const std::optional<std::string> frame = recvFrame();
    if (!frame)
        return std::nullopt;
    return obs::Json::parse(*frame, nullptr);
}

std::string
resolveDaemonBinary()
{
    if (const char *env = std::getenv("SLO_SERVE_BIN");
        env != nullptr && *env != '\0')
        return env;
    char exe[4096] = {0};
    const ssize_t len =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0)
        return "";
    const std::filesystem::path self_dir =
        std::filesystem::path(exe).parent_path();
    for (const std::filesystem::path &candidate :
         {self_dir / "slo_served",
          self_dir / ".." / "src" / "serve" / "slo_served"}) {
        std::error_code ec;
        if (std::filesystem::exists(candidate, ec))
            return candidate.lexically_normal().string();
    }
    return "";
}

bool
waitForServer(const std::string &socket_path, int timeout_ms)
{
    const std::uint64_t deadline =
        obs::monotonicNanos() +
        static_cast<std::uint64_t>(timeout_ms) * 1000ull * 1000ull;
    while (true) {
        {
            Client client;
            if (client.connect(socket_path)) {
                Request ping;
                ping.id = 1;
                ping.op = "ping";
                const std::optional<Response> response =
                    client.call(ping);
                if (response && response->status == "ok")
                    return true;
            }
        }
        if (obs::monotonicNanos() >= deadline)
            return false;
        ::usleep(10 * 1000);
    }
}

DaemonProcess
spawnDaemon(const std::string &binary,
            const std::string &socket_path,
            const std::vector<std::string> &extra_env)
{
    DaemonProcess daemon;
    daemon.socketPath = socket_path;
    const pid_t pid = ::fork();
    if (pid < 0)
        return daemon;
    if (pid == 0) {
        ::setenv("SLO_SERVE_SOCKET", socket_path.c_str(), 1);
        for (const std::string &pair : extra_env) {
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos)
                continue;
            ::setenv(pair.substr(0, eq).c_str(),
                     pair.substr(eq + 1).c_str(), 1);
        }
        ::execl(binary.c_str(), binary.c_str(), nullptr);
        _exit(127); // exec failed
    }
    daemon.pid = pid;
    return daemon;
}

int
stopDaemon(DaemonProcess &daemon, int timeout_ms)
{
    if (!daemon.running())
        return -1;
    {
        Client client;
        if (client.connect(daemon.socketPath)) {
            Request request;
            request.id = 1;
            request.op = "shutdown";
            client.call(request);
        }
    }
    const std::uint64_t deadline =
        obs::monotonicNanos() +
        static_cast<std::uint64_t>(timeout_ms) * 1000ull * 1000ull;
    int status = 0;
    while (true) {
        const pid_t got = ::waitpid(daemon.pid, &status, WNOHANG);
        if (got == daemon.pid) {
            daemon.pid = -1;
            return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        }
        if (got < 0) {
            daemon.pid = -1;
            return -1;
        }
        if (obs::monotonicNanos() >= deadline) {
            ::kill(daemon.pid, SIGKILL);
            ::waitpid(daemon.pid, &status, 0);
            daemon.pid = -1;
            return -1;
        }
        ::usleep(5 * 1000);
    }
}

} // namespace slo::serve
