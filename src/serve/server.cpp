#include "serve/server.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "prof/histogram.hpp"
#include "reorder/reorder.hpp"

namespace slo::serve
{

namespace
{

std::size_t
parseSize(const char *text, std::size_t fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text)
        return fallback;
    std::size_t scale = 1;
    if (*end == 'K' || *end == 'k')
        scale = std::size_t{1} << 10;
    else if (*end == 'M' || *end == 'm')
        scale = std::size_t{1} << 20;
    else if (*end == 'G' || *end == 'g')
        scale = std::size_t{1} << 30;
    return static_cast<std::size_t>(value) * scale;
}

void
setNonBlocking(int fd, bool non_blocking)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return;
    const int wanted =
        non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (wanted != flags)
        ::fcntl(fd, F_SETFL, wanted);
}

} // namespace

Server::Options
Server::optionsFromEnv()
{
    Options options;
    if (const char *path = std::getenv("SLO_SERVE_SOCKET");
        path != nullptr && *path != '\0')
        options.socketPath = path;
    options.queueLimit = parseSize(std::getenv("SLO_SERVE_QUEUE"),
                                   options.queueLimit);
    options.defaultDeadlineMs = parseSize(
        std::getenv("SLO_SERVE_DEADLINE_MS"), options.defaultDeadlineMs);
    options.cacheBytes = parseSize(
        std::getenv("SLO_SERVE_CACHE_BYTES"), options.cacheBytes);
    return options;
}

Server::Server(Options options, core::Scale scale)
    : options_(std::move(options)), scale_(scale),
      store_(core::ArtifactStore::Options{options_.cacheBytes, 8, 8,
                                          true})
{
    for (const core::DatasetEntry &entry : core::paperCorpus(scale_))
        corpus_[entry.name] = entry;

    BatchScheduler::Options sched;
    sched.queueLimit = options_.queueLimit;
    sched.defaultDeadlineNanos =
        options_.defaultDeadlineMs * 1000ull * 1000ull;
    scheduler_ = std::make_unique<BatchScheduler>(sched, store_);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("serve: socket path too long: " +
                                 options_.socketPath);
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serve: socket() failed");
    setNonBlocking(listenFd_, true);
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot bind " +
                                 options_.socketPath);
    }
    if (::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot listen on " +
                                 options_.socketPath);
    }

    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: pipe2() failed");
    }
    wakeReadFd_ = pipe_fds[0];
    wakeWriteFd_ = pipe_fds[1];
}

Server::~Server()
{
    // Builds may still reference this object through completions.
    if (scheduler_)
        scheduler_->drain();
    for (auto &entry : connections_)
        ::close(entry.second.fd);
    connections_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
    }
    if (wakeReadFd_ >= 0)
        ::close(wakeReadFd_);
    if (wakeWriteFd_ >= 0)
        ::close(wakeWriteFd_);
}

void
Server::requestStop()
{
    stop_.store(true, std::memory_order_relaxed);
    if (wakeWriteFd_ >= 0) {
        const char byte = 'x';
        [[maybe_unused]] const ssize_t n =
            ::write(wakeWriteFd_, &byte, 1);
    }
}

void
Server::postDone(std::uint64_t conn_id, std::uint64_t seq,
                 std::string frame)
{
    {
        const std::lock_guard<std::mutex> lock(doneMutex_);
        doneQueue_.push_back(Done{conn_id, seq, std::move(frame)});
    }
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wakeWriteFd_, &byte, 1);
}

void
Server::drainDoneQueue()
{
    std::deque<Done> batch;
    {
        const std::lock_guard<std::mutex> lock(doneMutex_);
        batch.swap(doneQueue_);
    }
    for (Done &done : batch)
        fillSlot(done.connId, done.seq, std::move(done.frame));
}

void
Server::fillSlot(std::uint64_t conn_id, std::uint64_t seq,
                 std::string frame)
{
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
        obs::counter("serve.dropped_responses").add();
        return;
    }
    Connection &conn = it->second;
    const std::size_t index =
        static_cast<std::size_t>(seq - conn.baseSeq);
    if (index >= conn.slots.size()) {
        obs::counter("serve.dropped_responses").add();
        return;
    }
    conn.slots[index].frame = std::move(frame);
    conn.slots[index].ready = true;
}

bool
Server::flushPending(Connection &conn)
{
    while (!conn.slots.empty() && conn.slots.front().ready) {
        const std::string &frame = conn.slots.front().frame;
        while (conn.writeOffset < frame.size()) {
            const ssize_t wrote =
                ::write(conn.fd, frame.data() + conn.writeOffset,
                        frame.size() - conn.writeOffset);
            if (wrote < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true; // poll for POLLOUT
                return false;
            }
            conn.writeOffset += static_cast<std::size_t>(wrote);
        }
        conn.slots.pop_front();
        ++conn.baseSeq;
        conn.writeOffset = 0;
    }
    return true;
}

void
Server::closeConnection(std::uint64_t conn_id)
{
    const auto it = connections_.find(conn_id);
    if (it == connections_.end())
        return;
    // Unanswered slots become dropped responses when their
    // completions eventually arrive (fillSlot misses the conn).
    ::close(it->second.fd);
    connections_.erase(it);
}

void
Server::acceptPending()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept error
        }
        setNonBlocking(fd, true);
        const std::uint64_t id = nextConnId_++;
        Connection conn;
        conn.fd = fd;
        connections_.emplace(id, std::move(conn));
        obs::counter("serve.connections").add();
    }
}

void
Server::readPending(std::uint64_t conn_id)
{
    char buffer[65536];
    while (true) {
        const auto it = connections_.find(conn_id);
        if (it == connections_.end())
            return; // closed while handling a frame
        const ssize_t got =
            ::read(it->second.fd, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            closeConnection(conn_id);
            return;
        }
        if (got == 0) {
            closeConnection(conn_id);
            return;
        }
        it->second.splitter.feed(buffer,
                                 static_cast<std::size_t>(got));
        while (true) {
            const auto again = connections_.find(conn_id);
            if (again == connections_.end())
                return;
            std::optional<std::string> payload;
            try {
                payload = again->second.splitter.next();
            } catch (const std::exception &) {
                obs::counter("serve.bad_requests").add();
                closeConnection(conn_id);
                return;
            }
            if (!payload)
                break;
            handleFrame(conn_id, *payload);
        }
        if (got < static_cast<ssize_t>(sizeof(buffer)))
            break; // short read: kernel buffer drained
    }
}

void
Server::handleFrame(std::uint64_t conn_id, const std::string &payload)
{
    const std::uint64_t arrival = obs::monotonicNanos();
    SLO_SPAN("serve.request");
    obs::counter("serve.requests").add();

    Connection &conn = connections_.at(conn_id);
    const std::uint64_t seq = conn.nextSeq++;
    conn.slots.emplace_back();

    const auto finishInline = [&](const Response &response) {
        prof::latencyHistogram("serve.request_seconds")
            .recordNanos(obs::monotonicNanos() - arrival);
        fillSlot(conn_id, seq, encodeFrame(response.serialize()));
    };

    std::string parse_error;
    const std::optional<Request> request =
        Request::parse(payload, &parse_error);
    if (!request) {
        obs::counter("serve.bad_requests").add();
        Response response;
        response.status = "error";
        response.error = parse_error;
        finishInline(response);
        return;
    }

    if (request->op == "ping") {
        Response response;
        response.id = request->id;
        response.status = "ok";
        finishInline(response);
        return;
    }
    if (request->op == "stats") {
        prof::latencyHistogram("serve.request_seconds")
            .recordNanos(obs::monotonicNanos() - arrival);
        fillSlot(conn_id, seq, encodeFrame(statsJson().dump()));
        return;
    }
    if (request->op == "shutdown") {
        Response response;
        response.id = request->id;
        response.status = "ok";
        finishInline(response);
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
    handleReorder(conn_id, seq, *request, arrival);
}

void
Server::handleReorder(std::uint64_t conn_id, std::uint64_t seq,
                      const Request &request, std::uint64_t arrival)
{
    const auto finishInline = [&](const Response &response,
                                  const char *histogram) {
        prof::latencyHistogram(histogram).recordNanos(
            obs::monotonicNanos() - arrival);
        fillSlot(conn_id, seq, encodeFrame(response.serialize()));
    };

    const auto entry_it = corpus_.find(request.matrix);
    if (entry_it == corpus_.end()) {
        obs::counter("serve.errors").add();
        Response response;
        response.id = request.id;
        response.status = "error";
        response.error = "unknown matrix: " + request.matrix;
        finishInline(response, "serve.request_seconds");
        return;
    }
    reorder::Technique technique;
    try {
        technique = reorder::techniqueFromName(request.technique);
    } catch (const std::exception &) {
        obs::counter("serve.errors").add();
        Response response;
        response.id = request.id;
        response.status = "error";
        response.error = "unknown technique: " + request.technique;
        finishInline(response, "serve.request_seconds");
        return;
    }

    const core::DatasetEntry &entry = entry_it->second;
    const std::string key =
        "serve/" + core::scaleName(scale_) + "/" + entry.name + "/g" +
        std::to_string(entry.generatorVersion) + "/" +
        request.technique + "/s" + std::to_string(request.seed);

    if (const core::ArtifactStore::Payload cached = store_.get(key)) {
        obs::counter("serve.hits").add();
        Response response;
        response.id = request.id;
        response.status = "ok";
        response.key = key;
        response.rows = cached->size();
        response.digest = payloadDigest(*cached);
        finishInline(response, "serve.request_seconds");
        return;
    }

    const std::uint64_t deadline =
        request.deadlineMs == 0
            ? 0
            : arrival + request.deadlineMs * 1000ull * 1000ull;

    const core::DatasetEntry entry_copy = entry;
    const core::Scale scale = scale_;
    const std::uint64_t request_seed = request.seed;
    const auto builder = [entry_copy, technique, request_seed,
                          scale]() {
        SLO_SPAN("serve.build");
        const std::uint64_t start = obs::monotonicNanos();
        const Csr matrix = entry_copy.build(scale);
        reorder::ReorderOptions options;
        options.seed = request_seed;
        const Permutation perm =
            reorder::computeOrdering(technique, matrix, options);
        prof::latencyHistogram("serve.build_seconds")
            .recordNanos(obs::monotonicNanos() - start);
        return perm.newIds();
    };

    const std::uint64_t request_id = request.id;
    const auto completion =
        [this, conn_id, seq, request_id, key,
         arrival](const BatchScheduler::Result &result) {
            Response response;
            response.id = request_id;
            response.key = key;
            switch (result.outcome) {
            case BatchScheduler::Outcome::Ok:
                response.status = "ok";
                response.rows = result.payload->size();
                response.digest = payloadDigest(*result.payload);
                break;
            case BatchScheduler::Outcome::DeadlineExceeded:
                response.status = "deadline_exceeded";
                obs::counter("serve.deadline_exceeded").add();
                break;
            case BatchScheduler::Outcome::Error:
                response.status = "error";
                response.error = result.error;
                obs::counter("serve.errors").add();
                break;
            }
            prof::latencyHistogram("serve.request_seconds")
                .recordNanos(obs::monotonicNanos() - arrival);
            postDone(conn_id, seq, encodeFrame(response.serialize()));
        };

    if (!scheduler_->submit(key, deadline, builder, completion)) {
        obs::counter("serve.rejected").add();
        Response response;
        response.id = request.id;
        response.status = "rejected";
        response.key = key;
        response.error = "queue full";
        finishInline(response, "serve.rejected_seconds");
    }
}

int
Server::run()
{
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> poll_conns;
    while (!stop_.load(std::memory_order_relaxed)) {
        drainDoneQueue();

        std::vector<std::uint64_t> broken;
        for (auto &entry : connections_)
            if (!flushPending(entry.second))
                broken.push_back(entry.first);
        for (const std::uint64_t id : broken)
            closeConnection(id);
        if (stop_.load(std::memory_order_relaxed))
            break;

        fds.clear();
        poll_conns.clear();
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakeReadFd_, POLLIN, 0});
        for (const auto &entry : connections_) {
            const Connection &conn = entry.second;
            short events = POLLIN;
            if (conn.writeOffset > 0 ||
                (!conn.slots.empty() && conn.slots.front().ready))
                events = static_cast<short>(events | POLLOUT);
            fds.push_back(pollfd{conn.fd, events, 0});
            poll_conns.push_back(entry.first);
        }

        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return 1;
        }
        if ((fds[1].revents & POLLIN) != 0) {
            char sink[256];
            while (::read(wakeReadFd_, sink, sizeof(sink)) > 0) {
            }
        }
        if ((fds[0].revents & POLLIN) != 0)
            acceptPending();
        for (std::size_t i = 0; i < poll_conns.size(); ++i) {
            const short revents = fds[i + 2].revents;
            if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                readPending(poll_conns[i]);
        }
    }

    // Graceful stop: let in-flight builds finish, deliver their
    // responses, then flush every connection with blocking writes.
    scheduler_->drain();
    drainDoneQueue();
    for (auto &entry : connections_) {
        setNonBlocking(entry.second.fd, false);
        flushPending(entry.second);
        ::close(entry.second.fd);
    }
    connections_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());

    if (obs::RunManifest::instance().began())
        obs::RunManifest::instance().set("serve", statsJson());
    return 0;
}

obs::Json
Server::statsJson() const
{
    obs::Json doc = obs::Json::object();
    doc["schema"] = kStatsSchema;
    doc["scale"] = core::scaleName(scale_);
    obs::Json counters = obs::Json::object();
    for (const char *name :
         {"requests", "hits", "rejected", "bad_requests", "errors",
          "deadline_exceeded", "dropped_responses", "connections"}) {
        counters[name] =
            obs::counter(std::string("serve.") + name).value();
    }
    doc["counters"] = counters;
    doc["scheduler"] = scheduler_->statsJson();
    doc["store"] = store_.statsJson();
    doc["latency"] = prof::latencyRegistryJson();
    return doc;
}

} // namespace slo::serve
