/**
 * @file
 * Wire protocol of the reordering service.
 *
 * Framing: every message is a 4-byte little-endian payload length
 * followed by that many bytes of UTF-8 JSON. Requests follow the
 * versioned `slo.serve-request/1` schema, responses
 * `slo.serve-response/1`, and the daemon's counter/latency report
 * `slo.serve-stats/1`:
 *
 *   request:  {"schema":"slo.serve-request/1","id":7,"op":"reorder",
 *              "matrix":"wdc-host","technique":"RABBIT",
 *              "seed":1,"deadline_ms":2000}
 *   response: {"schema":"slo.serve-response/1","id":7,"status":"ok",
 *              "key":"serve/small/wdc-host/...","rows":4096,
 *              "digest":"0f3a..."}
 *
 * `op` is one of `ping`, `reorder`, `stats`, `shutdown`. `status` is
 * `ok`, `rejected` (queue backpressure, the 429 of this protocol),
 * `deadline_exceeded`, or `error` (with an `error` message). Response
 * fields are deterministic functions of the request and the corpus —
 * never of timing — so a serial replay of a fixed request trace is
 * byte-identical at any SLO_THREADS.
 *
 * The frame helpers below work on blocking file descriptors (client,
 * tests); the server assembles frames incrementally from its
 * non-blocking poll loop using `FrameSplitter`.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "obs/json.hpp"

namespace slo::serve
{

inline constexpr const char *kRequestSchema = "slo.serve-request/1";
inline constexpr const char *kResponseSchema = "slo.serve-response/1";
inline constexpr const char *kStatsSchema = "slo.serve-stats/1";

/** Frames above this payload size are a protocol error (16 MiB). */
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/** 4-byte little-endian length prefix + payload. */
std::string encodeFrame(const std::string &payload);

/** Blocking full-frame write. @return false on EOF/error. */
bool writeFrame(int fd, const std::string &payload);

/**
 * Blocking full-frame read. nullopt on clean EOF before a frame;
 * @throws std::runtime_error on a truncated or oversized frame.
 */
std::optional<std::string> readFrame(int fd);

/**
 * Incremental frame assembly for non-blocking reads: feed bytes in,
 * pop complete payloads out.
 */
class FrameSplitter
{
  public:
    void feed(const char *data, std::size_t size);

    /**
     * Extract the next complete payload, if any.
     * @throws std::runtime_error when the pending length prefix
     *         exceeds kMaxFrameBytes (the connection is poisoned).
     */
    std::optional<std::string> next();

    std::size_t bufferedBytes() const { return buffer_.size(); }

  private:
    std::string buffer_;
};

/** A parsed `slo.serve-request/1`. */
struct Request
{
    std::uint64_t id = 0;
    std::string op;        ///< ping | reorder | stats | shutdown
    std::string matrix;    ///< corpus matrix name (reorder)
    std::string technique; ///< canonical technique name (reorder)
    std::uint64_t seed = 1;
    /** 0 = server default; the deadline clock starts at arrival. */
    std::uint64_t deadlineMs = 0;

    obs::Json toJson() const;

    /**
     * Parse and validate. @return nullopt (with @p error filled) on
     * malformed JSON, wrong schema, or a missing/mistyped field.
     */
    static std::optional<Request> parse(const std::string &text,
                                        std::string *error);
};

/** Deterministic response payload (see file comment). */
struct Response
{
    std::uint64_t id = 0;
    std::string status; ///< ok | rejected | deadline_exceeded | error
    std::string key;
    std::uint64_t rows = 0;
    std::string digest; ///< 16-hex FNV-1a of the permutation bytes
    std::string error;

    obs::Json toJson() const;
    std::string serialize() const; ///< compact JSON (frame payload)

    static std::optional<Response> parse(const std::string &text,
                                         std::string *error);
};

/** 16-hex FNV-1a digest of @p vec's bytes (response `digest`). */
std::string payloadDigest(const std::vector<Index> &vec);

} // namespace slo::serve
