/**
 * @file
 * `slo_served` entry point: serve reorder requests on a unix socket
 * until a `shutdown` op or SIGINT/SIGTERM.
 *
 * Environment knobs (see docs/env_registry.md):
 *
 *   SLO_SERVE_SOCKET       socket path (default slo_serve.sock)
 *   SLO_SERVE_QUEUE        max distinct in-flight keys (default 64)
 *   SLO_SERVE_DEADLINE_MS  default request deadline (default 30000)
 *   SLO_SERVE_CACHE_BYTES  in-memory store budget (default 64 MiB)
 *   REPRO_SCALE            corpus scale (small|medium|large)
 *   SLO_THREADS            build parallelism (1 = serial baseline)
 */

#include <cstdio>
#include <exception>

#include <signal.h>

#include "core/dataset.hpp"
#include "obs/manifest.hpp"
#include "prof/counters.hpp"
#include "serve/server.hpp"

namespace
{

slo::serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

} // namespace

int
main()
{
    using namespace slo;

    obs::RunManifest::instance().begin("slo_served");
    obs::installExitEmission();
    prof::initProcess();

    try {
        const core::Scale scale = core::scaleFromEnv();
        serve::Server server(serve::Server::optionsFromEnv(), scale);
        g_server = &server;

        struct sigaction action = {};
        action.sa_handler = onSignal;
        ::sigaction(SIGINT, &action, nullptr);
        ::sigaction(SIGTERM, &action, nullptr);

        std::fprintf(stderr, "slo_served: listening on %s\n",
                     server.socketPath().c_str());
        const int rc = server.run();
        g_server = nullptr;
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "slo_served: fatal: %s\n", e.what());
        return 1;
    }
}
