#include "prof/counters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "prof/histogram.hpp"

namespace slo::prof
{
namespace
{

/** Resets the manifest and restores the probed backend around each
 * test (setBackendForTest(nullptr) re-reads the environment). */
class CountersTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::RunManifest::instance().reset();
        unsetenv("SLO_PROF_BACKEND");
        setBackendForTest(nullptr);
    }

    void
    TearDown() override
    {
        obs::RunManifest::instance().reset();
        unsetenv("SLO_PROF_BACKEND");
        setBackendForTest(nullptr);
    }
};

/** Touch some memory so the profiled scope has observable work. */
void
doWork()
{
    std::vector<double> buffer(1 << 16);
    for (std::size_t i = 0; i < buffer.size(); ++i)
        buffer[i] = static_cast<double>(i) * 1.5;
    volatile double sink = 0.0;
    for (double v : buffer)
        sink = sink + v;
    (void)sink;
}

TEST_F(CountersTest, ProbeNeverFailsAndExplainsDegradation)
{
    const Backend backend = activeBackend();
    EXPECT_TRUE(backend == Backend::Perf || backend == Backend::Rusage);
    if (backend != Backend::Perf) {
        // Perf-denied hosts (containers, CI) must say why.
        EXPECT_FALSE(degradationReason().empty());
    } else {
        EXPECT_TRUE(degradationReason().empty());
    }
}

TEST_F(CountersTest, PeakRssIsVisible)
{
    EXPECT_GT(peakRssKb(), 0u);
}

TEST_F(CountersTest, EnvForcesTheRusageFallback)
{
    setenv("SLO_PROF_BACKEND", "rusage", 1);
    setBackendForTest(nullptr);
    EXPECT_EQ(activeBackend(), Backend::Rusage);
    EXPECT_NE(degradationReason().find("forced"), std::string::npos);
}

TEST_F(CountersTest, ForcedRusageRunYieldsAValidManifest)
{
    setBackendForTest("rusage");
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.begin("counters_test");
    {
        const ScopedCounters counters("matrix-a", "simulate");
        doWork();
    }
    writeManifestSections();

    const obs::Json doc = manifest.toJson();
    const obs::Json &prof = doc.at("prof");
    EXPECT_EQ(prof.at("backend").asString(), "rusage");
    EXPECT_TRUE(prof.at("degraded").asBool());
    EXPECT_FALSE(prof.at("degradation_reason").asString().empty());
    EXPECT_GT(prof.at("peak_rss_kb").asUint(), 0u);

    const obs::Json &delta = doc.at("matrices")
                                 .at("matrix-a")
                                 .at("counters")
                                 .at("simulate");
    for (const char *field :
         {"utime_seconds", "stime_seconds", "minor_faults",
          "major_faults", "voluntary_ctx_switches",
          "involuntary_ctx_switches"}) {
        ASSERT_TRUE(delta.contains(field)) << field;
        EXPECT_GE(delta.at(field).asDouble(), 0.0) << field;
    }
    EXPECT_TRUE(doc.contains("latency"));
}

TEST_F(CountersTest, WhicheverBackendRunsRecordsPhaseCounters)
{
    // Unforced: use whatever the host grants (perf on a workstation,
    // rusage in a locked-down container) — same manifest shape.
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.begin("counters_test");
    {
        const ScopedCounters counters("matrix-b", "reorder.RABBIT");
        doWork();
    }
    const obs::Json doc = manifest.toJson();
    const obs::Json &counters =
        doc.at("matrices").at("matrix-b").at("counters");
    ASSERT_TRUE(counters.contains("reorder.RABBIT"));
    EXPECT_GE(counters.at("reorder.RABBIT").size(), 1u);
}

TEST_F(CountersTest, OffBackendRecordsNothingButStaysValid)
{
    setBackendForTest("off");
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.begin("counters_test");
    {
        const ScopedCounters counters("matrix-c", "simulate");
        doWork();
    }
    writeManifestSections();
    const obs::Json doc = manifest.toJson();
    EXPECT_EQ(doc.at("prof").at("backend").asString(), "off");
    // A no-op scope never creates the matrix entry, let alone
    // a counters section under it.
    if (doc.contains("matrices")) {
        EXPECT_FALSE(doc.at("matrices").contains("matrix-c"));
    }
}

TEST_F(CountersTest, RepeatedPhasesAccumulateTheirDeltas)
{
    setBackendForTest("rusage");
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.begin("counters_test");
    for (int i = 0; i < 2; ++i) {
        const ScopedCounters counters("matrix-d", "simulate");
        doWork();
    }
    const obs::Json doc = manifest.toJson();
    const obs::Json &delta = doc.at("matrices")
                                 .at("matrix-d")
                                 .at("counters")
                                 .at("simulate");
    // Two runs merged into one totals object, not overwritten.
    EXPECT_TRUE(delta.contains("utime_seconds"));
    EXPECT_GE(delta.at("minor_faults").asDouble(), 0.0);
}

TEST_F(CountersTest, DeltaSinceClampsAtZero)
{
    CounterSample start;
    start.backend = Backend::Rusage;
    start.utimeSeconds = 2.0;
    start.minorFaults = 100;
    CounterSample end;
    end.backend = Backend::Rusage;
    end.utimeSeconds = 1.0; // e.g. a counter reset across threads
    end.minorFaults = 150;
    const CounterSample delta = end.deltaSince(start);
    EXPECT_DOUBLE_EQ(delta.utimeSeconds, 0.0);
    EXPECT_EQ(delta.minorFaults, 50u);
}

TEST_F(CountersTest, SampleJsonShapeFollowsTheBackend)
{
    CounterSample perf;
    perf.backend = Backend::Perf;
    perf.cycles = 123;
    perf.hasCycles = true;
    const obs::Json perf_json = perf.toJson();
    EXPECT_TRUE(perf_json.contains("cycles"));
    EXPECT_FALSE(perf_json.contains("utime_seconds"));

    CounterSample rusage;
    rusage.backend = Backend::Rusage;
    rusage.utimeSeconds = 0.5;
    const obs::Json rusage_json = rusage.toJson();
    EXPECT_TRUE(rusage_json.contains("utime_seconds"));
    EXPECT_FALSE(rusage_json.contains("cycles"));
}

} // namespace
} // namespace slo::prof
